//! Streaming Ledger benchmark: compares MorphStream against the
//! reconstructed TStream and S-Store baselines on the paper's SL workload
//! (Figure 11 in miniature).
//!
//! Every system is driven through the unified [`TxnEngine`] trait by one
//! generic runner, and events are pushed straight from the lazy
//! [`StreamingLedgerApp::source`] — the stream is never materialised as a
//! `Vec`.
//!
//! ```text
//! cargo run --release --example streaming_ledger
//! ```

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_baselines::{SStoreEngine, TStreamEngine};
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

const EVENTS: usize = 8_192;
const TRANSFER_RATIO: f64 = 0.6;

/// Drive one engine through the unified trait, feeding it lazily from the
/// deterministic source, and print its row.
fn run_system<E>(name: &str, engine: &mut E, config: &WorkloadConfig)
where
    E: TxnEngine<Event = SlEvent, Output = bool>,
{
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(StreamingLedgerApp::source(config, EVENTS, TRANSFER_RATIO));
    let mut report = pipeline.finish();
    println!(
        "{:<14} {:>14.2} {:>12.2} {:>10}",
        name,
        report.k_events_per_second(),
        report
            .latency
            .percentile(95.0)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
        report.aborted
    );
}

fn main() {
    let config = WorkloadConfig::streaming_ledger()
        .with_key_space(10_000)
        .with_udf_complexity_us(2)
        .with_txns_per_batch(1_024);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let engine_config =
        EngineConfig::with_threads(threads).with_punctuation_interval(config.txns_per_batch);

    println!("Streaming Ledger, {EVENTS} events, {threads} threads");
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "system", "k events/s", "p95 ms", "aborted"
    );

    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = MorphStream::new(app, store, engine_config);
        run_system("MorphStream", &mut engine, &config);
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = TStreamEngine::new(app, store, engine_config);
        run_system("TStream", &mut engine, &config);
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = SStoreEngine::new(app, store, engine_config);
        run_system("S-Store", &mut engine, &config);
    }
}
