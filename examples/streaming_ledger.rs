//! Streaming Ledger benchmark: compares MorphStream against the
//! reconstructed TStream and S-Store baselines on the paper's SL workload
//! (Figure 11 in miniature).
//!
//! ```text
//! cargo run --release --example streaming_ledger
//! ```

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream};
use morphstream_baselines::{SStoreEngine, TStreamEngine};
use morphstream_common::WorkloadConfig;
use morphstream_workloads::StreamingLedgerApp;

fn main() {
    let config = WorkloadConfig::streaming_ledger()
        .with_key_space(10_000)
        .with_udf_complexity_us(2)
        .with_txns_per_batch(1_024);
    let events = StreamingLedgerApp::generate(&config, 8_192, 0.6);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let engine_config =
        EngineConfig::with_threads(threads).with_punctuation_interval(config.txns_per_batch);

    println!(
        "Streaming Ledger, {} events, {} threads",
        events.len(),
        threads
    );
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "system", "k events/s", "p95 ms", "aborted"
    );

    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = MorphStream::new(app, store, engine_config);
        let mut report = engine.process(events.clone());
        println!(
            "{:<14} {:>14.2} {:>12.2} {:>10}",
            "MorphStream",
            report.k_events_per_second(),
            report
                .latency
                .percentile(95.0)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
            report.aborted
        );
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = TStreamEngine::new(app, store, engine_config);
        let mut report = engine.process(events.clone());
        println!(
            "{:<14} {:>14.2} {:>12.2} {:>10}",
            "TStream",
            report.k_events_per_second(),
            report
                .latency
                .percentile(95.0)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
            report.aborted
        );
    }
    {
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let mut engine = SStoreEngine::new(app, store, engine_config);
        let mut report = engine.process(events);
        println!(
            "{:<14} {:>14.2} {:>12.2} {:>10}",
            "S-Store",
            report.k_events_per_second(),
            report
                .latency
                .percentile(95.0)
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
            report.aborted
        );
    }
}
