//! Online Social Event Detection (OSED) case study: detect bursting crisis
//! events in a (synthetic) tweet stream and compare the detected popularity
//! of each event with the ground truth (Figure 23 in miniature).
//!
//! ```text
//! cargo run --release --example social_event_detection
//! ```

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_common::Timestamp;
use morphstream_workloads::{OsedApp, OsedReport, TweetGenerator};

fn main() {
    let generator = TweetGenerator {
        tweets: 6_000,
        window: 300,
        ..TweetGenerator::default()
    };
    let (tweets, expected) = generator.generate();
    println!(
        "processing {} synthetic tweets in windows of {}",
        tweets.len(),
        generator.window
    );

    let store = StateStore::new();
    let app = OsedApp::new(&store, generator.window as Timestamp + 1);
    let mut engine = MorphStream::new(
        app,
        store,
        EngineConfig::with_threads(4)
            .with_punctuation_interval(generator.window + 1)
            .with_reclaim_after_batch(false),
    );
    // The on_batch hook reports each detection window as it completes —
    // incremental observability a long-running session gets without waiting
    // for finish().
    let mut pipeline = engine.pipeline().on_batch(|batch| {
        println!(
            "window {:>3}: {} tweets, {} committed, {:.1} k tweets/s",
            batch.batch,
            batch.events,
            batch.committed,
            batch.events_per_second() / 1e3
        );
    });
    pipeline.push_iter(tweets);
    let report = pipeline.finish();
    let osed = OsedReport::from_outputs(expected, &report.outputs);

    println!(
        "throughput: {:.2}k tweets/s, detection accuracy (±10): {:.1}%",
        report.k_events_per_second(),
        osed.detection_accuracy(10) * 100.0
    );
    for (event, expected) in osed.expected.iter().enumerate() {
        println!("event {event} expected popularity: {expected:?}");
        println!(
            "event {event} detected popularity: {:?}",
            osed.detected[event]
        );
    }
}
