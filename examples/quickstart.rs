//! Quickstart: a minimal transactional stream application on MorphStream.
//!
//! A stream of bank events (deposits and transfers) is processed with full
//! transactional semantics over shared mutable account balances. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morphstream::storage::StateStore;
use morphstream::{udfs, EngineConfig, MorphStream, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::{StateRef, TableId, Value};

/// Input events of the quickstart application.
enum BankEvent {
    Deposit { account: u64, amount: Value },
    Transfer { from: u64, to: u64, amount: Value },
}

/// The application: one table of account balances, deposits credit an
/// account, transfers move money and abort on insufficient funds.
struct Bank {
    accounts: TableId,
}

impl StreamApp for Bank {
    type Event = BankEvent;
    type Output = String;

    fn state_access(&self, event: &BankEvent, txn: &mut TxnBuilder) {
        match event {
            BankEvent::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            BankEvent::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, event: &BankEvent, outcome: &TxnOutcome) -> String {
        let verb = match event {
            BankEvent::Deposit { account, amount } => format!("deposit {amount} -> {account}"),
            BankEvent::Transfer { from, to, amount } => format!("transfer {amount}: {from} -> {to}"),
        };
        if outcome.committed {
            format!("{verb}: committed")
        } else {
            format!("{verb}: ABORTED ({})", outcome.abort_reason.as_ref().unwrap())
        }
    }
}

fn main() {
    // 1. create the shared mutable state
    let store = StateStore::new();
    let accounts = store.create_table("accounts", 0, false);
    store.preallocate_range(accounts, 10).unwrap();

    // 2. build the engine (adaptive scheduling, 4 worker threads, one
    //    punctuation every 4 events)
    let mut engine = MorphStream::new(
        Bank { accounts },
        store.clone(),
        EngineConfig::with_threads(4).with_punctuation_interval(4),
    );

    // 3. feed a stream of events
    let events = vec![
        BankEvent::Deposit { account: 1, amount: 100 },
        BankEvent::Deposit { account: 2, amount: 50 },
        BankEvent::Transfer { from: 1, to: 2, amount: 30 },
        BankEvent::Transfer { from: 2, to: 3, amount: 60 },
        BankEvent::Transfer { from: 3, to: 1, amount: 1_000 }, // aborts: not enough money
        BankEvent::Deposit { account: 3, amount: 5 },
    ];
    let report = engine.process(events);

    // 4. inspect outputs and metrics
    for line in &report.outputs {
        println!("{line}");
    }
    println!(
        "committed {} / aborted {} — {:.1}k events/s, decisions: {:?}",
        report.committed,
        report.aborted,
        report.k_events_per_second(),
        report.decision_trace().iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    for account in 0..4u64 {
        println!(
            "account {account}: balance {}",
            store.read_latest(accounts, account).unwrap()
        );
    }
}
