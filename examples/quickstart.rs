//! Quickstart: a minimal transactional stream application on MorphStream.
//!
//! A stream of bank events (deposits and transfers) is processed with full
//! transactional semantics over shared mutable account balances. The
//! application itself lives in `morphstream_repro::quickstart` so that
//! `tests/quickstart_flow.rs` exercises exactly the same code. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_repro::quickstart::{quickstart_events, Bank};

fn main() {
    // 1. create the shared mutable state
    let store = StateStore::new();
    let accounts = store.create_table("accounts", 0, false);
    store.preallocate_range(accounts, 10).unwrap();

    // 2. build the engine (adaptive scheduling, 4 worker threads, one
    //    punctuation every 4 events)
    let mut engine = MorphStream::new(
        Bank { accounts },
        store.clone(),
        EngineConfig::with_threads(4).with_punctuation_interval(4),
    );

    // 3. push the event stream through a pipeline session: every fourth
    //    event crosses a punctuation and is batch-processed internally
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(quickstart_events());
    let report = pipeline.finish();

    // 4. inspect outputs and metrics
    for line in &report.outputs {
        println!("{line}");
    }
    println!(
        "committed {} / aborted {} — {:.1}k events/s, decisions: {:?}",
        report.committed,
        report.aborted,
        report.k_events_per_second(),
        report
            .decision_trace()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
    for account in 0..4u64 {
        println!(
            "account {account}: balance {}",
            store.read_latest(accounts, account).unwrap()
        );
    }
}
