//! Stock Exchange Analysis (SEA) case study: hash-based sliding-window join
//! of quote and trade streams with transactional guarantees (Figure 25 in
//! miniature).
//!
//! ```text
//! cargo run --release --example stock_exchange
//! ```

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, TxnEngine};
use morphstream_workloads::{SeaApp, SeaGenerator};

fn main() {
    let generator = SeaGenerator {
        events: 20_000,
        stocks: 500,
        ..SeaGenerator::default()
    };
    let window = 500u64;
    // The analytical oracle needs the full stream, so it is materialised
    // here; the engine itself is fed through the push-based pipeline.
    let events = generator.generate();
    let expected = generator.expected_accumulated_matches(&events, window);

    let store = StateStore::new();
    let app = SeaApp::new(&store, generator.stocks, window);
    let mut engine = MorphStream::new(
        app,
        store,
        EngineConfig::with_threads(4)
            .with_punctuation_interval(1_000)
            .with_reclaim_after_batch(false),
    );
    let mut pipeline = engine.pipeline();
    pipeline.push_iter(events);
    let report = pipeline.finish();
    let actual: i64 = report.outputs.iter().sum();

    println!(
        "{} quote/trade tuples joined at {:.2}k events/s",
        report.events(),
        report.k_events_per_second()
    );
    println!("expected accumulated matches: {}", expected.last().unwrap());
    println!("actual accumulated matches:   {actual}");
    assert_eq!(
        *expected.last().unwrap() as i64,
        actual,
        "join must match the oracle"
    );
    println!("join output matches the analytical oracle ✔");
}
