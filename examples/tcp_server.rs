//! End-to-end network demo: an in-process `morphstream serve` instance fed
//! by the loadgen client over real TCP, scraped over HTTP, and drained
//! gracefully — the same path `morphstream serve` / `morphstream loadgen`
//! exercise as separate processes.
//!
//! Run with `cargo run --release --example tcp_server`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use morphstream_server::{run_loadgen, LoadgenOptions, ServeOptions, Server};

fn main() {
    // A server on ephemeral ports: the Streaming Ledger entry operator
    // feeding an `audit` operator over a bounded channel.
    let mut opts = ServeOptions::default();
    opts.workload = opts
        .workload
        .with_key_space(100_000)
        .with_txns_per_batch(2_000);
    opts.workload.udf_complexity_us = 0;
    let server = Server::start(opts).expect("start server");
    println!("serving events on {}", server.event_addr());
    println!("metrics on http://{}/metrics", server.metrics_addr());

    // Drive a Zipf-skewed bursty stream at it over a real socket.
    let load = LoadgenOptions {
        addr: server.event_addr().to_string(),
        events: 100_000,
        key_space: 100_000,
        zipf_theta: 0.8,
        ..LoadgenOptions::default()
    };
    let report = run_loadgen(&load).expect("loadgen run");
    println!("loadgen: {}", report.render());

    // Wait until every sent event has been pushed into the engine, then
    // take one Prometheus scrape.
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.events_ingested() < load.events as u64 {
        assert!(Instant::now() < deadline, "server never drained the stream");
        std::thread::sleep(Duration::from_millis(10));
    }
    let metrics = http_get(server.metrics_addr(), "/metrics");
    for line in metrics.lines().filter(|l| !l.starts_with('#')).take(12) {
        println!("scrape: {line}");
    }

    let summary = server.shutdown();
    println!(
        "drained: {} events ({} committed, {} aborted) in {} batches over {} frames",
        summary.snapshot.events,
        summary.snapshot.committed,
        summary.snapshot.aborted,
        summary.snapshot.batches,
        summary.frames,
    );
    assert_eq!(summary.snapshot.events, load.events as u64);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: example\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or(response)
}
