//! Multi-stage fraud detection on an operator topology: three transactional
//! operators chained into one dataflow that is itself a `TxnEngine`.
//!
//! ```text
//!   card feed ─┐
//!              ├─ merge_by_timestamp ─▶ [enrichment] ─▶ [scoring] ─▶ [settlement]
//! online feed ─┘                        activity tbl    non-det      balances +
//!                                                       audit reads  quarantine
//! ```
//!
//! * **account-enrichment** maintains a per-account running spend total and
//!   annotates every transaction with it;
//! * **fraud-scoring** flags transactions by amount and spend velocity and
//!   audits a pseudo-random account profile per transaction with a
//!   *non-deterministic read* (the key is resolved at execution time);
//! * **ledger-settlement** debits clean transactions from the account
//!   balance (aborting on insufficient funds) and diverts flagged amounts to
//!   a quarantine ledger.
//!
//! The input is two deterministic feeds (card-present and online) interleaved
//! in timestamp order by `Source::merge_by_timestamp`, and the whole dataflow
//! is driven through the ordinary `Pipeline` push API — on the *concurrent*
//! topology runtime: every operator instance runs on its own thread behind a
//! bounded channel, and the scoring stage runs two parallel instances keyed
//! by account (each instance owns its accounts' score state; outputs come
//! back in the original event order regardless of the parallelism).
//!
//! ```text
//! cargo run --release --example fraud_pipeline
//! ```

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{
    app::result_or_zero, udfs, EngineConfig, Route, StreamApp, TopologyBuilder, TopologyConfig,
    TxnBuilder, TxnEngine, TxnOutcome,
};
use morphstream_common::rng::DetRng;
use morphstream_common::{TableId, Value};
use morphstream_workloads::{from_iter, Source};

const EVENTS_PER_FEED: usize = 4_096;
const PUNCTUATION: usize = 512;
const INITIAL_BALANCE: Value = 500_000;
/// Single transactions at or above this amount are flagged.
const FLAG_AMOUNT: Value = 950;
/// Accounts whose enriched running total exceeds this are flagged.
const VELOCITY_LIMIT: Value = 30_000;
/// Number of audit-trail profiles sampled by the non-deterministic read.
const AUDIT_PROFILES: u64 = 64;
const ACCOUNTS: u64 = 256;

/// One payment transaction arriving from a feed.
#[derive(Debug, Clone)]
struct CardTxn {
    account: u64,
    amount: Value,
    /// Event-time used to merge the feeds.
    ts: u64,
}

/// Deterministic feed of `count` transactions; `phase` offsets the event
/// times so two feeds interleave.
fn feed(seed: u64, count: usize, phase: u64) -> Vec<CardTxn> {
    let mut rng = DetRng::new(seed);
    (0..count as u64)
        .map(|i| CardTxn {
            account: rng.next_range(0, ACCOUNTS),
            amount: rng.next_range(1, 1_000) as Value,
            ts: i * 2 + phase,
        })
        .collect()
}

/// Stage 1: annotate each transaction with the account's running spend.
struct AccountEnrichment {
    activity: TableId,
}

#[derive(Debug, Clone)]
struct Enriched {
    txn: CardTxn,
    running_total: Value,
}

impl StreamApp for AccountEnrichment {
    type Event = CardTxn;
    type Output = Enriched;

    fn state_access(&self, txn: &CardTxn, access: &mut TxnBuilder) {
        access.write(self.activity, txn.account, udfs::add_delta(txn.amount));
    }

    fn post_process(&self, txn: &CardTxn, outcome: &TxnOutcome) -> Enriched {
        Enriched {
            txn: txn.clone(),
            running_total: result_or_zero(outcome, 0),
        }
    }
}

/// Stage 2: score transactions; every scoring transaction additionally
/// audits a pseudo-random profile through a non-deterministic read.
struct FraudScoring {
    scores: TableId,
    audit: TableId,
}

#[derive(Debug, Clone)]
struct Scored {
    txn: CardTxn,
    flagged: bool,
}

impl StreamApp for FraudScoring {
    type Event = Enriched;
    type Output = Scored;

    fn state_access(&self, enriched: &Enriched, access: &mut TxnBuilder) {
        // The audited profile is a function of the execution-time timestamp —
        // unknowable at TPG-construction time, so the engine schedules it as
        // a non-deterministic operation (Section 8.2.5 of the paper).
        access.non_det_read(self.audit, Arc::new(|ts| ts % AUDIT_PROFILES), None);
        access.write(self.scores, enriched.txn.account, udfs::add_delta(1));
    }

    fn post_process(&self, enriched: &Enriched, _outcome: &TxnOutcome) -> Scored {
        let flagged = enriched.txn.amount >= FLAG_AMOUNT || enriched.running_total > VELOCITY_LIMIT;
        Scored {
            txn: enriched.txn.clone(),
            flagged,
        }
    }
}

/// Stage 3: settle clean transactions against the account balance; divert
/// flagged amounts to the quarantine ledger.
struct LedgerSettlement {
    balances: TableId,
    quarantine: TableId,
}

impl StreamApp for LedgerSettlement {
    type Event = Scored;
    type Output = bool;

    fn state_access(&self, scored: &Scored, access: &mut TxnBuilder) {
        if scored.flagged {
            access.write(self.quarantine, 0, udfs::add_delta(scored.txn.amount));
        } else {
            access.write(
                self.balances,
                scored.txn.account,
                udfs::withdraw(scored.txn.amount),
            );
        }
    }

    fn post_process(&self, scored: &Scored, outcome: &TxnOutcome) -> bool {
        outcome.committed && !scored.flagged
    }
}

fn main() {
    let store = StateStore::new();
    let activity = store.create_table("activity", 0, true);
    let scores = store.create_table("scores", 0, true);
    let audit = store.create_table("audit", 0, true);
    let balances = store.create_table("balances", INITIAL_BALANCE, true);
    let quarantine = store.create_table("quarantine", 0, true);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let config = EngineConfig::with_threads(threads).with_punctuation_interval(PUNCTUATION);

    // enrichment -> scoring (2 keyed instances) -> settlement, all over one
    // shared store, on the concurrent runtime
    let mut builder = TopologyBuilder::new();
    let enrich = builder.add_operator(
        "account-enrichment",
        AccountEnrichment { activity },
        store.clone(),
        config,
    );
    let score = builder
        .add_operator(
            "fraud-scoring",
            FraudScoring { scores, audit },
            store.clone(),
            config,
        )
        // keyed by account: each instance owns its accounts' score state
        .with_parallelism(2);
    let settle = builder.add_operator(
        "ledger-settlement",
        LedgerSettlement {
            balances,
            quarantine,
        },
        store.clone(),
        config,
    );
    builder.connect(
        enrich,
        score,
        Route::keyed(
            |enriched: &Enriched| enriched.txn.account,
            |enriched: &Enriched| Some(enriched.clone()),
        ),
    );
    builder.connect(score, settle, Route::map(|scored: &Scored| scored.clone()));
    let topology_config = TopologyConfig::default()
        .with_concurrent(true)
        .with_channel_capacity(2);
    let mut topology = builder
        .build(enrich, settle, topology_config)
        .expect("valid dataflow");

    // Two deterministic feeds, interleaved in event-time order.
    let card_present = from_iter(feed(0xF4A6D, EVENTS_PER_FEED, 0));
    let online = from_iter(feed(0x05A1E, EVENTS_PER_FEED, 1));
    let merged = card_present.merge_by_timestamp(online, |txn| txn.ts);
    let total_events = merged.expected_events().expect("bounded feeds");

    let mut pipeline = topology.pipeline();
    pipeline.push_iter(merged);
    let report = pipeline.finish();

    let settled = report.outputs.iter().filter(|ok| **ok).count();
    println!(
        "fraud pipeline: {} events through {} operator instances, {} waves (concurrent runtime)",
        total_events,
        report.operators.len(),
        report.batches.len()
    );
    println!(
        "{:<20} {:>8} {:>10} {:>8} {:>14}",
        "operator", "events", "committed", "aborted", "k events/s"
    );
    for op in &report.operators {
        println!(
            "{:<20} {:>8} {:>10} {:>8} {:>14.2}",
            op.name,
            op.events,
            op.committed,
            op.aborted,
            op.k_events_per_second()
        );
    }
    println!(
        "settled {} / flagged-or-failed {} | quarantined amount {}",
        settled,
        total_events - settled,
        store.read_latest(quarantine, 0).unwrap_or(0)
    );

    for edge in &report.edges {
        println!(
            "edge {:<22} -> {:<20} queue_full_waits {}",
            edge.from, edge.to, edge.queue_full_waits
        );
    }

    // The dataflow is transactional end to end: every event produced exactly
    // one output (in input order, despite the parallel scoring stage), and
    // per-instance counts aggregate into the topology totals.
    assert_eq!(report.events(), total_events);
    assert_eq!(report.outputs.len(), total_events);
    // enrichment, scoring#0, scoring#1, settlement
    assert_eq!(report.operators.len(), 4);
    let summed: usize = report.operators.iter().map(|op| op.committed).sum();
    assert_eq!(report.committed, summed);
}
