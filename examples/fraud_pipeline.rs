//! Multi-stage fraud detection, declared in TOML: `scenarios/fraud.toml` is
//! loaded through the dataflow loader, run on the concurrent topology
//! runtime, and then rebuilt *programmatically* from the same registry
//! stages — the example asserts both constructions produce the identical
//! `state_digest()`, so the scenario file is a faithful twin of the code.
//!
//! ```text
//!   card-present ─┐
//!                 ├─ merged by ts ─▶ [enrichment] ─▶ [scoring ×2 keyed] ─▶ [settlement]
//!         online ─┘                  activity tbl    non-det audit reads   balances +
//!                                                                          quarantine
//! ```
//!
//! * **fraud-enrichment** maintains a per-account running spend total and
//!   annotates every transaction with it (in `aux`);
//! * **fraud-scoring** flags transactions by amount and spend velocity and
//!   audits a pseudo-random profile per transaction with a
//!   *non-deterministic read* (the key is resolved at execution time); it
//!   runs two parallel instances keyed by account;
//! * **fraud-settlement** debits clean transactions from the account balance
//!   (aborting on insufficient funds) and diverts flagged amounts to a
//!   quarantine ledger.
//!
//! ```text
//! cargo run --release --example fraud_pipeline
//! ```

use std::path::PathBuf;

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, EntryBinding, Route, TopologyBuilder, TopologyConfig, TxnEngine};
use morphstream_common::rng::DetRng;
use morphstream_common::Value;
use morphstream_dataflow::apps::{FraudEnrichmentStage, FraudScoringStage, FraudSettlementStage};
use morphstream_dataflow::{load_file, EventKind, LoadOverrides, ScenarioEvent};

// The knobs of scenarios/fraud.toml, repeated here for the programmatic twin.
const EVENTS_PER_FEED: usize = 4_096;
const PUNCTUATION: usize = 512;
const THREADS: usize = 2;
const INITIAL_BALANCE: Value = 500_000;
const FLAG_AMOUNT: Value = 950;
const VELOCITY_LIMIT: Value = 30_000;
const AUDIT_PROFILES: u64 = 64;
const ACCOUNTS: u64 = 256;
const CARD_PRESENT_SEED: u64 = 1_002_093;
const ONLINE_SEED: u64 = 23_070;

/// The `cards` feed source of the registry, reproduced by hand: event `i`
/// carries `ts = phase + 2 * i`, a random account and a random amount.
fn feed(seed: u64, phase: u64) -> Vec<ScenarioEvent> {
    let mut rng = DetRng::new(seed);
    (0..EVENTS_PER_FEED as u64)
        .map(|i| {
            let mut ev = ScenarioEvent::new(EventKind::Card, phase + i * 2);
            ev.key = rng.next_range(0, ACCOUNTS);
            ev.amount = rng.next_range(1, 1_000) as Value;
            ev
        })
        .collect()
}

/// Build the fraud topology in code, mirroring `scenarios/fraud.toml` stage
/// by stage (same stage ids, so the stage-prefixed table names — and with
/// them the store digest — are comparable).
fn build_programmatic() -> (
    morphstream::Topology<ScenarioEvent, ScenarioEvent>,
    StateStore,
) {
    let store = StateStore::new();
    let config = EngineConfig::with_threads(THREADS).with_punctuation_interval(PUNCTUATION);

    let mut builder = TopologyBuilder::new();
    let enrich = builder.add_operator(
        "enrichment",
        FraudEnrichmentStage::new(&store, "enrichment"),
        store.clone(),
        config,
    );
    let score = builder
        .add_operator(
            "scoring",
            FraudScoringStage::new(
                &store,
                "scoring",
                FLAG_AMOUNT,
                VELOCITY_LIMIT,
                AUDIT_PROFILES,
            ),
            store.clone(),
            config,
        )
        // keyed by account: each instance owns its accounts' score state
        .with_parallelism(2);
    let settle = builder.add_operator(
        "settlement",
        FraudSettlementStage::new(&store, "settlement", INITIAL_BALANCE),
        store.clone(),
        config,
    );
    builder.connect(
        enrich,
        score,
        Route::keyed(
            |ev: &ScenarioEvent| ev.key,
            |ev: &ScenarioEvent| Some(ev.clone()),
        ),
    );
    builder.connect(score, settle, Route::map(Clone::clone));

    let topology_config = TopologyConfig::default()
        .with_concurrent(true)
        .with_channel_capacity(2);
    let entry = EntryBinding::new(
        enrich,
        Route::filter_map(|ev: &ScenarioEvent| (ev.feed == 0).then(|| ev.clone())),
    );
    let topology = builder
        .build_with_entries(vec![entry], settle, topology_config)
        .expect("valid dataflow");
    (topology, store)
}

fn main() {
    // --- the declarative run: load scenarios/fraud.toml ------------------
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios/fraud.toml");
    let mut loaded =
        load_file(&path, &LoadOverrides::default()).expect("scenarios/fraud.toml loads");
    let toml_events = std::mem::take(&mut loaded.events);
    let total_events = toml_events.len();

    let mut pipeline = loaded.topology.pipeline();
    pipeline.push_iter(toml_events.clone());
    let report = pipeline.finish();
    let toml_digest = loaded.store.state_digest();

    let settled = report.outputs.iter().filter(|ev| ev.marked).count();
    println!(
        "fraud pipeline (TOML): {} events through {} operator instances, {} waves (concurrent runtime)",
        total_events,
        report.operators.len(),
        report.batches.len()
    );
    println!(
        "{:<20} {:>8} {:>10} {:>8} {:>14}",
        "operator", "events", "committed", "aborted", "k events/s"
    );
    for op in &report.operators {
        println!(
            "{:<20} {:>8} {:>10} {:>8} {:>14.2}",
            op.name,
            op.events,
            op.committed,
            op.aborted,
            op.k_events_per_second()
        );
    }
    println!(
        "settled {} / flagged-or-failed {} | state digest {:016x}",
        settled,
        total_events - settled,
        toml_digest
    );
    for edge in &report.edges {
        println!(
            "edge {:<14} -> {:<12} queue_full_waits {}",
            edge.from, edge.to, edge.queue_full_waits
        );
    }

    // --- the programmatic twin: same stages, built in code ---------------
    let mut merged: Vec<ScenarioEvent> = feed(CARD_PRESENT_SEED, 0);
    merged.extend(feed(ONLINE_SEED, 1));
    merged.sort_by_key(|ev| ev.ts);
    // The hand-built feed reproduces the loader's merged feed exactly.
    assert_eq!(merged, toml_events);

    let (mut topology, store) = build_programmatic();
    let mut pipeline = topology.pipeline();
    pipeline.push_iter(merged);
    let twin_report = pipeline.finish();
    let twin_digest = store.state_digest();

    println!(
        "fraud pipeline (code): same stages built programmatically, state digest {twin_digest:016x}"
    );

    // The scenario file and the hand-built topology are interchangeable:
    // identical final state, identical per-event outputs.
    assert_eq!(twin_digest, toml_digest);
    assert_eq!(report.events(), total_events);
    assert_eq!(twin_report.events(), total_events);
    assert_eq!(report.outputs, twin_report.outputs);
    // enrichment, scoring#0, scoring#1, settlement
    assert_eq!(report.operators.len(), 4);
    let summed: usize = report.operators.iter().map(|op| op.committed).sum();
    assert_eq!(report.committed, summed);
    println!("digest parity: TOML scenario == programmatic topology");
}
