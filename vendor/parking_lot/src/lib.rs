//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment cannot reach a crates registry, so this vendored
//! crate implements the API subset the workspace actually uses on top of
//! `std::sync`, with `parking_lot`'s ergonomics:
//!
//! * locks are **non-poisoning** — a panic while holding a guard does not
//!   make later `lock()`/`read()`/`write()` calls fail;
//! * `lock()`, `read()` and `write()` return guards directly, not `Result`s;
//! * [`Condvar::wait`]/[`Condvar::wait_for`] take `&mut MutexGuard` instead
//!   of consuming the guard.
//!
//! Performance characteristics are those of `std::sync` primitives (futex
//! based on Linux), not of the real parking-lot algorithm; that is acceptable
//! for correctness testing and smoke benchmarking. Replace with the real
//! crate once registry access is available.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual exclusion primitive. Non-poisoning: panics while holding the
/// guard do not affect later acquisitions.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed:
    /// `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]. The `Option` is only ever `None` transiently
/// inside [`Condvar`] waits, which need to move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock. Non-poisoning, like `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard for [`RwLock`] (std's guard, re-exported under
/// parking_lot's name).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`]s, mirroring
/// `parking_lot::Condvar`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until another thread notifies this condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during condvar wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            drop(started);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait_for(&mut started, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn locks_do_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
