//! Offline shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the subset of the proptest API used by this workspace's property
//! tests, driven by a deterministic splitmix64 generator seeded from the test
//! name (so failures reproduce bit-for-bit across runs and machines).
//!
//! Differences from real proptest, by design of the shim:
//!
//! * **no shrinking** — a failing case panics with the generated inputs via
//!   the normal assertion message instead of a minimized counterexample;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately (they are plain
//!   `assert!`s) rather than returning `TestCaseError`;
//! * strategies are sampled directly instead of building value trees.
//!
//! The grammar accepted by [`proptest!`] is the one real proptest defines, so
//! the test sources compile unchanged against either implementation.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic splitmix64 stream used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives a per-test seed from the test's name, so every test gets an
    /// independent, stable stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty range handed to the proptest shim");
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }
}

/// Runner configuration; only the case count is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of arbitrary values of type `Self::Value`.
///
/// Unlike real proptest there is no intermediate value tree: strategies
/// sample values directly from a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through the partial function `f`, resampling
    /// when it returns `None`. `reason` names the filter in the panic message
    /// if sampling keeps failing.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected 10000 consecutive samples",
            self.reason
        );
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u128) as usize;
        self.options[idx].generate(rng)
    }
}

/// Boxes a strategy for storage in a [`Union`]; used by [`prop_oneof!`] so
/// every arm unifies to the same trait-object type.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty integer range strategy");
                let span = (hi - lo) as u128;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Accepts real proptest's grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, ys in proptest::collection::vec(0i64..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test samples its strategies `config.cases` times from a stream seeded
/// by the test's name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl ($config)
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl ($crate::ProptestConfig::default())
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
    (
        @impl ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __ms_config: $crate::ProptestConfig = $config;
                let mut __ms_rng = $crate::TestRng::for_test(stringify!($name));
                for __ms_case in 0..__ms_config.cases {
                    let ($($arg,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut __ms_rng),)+
                    );
                    let _ = __ms_case;
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategy arms, all producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::boxed($arm) ),+ ])
    };
}

/// Shim for proptest's `prop_assert!`: plain `assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for proptest's `prop_assert_eq!`: plain `assert_eq!` (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_grammar_roundtrips(
            mut xs in crate::collection::vec((0u64..9, 1i64..4).prop_map(|(a, b)| a as i64 * b), 1..20),
            pick in prop_oneof![Just(1usize), Just(2usize)],
            odd in (0i32..50).prop_filter_map("even", |v| (v % 2 == 1).then_some(v)),
        ) {
            xs.sort_unstable();
            prop_assert!(xs.len() < 20 && !xs.is_empty());
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(odd % 2, 1);
        }
    }
}
