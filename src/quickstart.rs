//! The quickstart bank application, shared by `examples/quickstart.rs` and
//! its guard test `tests/quickstart_flow.rs` so the two cannot drift apart.

use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::{StateRef, TableId, Value};

/// Input events of the quickstart application.
pub enum BankEvent {
    /// Credit `amount` to `account`.
    Deposit {
        /// Target account.
        account: u64,
        /// Amount credited.
        amount: Value,
    },
    /// Move `amount` from `from` to `to`; aborts on insufficient funds.
    Transfer {
        /// Source account.
        from: u64,
        /// Destination account.
        to: u64,
        /// Amount moved.
        amount: Value,
    },
}

/// The application: one table of account balances, deposits credit an
/// account, transfers move money and abort on insufficient funds.
pub struct Bank {
    /// The account-balances table.
    pub accounts: TableId,
}

impl StreamApp for Bank {
    type Event = BankEvent;
    type Output = String;

    fn state_access(&self, event: &BankEvent, txn: &mut TxnBuilder) {
        match event {
            BankEvent::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            BankEvent::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, event: &BankEvent, outcome: &TxnOutcome) -> String {
        let verb = match event {
            BankEvent::Deposit { account, amount } => format!("deposit {amount} -> {account}"),
            BankEvent::Transfer { from, to, amount } => {
                format!("transfer {amount}: {from} -> {to}")
            }
        };
        if outcome.committed {
            format!("{verb}: committed")
        } else {
            format!(
                "{verb}: ABORTED ({})",
                outcome.abort_reason.as_ref().unwrap()
            )
        }
    }
}

/// The event stream the quickstart feeds: five commits plus one overdraft
/// that must abort (account 3 only holds 60 when asked for 1000).
pub fn quickstart_events() -> Vec<BankEvent> {
    vec![
        BankEvent::Deposit {
            account: 1,
            amount: 100,
        },
        BankEvent::Deposit {
            account: 2,
            amount: 50,
        },
        BankEvent::Transfer {
            from: 1,
            to: 2,
            amount: 30,
        },
        BankEvent::Transfer {
            from: 2,
            to: 3,
            amount: 60,
        },
        BankEvent::Transfer {
            from: 3,
            to: 1,
            amount: 1_000,
        },
        BankEvent::Deposit {
            account: 3,
            amount: 5,
        },
    ]
}
