//! Workspace umbrella crate: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). It re-exports the public
//! crates so examples and tests can use one import root.

pub mod quickstart;

pub use morphstream;
pub use morphstream_baselines as baselines;
pub use morphstream_common as common;
pub use morphstream_dataflow as dataflow;
pub use morphstream_executor as executor;
pub use morphstream_scheduler as scheduler;
pub use morphstream_storage as storage;
pub use morphstream_tpg as tpg;
pub use morphstream_workloads as workloads;
