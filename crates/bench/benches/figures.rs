//! Criterion benchmarks over the core figure comparisons.
//!
//! Every group measures a smoke-scale version of one evaluation figure so
//! that `cargo bench` finishes in minutes; the `fig*` binaries run the full
//! sweeps and print the paper-style tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use morphstream_baselines::SystemUnderTest;
use morphstream_bench::harness::{bench_engine_config, bench_sl_config, bench_threads, run_sl_on};
use morphstream_bench::Scale;
use morphstream_workloads::StreamingLedgerApp;

/// Figure 11 core comparison: SL throughput per system.
fn fig11_systems(c: &mut Criterion) {
    let (config, events) = bench_sl_config(Scale::Smoke);
    let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
    let events_vec = StreamingLedgerApp::generate(&config, events, 0.6);
    let mut group = c.benchmark_group("fig11_sl_throughput");
    group.sample_size(10);
    for system in [
        SystemUnderTest::MorphStream,
        SystemUnderTest::TStream,
        SystemUnderTest::SStore,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(system),
            &system,
            |b, &system| {
                b.iter(|| run_sl_on(system, &config, engine_config, events_vec.clone()));
            },
        );
    }
    group.finish();
}

/// Figure 18/19/20 ablations: one representative point per dimension.
fn ablation_decisions(c: &mut Criterion) {
    use morphstream::{storage::StateStore, MorphStream};
    use morphstream::{AbortHandling, ExplorationStrategy, Granularity, SchedulingDecision};
    use morphstream_workloads::GrepSumApp;

    let config = morphstream_common::WorkloadConfig::grep_sum()
        .with_key_space(10_000)
        .with_udf_complexity_us(0)
        .with_txns_per_batch(1_024);
    let events = GrepSumApp::generate(&config.with_abort_ratio(0.0), 2_048);
    let mut group = c.benchmark_group("ablation_scheduling_decisions");
    group.sample_size(10);
    for decision in [
        SchedulingDecision {
            exploration: ExplorationStrategy::NonStructured,
            granularity: Granularity::Fine,
            abort_handling: AbortHandling::Eager,
        },
        SchedulingDecision {
            exploration: ExplorationStrategy::StructuredBfs,
            granularity: Granularity::Coarse,
            abort_handling: AbortHandling::Lazy,
        },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(decision),
            &decision,
            |b, &decision| {
                b.iter(|| {
                    let store = StateStore::new();
                    let app = GrepSumApp::new(&store, &config);
                    let mut engine = MorphStream::new(
                        app,
                        store,
                        bench_engine_config(bench_threads(), config.txns_per_batch),
                    )
                    .with_fixed_decision(decision);
                    engine.process(events.clone())
                });
            },
        );
    }
    group.finish();
}

/// Figure 14 window queries: one window size per iteration.
fn fig14_window(c: &mut Criterion) {
    use morphstream::{storage::StateStore, MorphStream};
    use morphstream_workloads::GrepSumApp;

    let config = morphstream_common::WorkloadConfig::grep_sum()
        .with_key_space(10_000)
        .with_udf_complexity_us(0)
        .with_abort_ratio(0.0)
        .with_txns_per_batch(1_024);
    let mut group = c.benchmark_group("fig14_window_size");
    group.sample_size(10);
    for window in [100u64, 1_000] {
        let events = GrepSumApp::generate_windowed(&config, 2_048, 100, 10, window);
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, _| {
            b.iter(|| {
                let store = StateStore::new();
                let app = GrepSumApp::new(&store, &config);
                let mut engine = MorphStream::new(
                    app,
                    store,
                    bench_engine_config(bench_threads(), config.txns_per_batch)
                        .with_reclaim_after_batch(false),
                );
                engine.process(events.clone())
            });
        });
    }
    group.finish();
}

criterion_group!(figures, fig11_systems, ablation_decisions, fig14_window);
criterion_main!(figures);
