//! Shared helpers for the figure harnesses: build a system under test, run a
//! workload through it, and report throughput/latency in the paper's units.

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, EventSource, MorphStream, RunReport, TxnEngine};
use morphstream_baselines::{LockedSpeEngine, SStoreEngine, SystemUnderTest, TStreamEngine};
use morphstream_common::json::JsonObject;
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand events: used by `cargo bench` and CI smoke runs.
    Smoke,
    /// Tens of thousands of events: closer to the paper's batch sizes; used
    /// by the `fig*` binaries when `--full` is passed.
    Full,
}

impl Scale {
    /// Parse from command-line arguments: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Smoke
        }
    }

    /// Multiplier applied to event counts.
    pub fn factor(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Full => 8,
        }
    }

    /// Stable lowercase name, used in machine-readable output.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }
    }
}

/// Condensed result of running one system on one workload.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Which system ran.
    pub system: SystemUnderTest,
    /// Throughput in thousands of events per second.
    pub k_events_per_second: f64,
    /// Median end-to-end latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// Committed / aborted transaction counts.
    pub committed: usize,
    /// Aborted transaction count.
    pub aborted: usize,
    /// Peak bytes retained by the state store during the run (the memory
    /// axis of Figures 16/17).
    pub peak_bytes_retained: u64,
    /// Total TPG-construction wall time across batches (seconds).
    pub construct_seconds: f64,
    /// Construction time hidden behind execution of other batches (seconds);
    /// non-zero only for the pipelined MorphStream configuration.
    pub overlap_seconds: f64,
}

impl SystemReport {
    /// Build from a run report.
    pub fn from_run<O>(system: SystemUnderTest, mut report: RunReport<O>) -> Self {
        let p50 = report
            .latency
            .percentile(50.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        let p95 = report
            .latency
            .percentile(95.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        Self {
            system,
            k_events_per_second: report.k_events_per_second(),
            p50_latency_ms: p50,
            p95_latency_ms: p95,
            committed: report.committed,
            aborted: report.aborted,
            peak_bytes_retained: report.memory.peak_bytes(),
            construct_seconds: report.stage_timings.construct.as_secs_f64(),
            overlap_seconds: report.stage_timings.overlap.as_secs_f64(),
        }
    }

    /// Fraction of construction time hidden behind execution.
    pub fn overlap_fraction(&self) -> f64 {
        overlap_fraction_of(self.construct_seconds, self.overlap_seconds)
    }

    /// One formatted table row.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>10} {:>10}",
            self.system.to_string(),
            self.k_events_per_second,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.committed,
            self.aborted
        )
    }

    /// Table header matching [`SystemReport::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "system", "k events/s", "p50 ms", "p95 ms", "committed", "aborted"
        )
    }

    /// One JSON object row, rendered through the workspace-shared
    /// [`morphstream_common::json`] path (serde is feature-gated off in
    /// offline builds).
    pub fn json(&self) -> String {
        JsonObject::new()
            .string("system", &self.system.to_string())
            .fixed("k_events_per_second", self.k_events_per_second, 3)
            .fixed("p50_latency_ms", self.p50_latency_ms, 4)
            .fixed("p95_latency_ms", self.p95_latency_ms, 4)
            .unsigned("committed", self.committed as u64)
            .unsigned("aborted", self.aborted as u64)
            .unsigned("peak_bytes_retained", self.peak_bytes_retained)
            .fixed("construct_s", self.construct_seconds, 6)
            .fixed("overlap_s", self.overlap_seconds, 6)
            .fixed("overlap_fraction", self.overlap_fraction(), 4)
            .build()
    }
}

/// `overlap_s / construct_s`, clamped to [0, 1]. Delegates to
/// [`StageTimings::overlap_fraction`] so the clamp and zero-construct
/// semantics live in exactly one place, however a report stores its timings.
pub fn overlap_fraction_of(construct_s: f64, overlap_s: f64) -> f64 {
    use morphstream_common::metrics::StageTimings;
    use std::time::Duration;
    StageTimings {
        construct: Duration::from_secs_f64(construct_s.max(0.0)),
        execute: Duration::ZERO,
        overlap: Duration::from_secs_f64(overlap_s.max(0.0)),
    }
    .overlap_fraction()
}

pub(crate) use morphstream_common::json::escape as json_escape;

/// Parse `--json PATH` from the command line of a `fig*` binary. Exits with
/// an error if `--json` is present without a following path, so a malformed
/// invocation cannot silently skip writing the file.
pub fn json_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return match args.next() {
                Some(path) => Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("error: --json requires a path argument");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

/// Write `reports` to `path` as one JSON document, tagging the benchmark name
/// and scale. This is what the CI smoke-bench job uploads to seed the
/// `BENCH_*.json` perf trajectory.
pub fn write_json(
    path: &std::path::Path,
    bench: &str,
    scale: Scale,
    reports: &[SystemReport],
) -> std::io::Result<()> {
    let rows: Vec<String> = reports.iter().map(SystemReport::json).collect();
    let doc = format!(
        "{{\"bench\":\"{}\",\"scale\":\"{}\",\"rows\":[\n  {}\n]}}\n",
        json_escape(bench),
        scale.name(),
        rows.join(",\n  ")
    );
    std::fs::write(path, doc)
}

/// Benchmark engine configuration: all available cores, paper-style
/// punctuation interval.
pub fn bench_engine_config(threads: usize, punctuation: usize) -> EngineConfig {
    EngineConfig::with_threads(threads).with_punctuation_interval(punctuation)
}

/// Drive any engine through the unified [`TxnEngine`] trait and condense its
/// report. The single driver loop shared by every figure and every system
/// under test.
pub fn drive<E, I>(system: SystemUnderTest, engine: &mut E, events: I) -> SystemReport
where
    E: TxnEngine,
    I: IntoIterator<Item = E::Event>,
{
    SystemReport::from_run(system, engine.run(events))
}

/// Chunk size used when pulling from an [`EventSource`] in
/// [`drive_source`]: big enough to amortise the pull loop, far smaller than
/// a punctuation interval.
pub const SOURCE_CHUNK: usize = 256;

/// Like [`drive`], but pulling from any conveyor-style [`EventSource`] —
/// a generated workload source or a socket decoder — through
/// [`Pipeline::push_source`](morphstream::Pipeline::push_source), so the
/// benchmark path and the server path exercise the same ingestion loop.
pub fn drive_source<E, S>(system: SystemUnderTest, engine: &mut E, source: &mut S) -> SystemReport
where
    E: TxnEngine,
    S: EventSource<Event = E::Event>,
{
    let mut pipeline = engine.pipeline();
    pipeline.push_source(source, SOURCE_CHUNK);
    SystemReport::from_run(system, pipeline.finish())
}

/// Run the Streaming Ledger workload on one system and return its condensed
/// report. This is the core comparison reused by Figures 11, 12, 16 and 21.
/// Engine construction is per-system; the driving happens once, in [`drive`].
pub fn run_sl_on(
    system: SystemUnderTest,
    config: &WorkloadConfig,
    engine_config: EngineConfig,
    events: Vec<SlEvent>,
) -> SystemReport {
    let store = StateStore::new();
    let app = StreamingLedgerApp::new(&store, config);
    match system {
        SystemUnderTest::MorphStream => {
            let mut engine = MorphStream::new(app, store, engine_config);
            drive(system, &mut engine, events)
        }
        SystemUnderTest::TStream => {
            let mut engine = TStreamEngine::new(app, store, engine_config);
            drive(system, &mut engine, events)
        }
        SystemUnderTest::SStore => {
            let mut engine = SStoreEngine::new(app, store, engine_config);
            drive(system, &mut engine, events)
        }
        SystemUnderTest::LockedSpeWithLocks => {
            let mut cfg = engine_config;
            cfg.remote_state_latency_us = cfg.remote_state_latency_us.max(20);
            let mut engine = LockedSpeEngine::with_locks(app, store, cfg);
            drive(system, &mut engine, events)
        }
        SystemUnderTest::LockedSpeWithoutLocks => {
            let mut cfg = engine_config;
            cfg.remote_state_latency_us = cfg.remote_state_latency_us.max(20);
            let mut engine = LockedSpeEngine::without_locks(app, store, cfg);
            drive(system, &mut engine, events)
        }
        SystemUnderTest::Topology => {
            // The degenerate single-operator dataflow: measures the topology
            // wrapper's overhead over the bare engine on the same workload.
            let mut builder = morphstream::TopologyBuilder::new();
            let op = builder.add_operator("streaming-ledger", app, store, engine_config);
            let mut engine = builder
                .build(op, op, morphstream::TopologyConfig::default())
                .expect("a single operator is a valid dataflow");
            drive(system, &mut engine, events)
        }
    }
}

/// Streaming Ledger configuration used by the benchmarks: Table 6 defaults
/// shrunk to a size that runs in seconds on a laptop-class container.
pub fn bench_sl_config(scale: Scale) -> (WorkloadConfig, usize) {
    let config = WorkloadConfig::streaming_ledger()
        .with_key_space(20_000)
        .with_udf_complexity_us(1)
        .with_txns_per_batch(1_024);
    let events = 4_096 * scale.factor();
    (config, events)
}

/// Number of worker threads used by default in the harness.
pub fn bench_threads() -> usize {
    morphstream_common::config::default_parallelism().min(8)
}

/// Print a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==============================================================");
    println!("{figure}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SystemReport {
        SystemReport {
            system: SystemUnderTest::LockedSpeWithLocks,
            k_events_per_second: 12.5,
            p50_latency_ms: 1.25,
            p95_latency_ms: 2.5,
            committed: 10,
            aborted: 2,
            peak_bytes_retained: 4_096,
            construct_seconds: 0.5,
            overlap_seconds: 0.25,
        }
    }

    #[test]
    fn json_row_carries_every_field() {
        let json = sample_report().json();
        for needle in [
            r#""system":"Flink+Redis (w/ locks)""#,
            r#""k_events_per_second":12.500"#,
            r#""p50_latency_ms":1.2500"#,
            r#""p95_latency_ms":2.5000"#,
            r#""committed":10"#,
            r#""aborted":2"#,
            r#""peak_bytes_retained":4096"#,
            r#""construct_s":0.500000"#,
            r#""overlap_s":0.250000"#,
            r#""overlap_fraction":0.5000"#,
        ] {
            assert!(json.contains(needle), "{json} missing {needle}");
        }
    }

    #[test]
    fn overlap_fraction_handles_zero_construct_time() {
        let mut report = sample_report();
        assert!((report.overlap_fraction() - 0.5).abs() < 1e-9);
        report.construct_seconds = 0.0;
        assert_eq!(report.overlap_fraction(), 0.0);
    }

    #[test]
    fn json_escape_handles_quotes_and_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn write_json_produces_one_row_per_report() {
        let dir = std::env::temp_dir().join("morphstream_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let reports = vec![sample_report(), sample_report()];
        write_json(&path, "fig11_spe_comparison", Scale::Smoke, &reports).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.starts_with(r#"{"bench":"fig11_spe_comparison","scale":"smoke","#));
        assert_eq!(doc.matches(r#""system":"#).count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
