//! Shared helpers for the figure harnesses: build a system under test, run a
//! workload through it, and report throughput/latency in the paper's units.

use morphstream::storage::StateStore;
use morphstream::{EngineConfig, MorphStream, RunReport};
use morphstream_baselines::{LockedSpeEngine, SStoreEngine, SystemUnderTest, TStreamEngine};
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand events: used by `cargo bench` and CI smoke runs.
    Smoke,
    /// Tens of thousands of events: closer to the paper's batch sizes; used
    /// by the `fig*` binaries when `--full` is passed.
    Full,
}

impl Scale {
    /// Parse from command-line arguments: `--full` selects [`Scale::Full`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Smoke
        }
    }

    /// Multiplier applied to event counts.
    pub fn factor(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Full => 8,
        }
    }
}

/// Condensed result of running one system on one workload.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Which system ran.
    pub system: SystemUnderTest,
    /// Throughput in thousands of events per second.
    pub k_events_per_second: f64,
    /// Median end-to-end latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_latency_ms: f64,
    /// Committed / aborted transaction counts.
    pub committed: usize,
    /// Aborted transaction count.
    pub aborted: usize,
}

impl SystemReport {
    /// Build from a run report.
    pub fn from_run<O>(system: SystemUnderTest, mut report: RunReport<O>) -> Self {
        let p50 = report
            .latency
            .percentile(50.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        let p95 = report
            .latency
            .percentile(95.0)
            .map(|d| d.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        Self {
            system,
            k_events_per_second: report.k_events_per_second(),
            p50_latency_ms: p50,
            p95_latency_ms: p95,
            committed: report.committed,
            aborted: report.aborted,
        }
    }

    /// One formatted table row.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>12.2} {:>12.2} {:>12.2} {:>10} {:>10}",
            self.system.to_string(),
            self.k_events_per_second,
            self.p50_latency_ms,
            self.p95_latency_ms,
            self.committed,
            self.aborted
        )
    }

    /// Table header matching [`SystemReport::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "system", "k events/s", "p50 ms", "p95 ms", "committed", "aborted"
        )
    }
}

/// Benchmark engine configuration: all available cores, paper-style
/// punctuation interval.
pub fn bench_engine_config(threads: usize, punctuation: usize) -> EngineConfig {
    EngineConfig::with_threads(threads).with_punctuation_interval(punctuation)
}

/// Run the Streaming Ledger workload on one system and return its condensed
/// report. This is the core comparison reused by Figures 11, 12, 16 and 21.
pub fn run_sl_on(
    system: SystemUnderTest,
    config: &WorkloadConfig,
    engine_config: EngineConfig,
    events: Vec<SlEvent>,
) -> SystemReport {
    match system {
        SystemUnderTest::MorphStream => {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, config);
            let mut engine = MorphStream::new(app, store, engine_config);
            SystemReport::from_run(system, engine.process(events))
        }
        SystemUnderTest::TStream => {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, config);
            let mut engine = TStreamEngine::new(app, store, engine_config);
            SystemReport::from_run(system, engine.process(events))
        }
        SystemUnderTest::SStore => {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, config);
            let mut engine = SStoreEngine::new(app, store, engine_config);
            SystemReport::from_run(system, engine.process(events))
        }
        SystemUnderTest::LockedSpeWithLocks => {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, config);
            let mut cfg = engine_config;
            cfg.remote_state_latency_us = cfg.remote_state_latency_us.max(20);
            let mut engine = LockedSpeEngine::with_locks(app, store, cfg);
            SystemReport::from_run(system, engine.process(events))
        }
        SystemUnderTest::LockedSpeWithoutLocks => {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, config);
            let mut cfg = engine_config;
            cfg.remote_state_latency_us = cfg.remote_state_latency_us.max(20);
            let mut engine = LockedSpeEngine::without_locks(app, store, cfg);
            SystemReport::from_run(system, engine.process(events))
        }
    }
}

/// Streaming Ledger configuration used by the benchmarks: Table 6 defaults
/// shrunk to a size that runs in seconds on a laptop-class container.
pub fn bench_sl_config(scale: Scale) -> (WorkloadConfig, usize) {
    let config = WorkloadConfig::streaming_ledger()
        .with_key_space(20_000)
        .with_udf_complexity_us(1)
        .with_txns_per_batch(1_024);
    let events = 4_096 * scale.factor();
    (config, events)
}

/// Number of worker threads used by default in the harness.
pub fn bench_threads() -> usize {
    morphstream_common::config::default_parallelism().min(8)
}

/// Print a figure banner.
pub fn banner(figure: &str, description: &str) {
    println!("==============================================================");
    println!("{figure}: {description}");
    println!("==============================================================");
}
