//! Regenerates Figure 16 of the paper. Pass `--full` for the larger run and
//! `--json PATH` to also write the rows — including the construct/execute
//! overlap of the pipelined engine — as machine-readable JSON (uploaded by
//! the CI smoke-bench job as `BENCH_fig16_smoke.json`).
fn main() {
    let scale = morphstream_bench::Scale::from_args();
    // Validate the argument list before the (multi-second) measurement runs.
    let json_path = morphstream_bench::harness::json_path_from_args();
    let rows = morphstream_bench::figs::fig16::run(scale);
    if let Some(path) = json_path {
        morphstream_bench::figs::fig16::write_json(&path, scale, &rows)
            .expect("failed to write bench JSON");
        println!("\nwrote {}", path.display());
    }
}
