//! Regenerates Figure 18 of the paper. Pass `--full` for the larger run.
fn main() {
    let scale = morphstream_bench::Scale::from_args();
    morphstream_bench::figs::fig18::run(scale);
}
