//! Operator-topology benchmark: the fused TP operator against its
//! two-operator dataflow split, with per-operator throughput/latency. Pass
//! `--full` for the larger run and `--json PATH` to also write the rows —
//! including the per-operator sub-rows — as machine-readable JSON (uploaded
//! by the CI smoke-bench job as `BENCH_topology_smoke.json`).
fn main() {
    let scale = morphstream_bench::Scale::from_args();
    // Validate the argument list before the (multi-second) measurement runs.
    let json_path = morphstream_bench::harness::json_path_from_args();
    let rows = morphstream_bench::figs::fig_topology::run(scale);
    if let Some(path) = json_path {
        morphstream_bench::figs::fig_topology::write_json(&path, scale, &rows)
            .expect("failed to write bench JSON");
        println!("\nwrote {}", path.display());
    }
}
