//! Operator-topology benchmark: the fused TP operator against its
//! two-operator dataflow split, with per-operator-instance
//! throughput/latency rows. Pass `--full` for the larger run, `--concurrent`
//! to also measure the concurrent (per-operator-thread) runtime against the
//! serial wave loop, `--parallelism N` to run the keyed road-statistics
//! stage with `N` parallel instances, and `--json PATH` to also write the
//! rows — including the per-instance sub-rows, wall-clock seconds, and
//! back-pressure counters — as machine-readable JSON (uploaded by the CI
//! smoke-bench job as `BENCH_topology_smoke.json` and, for the
//! `--concurrent --parallelism 4` leg, `BENCH_topology_parallel_smoke.json`).
fn main() {
    let scale = morphstream_bench::Scale::from_args();
    let options = morphstream_bench::figs::fig_topology::TopologyOptions::from_args();
    // Validate the argument list before the (multi-second) measurement runs.
    let json_path = morphstream_bench::harness::json_path_from_args();
    let rows = morphstream_bench::figs::fig_topology::run(scale, options);
    if let Some(path) = json_path {
        morphstream_bench::figs::fig_topology::write_json(&path, scale, &rows)
            .expect("failed to write bench JSON");
        println!("\nwrote {}", path.display());
    }
}
