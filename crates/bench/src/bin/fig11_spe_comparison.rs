//! Regenerates Figure 11 of the paper. Pass `--full` for the larger run and
//! `--json PATH` to also write the rows as machine-readable JSON (used by the
//! CI smoke-bench job to seed the `BENCH_*.json` perf trajectory).
fn main() {
    let scale = morphstream_bench::Scale::from_args();
    // Validate the argument list before the (multi-second) measurement runs.
    let json_path = morphstream_bench::harness::json_path_from_args();
    let reports = morphstream_bench::figs::fig11::run(scale);
    if let Some(path) = json_path {
        morphstream_bench::harness::write_json(&path, "fig11_spe_comparison", scale, &reports)
            .expect("failed to write bench JSON");
        println!("\nwrote {}", path.display());
    }
}
