//! Benchmark harness regenerating every table and figure of the MorphStream
//! evaluation (Section 8 of the paper).
//!
//! Each `figXX` module exposes a `run(scale)` function that executes the
//! experiment and prints the same rows/series the paper reports; the
//! `src/bin/figXX_*.rs` binaries are thin wrappers around these functions and
//! the Criterion bench (`benches/figures.rs`) measures the core comparisons
//! at [`Scale::Smoke`].
//!
//! Absolute numbers depend on the host; what the harness preserves is the
//! *shape* of every figure — which system wins, by roughly what factor, and
//! where the crossovers fall.

#![warn(missing_docs)]

pub mod figs;
pub mod harness;

pub use harness::{Scale, SystemReport};
