//! One module per figure of the evaluation (Section 8). Every `run(scale)`
//! prints the rows/series of the corresponding figure.

use morphstream::storage::StateStore;
use morphstream::{
    AbortHandling, EngineConfig, ExplorationStrategy, Granularity, MorphStream, SchedulingDecision,
    TxnEngine,
};
use morphstream_baselines::{SStoreEngine, SystemUnderTest, TStreamEngine};
use morphstream_common::metrics::BreakdownBucket;
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{
    DynamicWorkload, GrepSumApp, OsedApp, OsedReport, SeaApp, SeaGenerator, StreamingLedgerApp,
    TollProcessingApp, TpEvent, TweetGenerator,
};

use crate::harness::{
    banner, bench_engine_config, bench_sl_config, bench_threads, drive, run_sl_on, Scale,
    SystemReport,
};

fn gs_config(scale: Scale) -> (WorkloadConfig, usize) {
    let config = WorkloadConfig::grep_sum()
        .with_key_space(20_000)
        .with_udf_complexity_us(1)
        .with_txns_per_batch(1_024);
    (config, 4_096 * scale.factor())
}

fn fixed(
    exploration: ExplorationStrategy,
    granularity: Granularity,
    abort: AbortHandling,
) -> SchedulingDecision {
    SchedulingDecision {
        exploration,
        granularity,
        abort_handling: abort,
    }
}

fn run_gs_fixed(
    config: &WorkloadConfig,
    events: Vec<morphstream_workloads::GsEvent>,
    engine_config: EngineConfig,
    decision: Option<SchedulingDecision>,
) -> f64 {
    let store = StateStore::new();
    let app = GrepSumApp::new(&store, config);
    let mut engine = MorphStream::new(app, store, engine_config);
    if let Some(decision) = decision {
        engine = engine.with_fixed_decision(decision);
    }
    engine.run(events).k_events_per_second()
}

/// Figure 11: SL throughput comparison across systems on all cores.
pub mod fig11 {
    use super::*;

    /// Run the comparison and return `(system, k events/s)` rows.
    pub fn measure(scale: Scale) -> Vec<SystemReport> {
        let (config, events) = bench_sl_config(scale);
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
        let events_vec = StreamingLedgerApp::generate(&config, events, 0.6);
        [
            SystemUnderTest::MorphStream,
            SystemUnderTest::TStream,
            SystemUnderTest::SStore,
            SystemUnderTest::LockedSpeWithoutLocks,
            SystemUnderTest::LockedSpeWithLocks,
        ]
        .into_iter()
        .map(|system| run_sl_on(system, &config, engine_config, events_vec.clone()))
        .collect()
    }

    /// Print the figure and return the measured rows (so callers like the CI
    /// smoke-bench wrapper can persist them without re-measuring).
    pub fn run(scale: Scale) -> Vec<SystemReport> {
        banner(
            "Figure 11",
            "SL throughput: MorphStream vs TSPEs vs conventional SPE",
        );
        println!("{}", SystemReport::header());
        let reports = measure(scale);
        for report in &reports {
            println!("{}", report.row());
        }
        reports
    }
}

/// Figure 12: dynamic 4-phase workload — throughput over phases and latency.
pub mod fig12 {
    use super::*;
    use morphstream_workloads::DynamicPhase;

    /// Per-phase `(phase, k events/s, p95 latency ms)` rows.
    pub type PhaseSeries = Vec<(DynamicPhase, f64, f64)>;

    /// Per-system, per-phase throughput (k events/s).
    pub fn measure(scale: Scale) -> Vec<(SystemUnderTest, PhaseSeries)> {
        let (config, events) = bench_sl_config(scale);
        let workload = DynamicWorkload::new(config, events / 2);
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
        let mut out = Vec::new();
        for system in [
            SystemUnderTest::MorphStream,
            SystemUnderTest::TStream,
            SystemUnderTest::SStore,
        ] {
            let mut rows = Vec::new();
            for (phase, events) in workload.all_phases() {
                let report = run_sl_on(system, &config, engine_config, events);
                rows.push((phase, report.k_events_per_second, report.p95_latency_ms));
            }
            out.push((system, rows));
        }
        out
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner(
            "Figure 12",
            "dynamic workload: per-phase throughput and tail latency",
        );
        println!(
            "{:<28} {:<18} {:>12} {:>12}",
            "system", "phase", "k events/s", "p95 ms"
        );
        for (system, rows) in measure(scale) {
            for (phase, kps, p95) in rows {
                println!(
                    "{:<28} {:<18} {:>12.2} {:>12.2}",
                    system.to_string(),
                    format!("{phase:?}"),
                    kps,
                    p95
                );
            }
        }
    }
}

/// Figure 13: single vs multiple (nested) scheduling strategies on TP.
pub mod fig13 {
    use super::*;

    /// `(configuration, k events/s, p95 ms)` rows.
    pub fn measure(scale: Scale) -> Vec<(String, f64, f64)> {
        let config = WorkloadConfig::toll_processing()
            .with_key_space(20_000)
            .with_udf_complexity_us(1)
            .with_txns_per_batch(2_048);
        let count = 4_096 * scale.factor();
        let events = TollProcessingApp::generate_two_groups(&config, count, 0.5, 0.3, 0.9);
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);

        let plain1 = fixed(
            ExplorationStrategy::NonStructured,
            Granularity::Coarse,
            AbortHandling::Lazy,
        );
        let plain2 = fixed(
            ExplorationStrategy::StructuredBfs,
            Granularity::Coarse,
            AbortHandling::Eager,
        );

        let mut rows = Vec::new();
        // Nested: adaptive per-group decisions.
        {
            let store = StateStore::new();
            let app = TollProcessingApp::new(&store, &config);
            let mut engine =
                MorphStream::new(app, store, engine_config).with_group_fn(|e: &TpEvent| e.group);
            let r = drive(SystemUnderTest::MorphStream, &mut engine, events.clone());
            rows.push((
                "Nested".to_string(),
                r.k_events_per_second,
                r.p95_latency_ms,
            ));
        }
        for (label, decision) in [("Plain-1", plain1), ("Plain-2", plain2)] {
            let store = StateStore::new();
            let app = TollProcessingApp::new(&store, &config);
            let mut engine =
                MorphStream::new(app, store, engine_config).with_fixed_decision(decision);
            let r = drive(SystemUnderTest::MorphStream, &mut engine, events.clone());
            rows.push((label.to_string(), r.k_events_per_second, r.p95_latency_ms));
        }
        // Baselines.
        {
            let store = StateStore::new();
            let app = TollProcessingApp::new(&store, &config);
            let mut engine = TStreamEngine::new(app, store, engine_config);
            let r = drive(SystemUnderTest::TStream, &mut engine, events.clone());
            rows.push((
                "TStream".to_string(),
                r.k_events_per_second,
                r.p95_latency_ms,
            ));
        }
        {
            let store = StateStore::new();
            let app = TollProcessingApp::new(&store, &config);
            let mut engine = SStoreEngine::new(app, store, engine_config);
            let r = drive(SystemUnderTest::SStore, &mut engine, events);
            rows.push((
                "S-Store".to_string(),
                r.k_events_per_second,
                r.p95_latency_ms,
            ));
        }
        rows
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 13", "TP: nested vs plain strategies vs baselines");
        println!("{:<12} {:>12} {:>12}", "config", "k events/s", "p95 ms");
        for (label, kps, p95) in measure(scale) {
            println!("{label:<12} {kps:>12.2} {p95:>12.2}");
        }
    }
}

/// Figure 14: tumbling window queries — window size and trigger period.
pub mod fig14 {
    use super::*;

    /// `(window size, k events/s)` series.
    pub type WindowSeries = Vec<(u64, f64)>;
    /// `(trigger period, k events/s)` series.
    pub type TriggerSeries = Vec<(usize, f64)>;

    /// `(window size, k events/s)` and `(trigger period, k events/s)` series.
    pub fn measure(scale: Scale) -> (WindowSeries, TriggerSeries) {
        let (config, count) = gs_config(scale);
        let config = config.with_abort_ratio(0.0);
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);

        let window_sizes = [100u64, 1_000, 10_000];
        let by_window = window_sizes
            .iter()
            .map(|&window| {
                let events = GrepSumApp::generate_windowed(&config, count, 100, 20, window);
                let mut cfg = engine_config;
                cfg.reclaim_after_batch = false;
                (window, run_gs_fixed(&config, events, cfg, None))
            })
            .collect();

        let trigger_periods = [10usize, 100, 1_000];
        let by_period = trigger_periods
            .iter()
            .map(|&period| {
                let events = GrepSumApp::generate_windowed(&config, count, period, 20, 1_000);
                let mut cfg = engine_config;
                cfg.reclaim_after_batch = false;
                (period, run_gs_fixed(&config, events, cfg, None))
            })
            .collect();
        (by_window, by_period)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner(
            "Figure 14",
            "GS window queries: window size & trigger period",
        );
        let (by_window, by_period) = measure(scale);
        println!("{:<20} {:>12}", "window size (ts)", "k events/s");
        for (w, kps) in by_window {
            println!("{w:<20} {kps:>12.2}");
        }
        println!("{:<20} {:>12}", "trigger period", "k events/s");
        for (p, kps) in by_period {
            println!("{p:<20} {kps:>12.2}");
        }
    }
}

/// Figure 15: non-deterministic queries.
pub mod fig15 {
    use super::*;

    /// `(system, #non-det accesses, k events/s)` rows.
    pub fn measure(scale: Scale) -> Vec<(SystemUnderTest, usize, f64)> {
        let (config, count) = gs_config(scale);
        let config = config.with_abort_ratio(0.0);
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
        let sweep = [50usize, 100, 200, 400];
        let mut rows = Vec::new();
        for &non_det in &sweep {
            let events = GrepSumApp::generate_non_deterministic(&config, count, non_det);
            // MorphStream
            rows.push((
                SystemUnderTest::MorphStream,
                non_det,
                run_gs_fixed(&config, events.clone(), engine_config, None),
            ));
            // TStream
            {
                let store = StateStore::new();
                let app = GrepSumApp::new(&store, &config);
                let mut engine = TStreamEngine::new(app, store, engine_config);
                rows.push((
                    SystemUnderTest::TStream,
                    non_det,
                    engine.run(events.clone()).k_events_per_second(),
                ));
            }
            // S-Store
            {
                let store = StateStore::new();
                let app = GrepSumApp::new(&store, &config);
                let mut engine = SStoreEngine::new(app, store, engine_config);
                rows.push((
                    SystemUnderTest::SStore,
                    non_det,
                    engine.run(events).k_events_per_second(),
                ));
            }
        }
        rows
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 15", "GS non-deterministic state accesses");
        println!("{:<28} {:>12} {:>12}", "system", "#non-det", "k events/s");
        for (system, non_det, kps) in measure(scale) {
            println!("{:<28} {non_det:>12} {kps:>12.2}", system.to_string());
        }
    }
}

/// Figure 16: runtime breakdown, memory footprint, and — new to the
/// pipelined engine — how much TPG-construction time is hidden behind
/// execution (the construction-overhead axis of 16a).
pub mod fig16 {
    use super::*;

    /// Fraction of runtime spent per breakdown bucket.
    pub type BucketFractions = Vec<(BreakdownBucket, f64)>;

    /// One measured configuration of Figure 16.
    #[derive(Debug, Clone)]
    pub struct Fig16Row {
        /// System / configuration label.
        pub system: String,
        /// Per-bucket runtime fractions (Figure 16a).
        pub fractions: BucketFractions,
        /// Peak auxiliary memory in bytes (Figure 16b).
        pub peak_bytes: u64,
        /// Total TPG-construction wall time (seconds).
        pub construct_s: f64,
        /// Wall time of the execution stage (seconds).
        pub execute_s: f64,
        /// Construction time that ran concurrently with execution (seconds).
        pub overlap_s: f64,
    }

    impl Fig16Row {
        fn from_report<O>(system: &str, report: &morphstream::RunReport<O>) -> Self {
            let timings = report.stage_timings;
            Self {
                system: system.to_string(),
                fractions: BreakdownBucket::ALL
                    .iter()
                    .map(|&b| (b, report.breakdown.fraction(b)))
                    .collect(),
                peak_bytes: report.memory.peak_bytes(),
                construct_s: timings.construct.as_secs_f64(),
                execute_s: timings.execute.as_secs_f64(),
                overlap_s: timings.overlap.as_secs_f64(),
            }
        }

        /// `overlap_s / construct_s`, clamped to [0, 1] (the clamp semantics
        /// live in `StageTimings::overlap_fraction`).
        pub fn overlap_fraction(&self) -> f64 {
            crate::harness::overlap_fraction_of(self.construct_s, self.overlap_s)
        }

        /// One JSON object row, via the shared [`morphstream_common::json`]
        /// path (serde is offline-gated).
        pub fn json(&self) -> String {
            let mut row =
                morphstream_common::json::JsonObject::new().string("system", &self.system);
            for (bucket, fraction) in &self.fractions {
                row = row.fixed(bucket.label(), *fraction, 4);
            }
            row.unsigned("peak_bytes", self.peak_bytes)
                .fixed("construct_s", self.construct_s, 6)
                .fixed("execute_s", self.execute_s, 6)
                .fixed("overlap_s", self.overlap_s, 6)
                .fixed("overlap_fraction", self.overlap_fraction(), 4)
                .build()
        }
    }

    /// Write the measured rows as one JSON document (the CI smoke-bench
    /// uploads this as `BENCH_fig16_smoke.json` so construction-overlap
    /// regressions show up in artifacts).
    pub fn write_json(
        path: &std::path::Path,
        scale: Scale,
        rows: &[Fig16Row],
    ) -> std::io::Result<()> {
        let body: Vec<String> = rows.iter().map(Fig16Row::json).collect();
        let doc = format!(
            "{{\"bench\":\"fig16_overhead\",\"scale\":\"{}\",\"rows\":[\n  {}\n]}}\n",
            scale.name(),
            body.join(",\n  ")
        );
        std::fs::write(path, doc)
    }

    /// Per-system breakdown fractions, peak memory and stage timings. The
    /// MorphStream row is measured twice: serially and with pipelined
    /// construction, whose `overlap_s` shows the construction time hidden
    /// behind execution.
    pub fn measure(scale: Scale) -> Vec<Fig16Row> {
        let (config, events) = bench_sl_config(scale);
        let workload = DynamicWorkload::new(config, events / 2);
        let mut all_events = Vec::new();
        for (_, phase_events) in workload.all_phases() {
            all_events.extend(phase_events);
        }
        let mut engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
        engine_config.reclaim_after_batch = false;

        // One fresh store + app per row, one shared driver for every engine.
        let fresh_app = || {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, &config);
            (store, app)
        };
        fn row<E: TxnEngine>(label: &str, mut engine: E, events: Vec<E::Event>) -> Fig16Row {
            Fig16Row::from_report(label, &engine.run(events))
        }

        let (store, app) = fresh_app();
        let morph = row(
            "MorphStream",
            MorphStream::new(app, store, engine_config),
            all_events.clone(),
        );
        let (store, app) = fresh_app();
        let pipelined = row(
            "MorphStream (pipelined)",
            MorphStream::new(app, store, engine_config.with_pipelined_construction(true)),
            all_events.clone(),
        );
        let (store, app) = fresh_app();
        let tstream = row(
            "TStream",
            TStreamEngine::new(app, store, engine_config),
            all_events.clone(),
        );
        let (store, app) = fresh_app();
        let sstore = row(
            "S-Store",
            SStoreEngine::new(app, store, engine_config),
            all_events,
        );
        vec![morph, pipelined, tstream, sstore]
    }

    /// Print the figure and return the measured rows (so the CI smoke-bench
    /// wrapper can persist them without re-measuring).
    pub fn run(scale: Scale) -> Vec<Fig16Row> {
        banner(
            "Figure 16",
            "runtime breakdown, memory footprint, construction overlap (dynamic SL)",
        );
        let rows = measure(scale);
        for row in &rows {
            println!("{}:", row.system);
            for (bucket, fraction) in &row.fractions {
                println!("    {:<10} {:>6.1}%", bucket.label(), fraction * 100.0);
            }
            println!(
                "    peak auxiliary memory: {:.1} MiB",
                row.peak_bytes as f64 / (1024.0 * 1024.0)
            );
            println!(
                "    construct {:.3}s / execute {:.3}s / hidden {:.3}s ({:.0}% of construction)",
                row.construct_s,
                row.execute_s,
                row.overlap_s,
                row.overlap_fraction() * 100.0
            );
        }
        rows
    }
}

/// Figure 17: impact of clean-up (version reclamation).
pub mod fig17 {
    use super::*;

    /// `(label, k events/s, peak MiB)` rows.
    pub fn measure(scale: Scale) -> Vec<(String, f64, f64)> {
        let (config, events) = bench_sl_config(scale);
        let events_vec = StreamingLedgerApp::generate(&config, events, 0.6);
        let mut rows = Vec::new();
        for (label, reclaim) in [("w/o clean-up", false), ("w/ clean-up", true)] {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, &config);
            let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch)
                .with_reclaim_after_batch(reclaim);
            let mut engine = MorphStream::new(app, store, engine_config);
            let report = engine.run(events_vec.clone());
            rows.push((
                label.to_string(),
                report.k_events_per_second(),
                report.memory.peak_bytes() as f64 / (1024.0 * 1024.0),
            ));
        }
        rows
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 17", "clean-up impact: throughput and memory");
        println!("{:<16} {:>12} {:>12}", "config", "k events/s", "peak MiB");
        for (label, kps, mib) in measure(scale) {
            println!("{label:<16} {kps:>12.2} {mib:>12.2}");
        }
    }
}

/// Figure 18: exploration strategy decision.
pub mod fig18 {
    use super::*;

    /// `(strategy, punctuation interval, k events/s)` and
    /// `(strategy, zipf θ, k events/s)` series.
    #[allow(clippy::type_complexity)]
    pub fn measure(scale: Scale) -> (Vec<(String, usize, f64)>, Vec<(String, f64, f64)>) {
        let (config, count) = gs_config(scale);
        let strategies = [
            ("ns-explore", ExplorationStrategy::NonStructured),
            ("s-explore(BFS)", ExplorationStrategy::StructuredBfs),
            ("s-explore(DFS)", ExplorationStrategy::StructuredDfs),
        ];
        let mut by_interval = Vec::new();
        for &interval in &[512usize, 1_024, 4_096] {
            let cfg = config.with_txns_per_batch(interval);
            let events = GrepSumApp::generate(&cfg.with_abort_ratio(0.0), count);
            for (label, strategy) in strategies {
                let decision = fixed(strategy, Granularity::Fine, AbortHandling::Eager);
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), interval),
                    Some(decision),
                );
                by_interval.push((label.to_string(), interval, kps));
            }
        }
        let mut by_skew = Vec::new();
        for &theta in &[0.0f64, 0.5, 1.0] {
            let cfg = config.with_zipf_theta(theta).with_abort_ratio(0.0);
            let events = GrepSumApp::generate(&cfg, count);
            for (label, strategy) in strategies {
                let decision = fixed(strategy, Granularity::Fine, AbortHandling::Eager);
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), cfg.txns_per_batch),
                    Some(decision),
                );
                by_skew.push((label.to_string(), theta, kps));
            }
        }
        (by_interval, by_skew)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner(
            "Figure 18",
            "exploration strategies vs punctuation interval & skew",
        );
        let (by_interval, by_skew) = measure(scale);
        println!(
            "{:<16} {:>14} {:>12}",
            "strategy", "punct interval", "k events/s"
        );
        for (label, interval, kps) in by_interval {
            println!("{label:<16} {interval:>14} {kps:>12.2}");
        }
        println!(
            "{:<16} {:>14} {:>12}",
            "strategy", "zipf theta", "k events/s"
        );
        for (label, theta, kps) in by_skew {
            println!("{label:<16} {theta:>14.2} {kps:>12.2}");
        }
    }
}

/// Figure 19: scheduling granularity decision.
pub mod fig19 {
    use super::*;

    /// Three series: cyclic/acyclic, punctuation interval, multi-access ratio.
    #[allow(clippy::type_complexity)]
    pub fn measure(
        scale: Scale,
    ) -> (
        Vec<(String, String, f64)>,
        Vec<(String, usize, f64)>,
        Vec<(String, usize, f64)>,
    ) {
        let (config, count) = gs_config(scale);
        let granularities = [
            ("f-schedule", Granularity::Fine),
            ("c-schedule", Granularity::Coarse),
        ];

        // (a) cyclic (multi-state writes create interleaved chains) vs acyclic
        let mut by_cycles = Vec::new();
        for (case, states_per_op) in [("acyclic", 1usize), ("cyclic", 3usize)] {
            let cfg = config
                .with_states_per_op(states_per_op)
                .with_abort_ratio(0.0);
            let events = GrepSumApp::generate(&cfg, count);
            for (label, granularity) in granularities {
                let decision = fixed(
                    ExplorationStrategy::NonStructured,
                    granularity,
                    AbortHandling::Eager,
                );
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), cfg.txns_per_batch),
                    Some(decision),
                );
                by_cycles.push((label.to_string(), case.to_string(), kps));
            }
        }

        // (b) punctuation interval sweep with single-state accesses
        let mut by_interval = Vec::new();
        for &interval in &[512usize, 1_024, 4_096] {
            let cfg = config
                .with_states_per_op(1)
                .with_abort_ratio(0.0)
                .with_txns_per_batch(interval);
            let events = GrepSumApp::generate(&cfg, count);
            for (label, granularity) in granularities {
                let decision = fixed(
                    ExplorationStrategy::NonStructured,
                    granularity,
                    AbortHandling::Eager,
                );
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), interval),
                    Some(decision),
                );
                by_interval.push((label.to_string(), interval, kps));
            }
        }

        // (c) ratio of multi-state accesses
        let mut by_ratio = Vec::new();
        for &ratio in &[10usize, 50, 90] {
            let cfg = config.with_abort_ratio(0.0);
            // mix single-state and multi-state updates at the requested ratio
            let multi = GrepSumApp::generate(&cfg.with_states_per_op(3), count);
            let single = GrepSumApp::generate(&cfg.with_states_per_op(1), count);
            let events: Vec<_> = (0..count)
                .map(|i| {
                    if i % 100 < ratio {
                        multi[i].clone()
                    } else {
                        single[i].clone()
                    }
                })
                .collect();
            for (label, granularity) in granularities {
                let decision = fixed(
                    ExplorationStrategy::NonStructured,
                    granularity,
                    AbortHandling::Eager,
                );
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), cfg.txns_per_batch),
                    Some(decision),
                );
                by_ratio.push((label.to_string(), ratio, kps));
            }
        }
        (by_cycles, by_interval, by_ratio)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 19", "scheduling granularities");
        let (by_cycles, by_interval, by_ratio) = measure(scale);
        println!(
            "{:<14} {:>10} {:>12}",
            "granularity", "workload", "k events/s"
        );
        for (label, case, kps) in by_cycles {
            println!("{label:<14} {case:>10} {kps:>12.2}");
        }
        println!(
            "{:<14} {:>10} {:>12}",
            "granularity", "interval", "k events/s"
        );
        for (label, interval, kps) in by_interval {
            println!("{label:<14} {interval:>10} {kps:>12.2}");
        }
        println!(
            "{:<14} {:>10} {:>12}",
            "granularity", "multi %", "k events/s"
        );
        for (label, ratio, kps) in by_ratio {
            println!("{label:<14} {ratio:>10} {kps:>12.2}");
        }
    }
}

/// Figure 20: abort handling decision.
pub mod fig20 {
    use super::*;

    /// `(mechanism, udf µs, k events/s)` and `(mechanism, abort %, k events/s)`.
    #[allow(clippy::type_complexity)]
    pub fn measure(scale: Scale) -> (Vec<(String, u64, f64)>, Vec<(String, usize, f64)>) {
        let (config, count) = gs_config(scale);
        let mechanisms = [
            ("e-abort", AbortHandling::Eager),
            ("l-abort", AbortHandling::Lazy),
        ];

        let mut by_complexity = Vec::new();
        for &cost in &[0u64, 20, 50] {
            let cfg = config.with_udf_complexity_us(cost).with_abort_ratio(0.4);
            let events = GrepSumApp::generate(&cfg, count);
            for (label, abort) in mechanisms {
                let decision = fixed(ExplorationStrategy::NonStructured, Granularity::Fine, abort);
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), cfg.txns_per_batch),
                    Some(decision),
                );
                by_complexity.push((label.to_string(), cost, kps));
            }
        }

        let mut by_abort_ratio = Vec::new();
        for &ratio in &[10usize, 50, 90] {
            let cfg = config
                .with_udf_complexity_us(0)
                .with_abort_ratio(ratio as f64 / 100.0);
            let events = GrepSumApp::generate(&cfg, count);
            for (label, abort) in mechanisms {
                let decision = fixed(ExplorationStrategy::NonStructured, Granularity::Fine, abort);
                let kps = run_gs_fixed(
                    &cfg,
                    events.clone(),
                    bench_engine_config(bench_threads(), cfg.txns_per_batch),
                    Some(decision),
                );
                by_abort_ratio.push((label.to_string(), ratio, kps));
            }
        }
        (by_complexity, by_abort_ratio)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 20", "abort handling mechanisms");
        let (by_complexity, by_ratio) = measure(scale);
        println!("{:<10} {:>10} {:>12}", "abort", "udf µs", "k events/s");
        for (label, cost, kps) in by_complexity {
            println!("{label:<10} {cost:>10} {kps:>12.2}");
        }
        println!("{:<10} {:>10} {:>12}", "abort", "abort %", "k events/s");
        for (label, ratio, kps) in by_ratio {
            println!("{label:<10} {ratio:>10} {kps:>12.2}");
        }
    }
}

/// Figure 21: hardware interaction — clock-tick breakdown and scalability.
pub mod fig21 {
    use super::*;

    /// `(system, total busy seconds, memory-wait fraction)` rows and
    /// `(configuration, cores, k events/s)` scalability series; the
    /// scalability sweep includes the pipelined-construction MorphStream
    /// configuration alongside the serial one.
    #[allow(clippy::type_complexity)]
    pub fn measure(scale: Scale) -> (Vec<(SystemUnderTest, f64, f64)>, Vec<(String, usize, f64)>) {
        let (config, events) = bench_sl_config(scale);
        let events_vec = StreamingLedgerApp::generate(&config, events, 0.6);
        let systems = [
            SystemUnderTest::MorphStream,
            SystemUnderTest::TStream,
            SystemUnderTest::SStore,
        ];

        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);
        let mut ticks = Vec::new();
        for system in systems {
            let store = StateStore::new();
            let app = StreamingLedgerApp::new(&store, &config);
            let report = match system {
                SystemUnderTest::MorphStream => {
                    MorphStream::new(app, store, engine_config).run(events_vec.clone())
                }
                SystemUnderTest::TStream => {
                    TStreamEngine::new(app, store, engine_config).run(events_vec.clone())
                }
                _ => SStoreEngine::new(app, store, engine_config).run(events_vec.clone()),
            };
            let total = report.breakdown.total().as_secs_f64();
            // "memory bound" stand-in: share of busy time spent waiting on
            // state access coordination rather than computing.
            let waiting = report.breakdown.fraction(BreakdownBucket::Sync)
                + report.breakdown.fraction(BreakdownBucket::Lock)
                + report.breakdown.fraction(BreakdownBucket::Explore);
            ticks.push((system, total, waiting));
        }

        let max_threads = bench_threads();
        let mut scalability = Vec::new();
        for &threads in &[1usize, 2, max_threads] {
            let engine_config = bench_engine_config(threads, config.txns_per_batch);
            for system in systems {
                let report = run_sl_on(system, &config, engine_config, events_vec.clone());
                scalability.push((system.to_string(), threads, report.k_events_per_second));
            }
            // The pipelined configuration (construction of punctuation N+1
            // overlaps execution of punctuation N), measured through the same
            // driver as the serial rows it is compared against.
            let report = run_sl_on(
                SystemUnderTest::MorphStream,
                &config,
                engine_config.with_pipelined_construction(true),
                events_vec.clone(),
            );
            scalability.push((
                "MorphStream (pipelined)".to_string(),
                threads,
                report.k_events_per_second,
            ));
        }
        (ticks, scalability)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner(
            "Figure 21",
            "clock-tick breakdown and multicore scalability (SL)",
        );
        let (ticks, scalability) = measure(scale);
        println!(
            "{:<28} {:>16} {:>16}",
            "system", "busy seconds", "waiting share"
        );
        for (system, total, waiting) in ticks {
            println!(
                "{:<28} {total:>16.3} {:>15.1}%",
                system.to_string(),
                waiting * 100.0
            );
        }
        println!("{:<28} {:>8} {:>12}", "system", "cores", "k events/s");
        for (system, cores, kps) in scalability {
            println!("{system:<28} {cores:>8} {kps:>12.2}");
        }
    }
}

/// Figure 23: Online Social Event Detection case study.
pub mod fig23 {
    use super::*;
    use morphstream_common::Timestamp;

    /// Returns the OSED report plus throughput in k tweets/s.
    pub fn measure(scale: Scale) -> (OsedReport, f64) {
        let generator = TweetGenerator {
            tweets: 3_000 * scale.factor(),
            window: 200,
            ..TweetGenerator::default()
        };
        let (tweets, expected) = generator.generate();
        let store = StateStore::new();
        let app = OsedApp::new(&store, generator.window as Timestamp + 1);
        let mut engine = MorphStream::new(
            app,
            store,
            bench_engine_config(bench_threads(), generator.window + 1)
                .with_reclaim_after_batch(false),
        );
        let report = engine.run(tweets);
        let kps = report.k_events_per_second();
        (OsedReport::from_outputs(expected, &report.outputs), kps)
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 23", "OSED: expected vs detected event popularity");
        let (report, kps) = measure(scale);
        println!("throughput: {kps:.2} k tweets/s");
        println!(
            "detection accuracy (±10 tweets): {:.1}%",
            report.detection_accuracy(10) * 100.0
        );
        for (event, series) in report.expected.iter().enumerate() {
            let detected = &report.detected[event];
            println!("event {event}: expected {series:?}");
            println!("event {event}: detected {detected:?}");
        }
    }
}

/// Figure 25: Stock Exchange Analysis case study.
pub mod fig25 {
    use super::*;

    /// Returns `(expected total matches, actual total matches, k events/s)`.
    pub fn measure(scale: Scale) -> (u64, i64, f64) {
        let generator = SeaGenerator {
            events: 4_000 * scale.factor(),
            stocks: 200,
            ..SeaGenerator::default()
        };
        let events = generator.generate();
        let window = 200u64;
        let expected = generator.expected_accumulated_matches(&events, window);
        let store = StateStore::new();
        let app = SeaApp::new(&store, generator.stocks, window);
        let mut engine = MorphStream::new(
            app,
            store,
            bench_engine_config(bench_threads(), 1_000).with_reclaim_after_batch(false),
        );
        let report = engine.run(events);
        let actual: i64 = report.outputs.iter().sum();
        (
            *expected.last().unwrap_or(&0),
            actual,
            report.k_events_per_second(),
        )
    }

    /// Print the figure.
    pub fn run(scale: Scale) {
        banner("Figure 25", "SEA: expected vs actual accumulated matches");
        let (expected, actual, kps) = measure(scale);
        println!("throughput: {kps:.2} k events/s");
        println!("expected accumulated matches: {expected}");
        println!("actual accumulated matches:   {actual}");
    }
}

/// Operator-topology benchmark (beyond the paper): the fused single-operator
/// TP application against its two-operator split driven as one dataflow
/// through the same generic `TxnEngine` loop, with per-operator
/// throughput/latency sub-rows.
pub mod fig_topology {
    use super::*;
    use crate::harness::json_escape;
    use morphstream_workloads::TollProcessingApp;

    /// How the benchmark drives the topology: set from the command line
    /// (`--concurrent` adds the concurrent-runtime rows, `--parallelism N`
    /// runs the keyed statistics stage with `N` parallel instances).
    #[derive(Debug, Clone, Copy)]
    pub struct TopologyOptions {
        /// Also measure the concurrent (per-operator-thread) runtime.
        pub concurrent: bool,
        /// Parallel instances of the keyed road-statistics stage.
        pub parallelism: usize,
    }

    impl Default for TopologyOptions {
        fn default() -> Self {
            Self {
                concurrent: false,
                parallelism: 1,
            }
        }
    }

    impl TopologyOptions {
        /// Parse `--concurrent` / `--parallelism N` from the command line.
        /// A `--parallelism` flag with a missing, unparsable, or zero operand
        /// is fatal (like `--json` without a path): silently falling back to
        /// 1 would record single-instance numbers under a multi-instance
        /// artifact name.
        pub fn from_args() -> Self {
            let args: Vec<String> = std::env::args().collect();
            let concurrent = args.iter().any(|a| a == "--concurrent");
            let parallelism = match args.iter().position(|a| a == "--parallelism") {
                None => 1,
                Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("error: --parallelism requires a positive integer argument");
                        std::process::exit(2);
                    }
                },
            };
            Self {
                concurrent,
                parallelism,
            }
        }
    }

    /// One measured row: a whole system, or one operator instance inside the
    /// topology (`operator` set).
    #[derive(Debug, Clone)]
    pub struct TopologyRow {
        /// System label.
        pub system: String,
        /// Operator (instance) name for per-operator sub-rows; `None` for
        /// system rows.
        pub operator: Option<String>,
        /// Throughput in thousands of events per second.
        pub k_events_per_second: f64,
        /// Median end-to-end latency in milliseconds.
        pub p50_latency_ms: f64,
        /// 95th-percentile latency in milliseconds.
        pub p95_latency_ms: f64,
        /// Committed transactions.
        pub committed: usize,
        /// Aborted transactions.
        pub aborted: usize,
        /// End-to-end wall-clock of the whole run in seconds (0 for
        /// per-operator sub-rows) — the serial-vs-concurrent comparison axis.
        pub wall_s: f64,
        /// Total times a bounded edge channel was found full (back-pressure
        /// observability; 0 under the serial wave loop).
        pub queue_full_waits: u64,
        /// Incremental checkpoints taken during the run (0 for renditions
        /// that run without durability).
        pub checkpoints: u64,
        /// Bytes those checkpoints published.
        pub checkpoint_bytes: u64,
    }

    impl TopologyRow {
        fn percentiles(latency: &mut morphstream_common::metrics::LatencyRecorder) -> (f64, f64) {
            let ms = |p: f64, l: &mut morphstream_common::metrics::LatencyRecorder| {
                l.percentile(p)
                    .map(|d| d.as_secs_f64() * 1e3)
                    .unwrap_or(0.0)
            };
            (ms(50.0, latency), ms(95.0, latency))
        }

        fn from_report(
            system: &str,
            report: &mut morphstream::RunReport<bool>,
            wall_s: f64,
        ) -> Self {
            let (p50, p95) = Self::percentiles(&mut report.latency);
            let queue_full_waits = report.edges.iter().map(|e| e.queue_full_waits).sum();
            Self {
                system: system.to_string(),
                operator: None,
                k_events_per_second: report.k_events_per_second(),
                p50_latency_ms: p50,
                p95_latency_ms: p95,
                committed: report.committed,
                aborted: report.aborted,
                wall_s,
                queue_full_waits,
                checkpoints: 0,
                checkpoint_bytes: 0,
            }
        }

        fn from_operator(system: &str, op: &morphstream::OperatorReport) -> Self {
            let mut latency = op.latency.clone();
            let (p50, p95) = Self::percentiles(&mut latency);
            Self {
                system: system.to_string(),
                operator: Some(op.name.clone()),
                k_events_per_second: op.k_events_per_second(),
                p50_latency_ms: p50,
                p95_latency_ms: p95,
                committed: op.committed,
                aborted: op.aborted,
                wall_s: 0.0,
                queue_full_waits: 0,
                checkpoints: 0,
                checkpoint_bytes: 0,
            }
        }

        /// One JSON object row, via the shared [`morphstream_common::json`]
        /// path (serde is offline-gated).
        pub fn json(&self) -> String {
            let operator = match &self.operator {
                Some(name) => format!(r#""{}""#, json_escape(name)),
                None => "null".to_string(),
            };
            morphstream_common::json::JsonObject::new()
                .string("system", &self.system)
                .raw("operator", operator)
                .fixed("k_events_per_second", self.k_events_per_second, 3)
                .fixed("p50_latency_ms", self.p50_latency_ms, 4)
                .fixed("p95_latency_ms", self.p95_latency_ms, 4)
                .unsigned("committed", self.committed as u64)
                .unsigned("aborted", self.aborted as u64)
                .fixed("wall_s", self.wall_s, 4)
                .unsigned("queue_full_waits", self.queue_full_waits)
                .unsigned("checkpoints", self.checkpoints)
                .unsigned("checkpoint_bytes", self.checkpoint_bytes)
                .build()
        }
    }

    /// Write the measured rows as one JSON document (uploaded by the CI
    /// smoke-bench as `BENCH_topology_smoke.json`).
    pub fn write_json(
        path: &std::path::Path,
        scale: Scale,
        rows: &[TopologyRow],
    ) -> std::io::Result<()> {
        let body: Vec<String> = rows.iter().map(TopologyRow::json).collect();
        let doc = format!(
            "{{\"bench\":\"fig_topology\",\"scale\":\"{}\",\"rows\":[\n  {}\n]}}\n",
            scale.name(),
            body.join(",\n  ")
        );
        std::fs::write(path, doc)
    }

    /// Run one topology rendition and return `(rows, wall_s, digest)`.
    fn measure_topology(
        label: &str,
        config: &WorkloadConfig,
        engine_config: morphstream::EngineConfig,
        topology_config: morphstream::TopologyConfig,
        parallelism: usize,
        events: &[TpEvent],
    ) -> (Vec<TopologyRow>, f64, u64) {
        let store = StateStore::new();
        let mut topology = TollProcessingApp::topology_with(
            &store,
            config,
            engine_config,
            topology_config,
            parallelism,
        );
        let started = std::time::Instant::now();
        let mut report = topology.run(events.to_vec());
        let wall_s = started.elapsed().as_secs_f64();
        let mut rows = vec![TopologyRow::from_report(label, &mut report, wall_s)];
        for op in &report.operators {
            rows.push(TopologyRow::from_operator(label, op));
        }
        (rows, wall_s, store.state_digest())
    }

    /// Run the serial topology with incremental checkpoints every
    /// `interval` events (into a throwaway directory) and return `(rows,
    /// wall_s, digest, checkpoint_count, checkpoint_bytes)`. The wall-clock
    /// delta against the plain serial row is the durability overhead.
    fn measure_checkpointed(
        label: &str,
        config: &WorkloadConfig,
        engine_config: morphstream::EngineConfig,
        parallelism: usize,
        events: &[TpEvent],
        interval: usize,
    ) -> (Vec<TopologyRow>, f64, u64) {
        use morphstream_durability::{CheckpointBuilder, CheckpointStore};

        let dir = std::env::temp_dir().join(format!("morph-bench-chk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut checkpoints = CheckpointStore::open(&dir).expect("open checkpoint store");
        let store = StateStore::new();
        let mut topology = TollProcessingApp::topology_with(
            &store,
            config,
            engine_config,
            morphstream::TopologyConfig::default(),
            parallelism,
        );
        let mut applied = 0u64;
        let mut checkpoint_bytes = 0u64;
        let mut count = 0u64;
        let started = std::time::Instant::now();
        for chunk in events.chunks(interval) {
            {
                let mut pipeline = topology.pipeline();
                for event in chunk {
                    pipeline.push(event.clone());
                }
            }
            applied += chunk.len() as u64;
            let mut builder = CheckpointBuilder::new();
            TxnEngine::checkpoint(&mut topology, &mut builder);
            let checkpoint = builder.build(checkpoints.next_id(), applied, 0);
            let saved = checkpoints.save(&checkpoint).expect("save checkpoint");
            checkpoint_bytes += saved.bytes;
            count += 1;
        }
        let mut report = topology.finish();
        let wall_s = started.elapsed().as_secs_f64();
        let mut system_row = TopologyRow::from_report(label, &mut report, wall_s);
        system_row.checkpoints = count;
        system_row.checkpoint_bytes = checkpoint_bytes;
        let mut rows = vec![system_row];
        for op in &report.operators {
            rows.push(TopologyRow::from_operator(label, op));
        }
        let digest = store.state_digest();
        let _ = std::fs::remove_dir_all(&dir);
        (rows, wall_s, digest)
    }

    /// Measure the fused TP app and the two-operator topology — serial wave
    /// loop and (with `--concurrent`) the concurrent runtime with
    /// `--parallelism N` keyed statistics instances — on the same event
    /// stream; topology renditions contribute per-operator-instance
    /// sub-rows. Every rendition must agree on the final state digest — the
    /// measurement asserts it, so the benchmark doubles as a correctness
    /// canary for the concurrent runtime and keyed parallelism.
    pub fn measure(scale: Scale, options: TopologyOptions) -> Vec<TopologyRow> {
        let config = WorkloadConfig::toll_processing()
            .with_key_space(20_000)
            .with_udf_complexity_us(1)
            .with_txns_per_batch(1_024)
            .with_abort_ratio(0.05);
        let events = TollProcessingApp::generate(&config, 4_096 * scale.factor());
        let engine_config = bench_engine_config(bench_threads(), config.txns_per_batch);

        let fused_store = StateStore::new();
        let fused_app = TollProcessingApp::new(&fused_store, &config);
        let mut fused_engine = MorphStream::new(fused_app, fused_store.clone(), engine_config);
        let fused_started = std::time::Instant::now();
        let mut fused_report = fused_engine.run(events.clone());
        let fused_wall = fused_started.elapsed().as_secs_f64();

        let fused_label = SystemUnderTest::MorphStream.to_string();
        let topology_label = SystemUnderTest::Topology.to_string();
        let mut rows = vec![TopologyRow::from_report(
            &format!("{fused_label} (fused TP)"),
            &mut fused_report,
            fused_wall,
        )];

        let serial_label = format!("{topology_label} (serial)");
        let (serial_rows, _, serial_digest) = measure_topology(
            &serial_label,
            &config,
            engine_config,
            morphstream::TopologyConfig::default(),
            options.parallelism,
            &events,
        );
        assert_eq!(
            fused_store.state_digest(),
            serial_digest,
            "the fused app and its topology split diverged"
        );
        rows.extend(serial_rows);

        // The same serial topology with an incremental checkpoint every 4
        // punctuation batches: the wall-clock delta against the plain serial
        // row is the durability overhead, and the digest must not move.
        let checkpoint_interval = config.txns_per_batch * 4;
        let checkpointed_label = format!("{topology_label} (serial + checkpoints)");
        let (checkpointed_rows, _, checkpointed_digest) = measure_checkpointed(
            &checkpointed_label,
            &config,
            engine_config,
            options.parallelism,
            &events,
            checkpoint_interval,
        );
        assert_eq!(
            fused_store.state_digest(),
            checkpointed_digest,
            "taking checkpoints changed the computation"
        );
        rows.extend(checkpointed_rows);

        if options.concurrent {
            let concurrent_label =
                format!("{topology_label} (concurrent ×{})", options.parallelism);
            let (concurrent_rows, _, concurrent_digest) = measure_topology(
                &concurrent_label,
                &config,
                engine_config,
                morphstream::TopologyConfig::default().with_concurrent(true),
                options.parallelism,
                &events,
            );
            assert_eq!(
                fused_store.state_digest(),
                concurrent_digest,
                "the concurrent topology runtime diverged"
            );
            rows.extend(concurrent_rows);
        }
        rows
    }

    /// Print the figure and return the measured rows.
    pub fn run(scale: Scale, options: TopologyOptions) -> Vec<TopologyRow> {
        banner(
            "Topology",
            "fused TP operator vs two-operator dataflow (serial vs concurrent runtime)",
        );
        println!(
            "{:<38} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9} {:>7}",
            "system / operator",
            "k events/s",
            "p50 ms",
            "p95 ms",
            "committed",
            "aborted",
            "wall s",
            "q-full"
        );
        let rows = measure(scale, options);
        for row in &rows {
            let label = match &row.operator {
                Some(op) => format!("  └ {op}"),
                None => row.system.clone(),
            };
            println!(
                "{:<38} {:>12.2} {:>10.2} {:>10.2} {:>10} {:>9} {:>9.3} {:>7}",
                label,
                row.k_events_per_second,
                row.p50_latency_ms,
                row.p95_latency_ms,
                row.committed,
                row.aborted,
                row.wall_s,
                row.queue_full_waits
            );
        }
        let wall_of = |needle: &str| {
            rows.iter()
                .find(|r| r.operator.is_none() && r.system.contains(needle))
                .map(|r| r.wall_s)
        };
        if let (Some(serial), Some(concurrent)) = (wall_of("(serial)"), wall_of("(concurrent")) {
            println!(
                "\nconcurrent / serial wall-clock: {:.3}s / {:.3}s = {:.2}x",
                concurrent,
                serial,
                concurrent / serial.max(f64::EPSILON)
            );
        }
        let checkpointed_row = rows
            .iter()
            .find(|r| r.operator.is_none() && r.system.contains("(serial + checkpoints)"));
        if let (Some(serial), Some(row)) = (wall_of("(serial)"), checkpointed_row) {
            println!(
                "checkpoint overhead: {:.3}s vs {:.3}s = {:+.1}% wall-clock \
                 ({} checkpoints, {} bytes)",
                row.wall_s,
                serial,
                (row.wall_s / serial.max(f64::EPSILON) - 1.0) * 100.0,
                row.checkpoints,
                row.checkpoint_bytes
            );
        }
        rows
    }
}
