//! The three scheduling dimensions and their possible decisions (Table 1).

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// How worker threads traverse the TPG to find operations to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum ExplorationStrategy {
    /// Structured exploration, breadth-first: all threads process one stratum
    /// of the TPG, synchronise on a barrier, and advance together. Minimal
    /// coordination, but sensitive to workload imbalance inside a stratum.
    StructuredBfs,
    /// Structured exploration, depth-first: each thread owns a slice of the
    /// operations across strata and advances as soon as the dependencies of
    /// its own operations resolve. Less synchronisation, more repeated
    /// dependency checks.
    StructuredDfs,
    /// Non-structured exploration: threads pull any ready operation from a
    /// shared pool; completing an operation asynchronously notifies its
    /// dependents. Maximum flexibility, highest message-passing overhead.
    NonStructured,
}

impl ExplorationStrategy {
    /// Whether this is one of the structured (stratum-based) variants.
    pub fn is_structured(self) -> bool {
        matches!(
            self,
            ExplorationStrategy::StructuredBfs | ExplorationStrategy::StructuredDfs
        )
    }
}

impl fmt::Display for ExplorationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExplorationStrategy::StructuredBfs => "s-explore(BFS)",
            ExplorationStrategy::StructuredDfs => "s-explore(DFS)",
            ExplorationStrategy::NonStructured => "ns-explore",
        };
        f.write_str(name)
    }
}

/// The size of the unit handed to a worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum Granularity {
    /// `f-schedule`: a single operation per scheduling unit. Maximum
    /// parallelism, highest context-switching overhead.
    Fine,
    /// `c-schedule`: all operations targeting the same state form one unit
    /// (an operation chain). Lower overhead, but cyclic unit dependencies
    /// must be merged and load imbalance hurts more.
    Coarse,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Fine => "f-schedule",
            Granularity::Coarse => "c-schedule",
        })
    }
}

/// When transaction aborts are processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub enum AbortHandling {
    /// `e-abort`: abort the failing transaction immediately, roll back and
    /// redo affected operations right away. Less wasted work, more context
    /// switching.
    Eager,
    /// `l-abort`: log failures and clean them all up after the TPG has been
    /// fully explored. Simple and cheap per abort, but wasted downstream
    /// computation.
    Lazy,
}

impl fmt::Display for AbortHandling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AbortHandling::Eager => "e-abort",
            AbortHandling::Lazy => "l-abort",
        })
    }
}

/// A complete scheduling decision: one choice per dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct SchedulingDecision {
    /// Exploration strategy.
    pub exploration: ExplorationStrategy,
    /// Scheduling unit granularity.
    pub granularity: Granularity,
    /// Abort handling mechanism.
    pub abort_handling: AbortHandling,
}

impl SchedulingDecision {
    /// The configuration the original TStream system corresponds to:
    /// per-state operation chains explored structurally with lazy,
    /// whole-batch abort handling.
    pub fn tstream_like() -> Self {
        Self {
            exploration: ExplorationStrategy::StructuredBfs,
            granularity: Granularity::Coarse,
            abort_handling: AbortHandling::Lazy,
        }
    }

    /// A fully fine-grained, eager configuration (maximum adaptivity cost).
    pub fn fine_eager() -> Self {
        Self {
            exploration: ExplorationStrategy::NonStructured,
            granularity: Granularity::Fine,
            abort_handling: AbortHandling::Eager,
        }
    }

    /// Every possible decision, for exhaustive sweeps (2 × 3 × 2 = 12).
    pub fn all() -> Vec<Self> {
        let mut out = Vec::with_capacity(12);
        for exploration in [
            ExplorationStrategy::StructuredBfs,
            ExplorationStrategy::StructuredDfs,
            ExplorationStrategy::NonStructured,
        ] {
            for granularity in [Granularity::Fine, Granularity::Coarse] {
                for abort_handling in [AbortHandling::Eager, AbortHandling::Lazy] {
                    out.push(Self {
                        exploration,
                        granularity,
                        abort_handling,
                    });
                }
            }
        }
        out
    }
}

impl Default for SchedulingDecision {
    fn default() -> Self {
        Self {
            exploration: ExplorationStrategy::StructuredBfs,
            granularity: Granularity::Coarse,
            abort_handling: AbortHandling::Eager,
        }
    }
}

impl fmt::Display for SchedulingDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {} + {}",
            self.exploration, self.granularity, self.abort_handling
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_terminology() {
        assert_eq!(ExplorationStrategy::NonStructured.to_string(), "ns-explore");
        assert_eq!(
            ExplorationStrategy::StructuredBfs.to_string(),
            "s-explore(BFS)"
        );
        assert_eq!(Granularity::Fine.to_string(), "f-schedule");
        assert_eq!(Granularity::Coarse.to_string(), "c-schedule");
        assert_eq!(AbortHandling::Eager.to_string(), "e-abort");
        assert_eq!(AbortHandling::Lazy.to_string(), "l-abort");
        let d = SchedulingDecision::default();
        assert!(d.to_string().contains("s-explore"));
    }

    #[test]
    fn structured_classification() {
        assert!(ExplorationStrategy::StructuredBfs.is_structured());
        assert!(ExplorationStrategy::StructuredDfs.is_structured());
        assert!(!ExplorationStrategy::NonStructured.is_structured());
    }

    #[test]
    fn all_enumerates_every_combination_once() {
        let all = SchedulingDecision::all();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort_by_key(|d| format!("{d}"));
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn presets_match_their_descriptions() {
        let t = SchedulingDecision::tstream_like();
        assert_eq!(t.granularity, Granularity::Coarse);
        assert_eq!(t.abort_handling, AbortHandling::Lazy);
        let f = SchedulingDecision::fine_eager();
        assert_eq!(f.granularity, Granularity::Fine);
        assert_eq!(f.abort_handling, AbortHandling::Eager);
    }
}
