//! Scheduling decisions — the *scheduling* stage of MorphStream.
//!
//! MorphStream decomposes the scheduling strategy into three dimensions
//! (Section 5, Table 1):
//!
//! * [`ExplorationStrategy`] — how threads traverse the TPG looking for work
//!   (structured BFS/DFS with strata, or non-structured with asynchronous
//!   dependency notifications);
//! * [`Granularity`] — whether the unit of scheduling is a single operation
//!   (`f-schedule`) or a per-state group of operations (`c-schedule`);
//! * [`AbortHandling`] — whether aborts are processed eagerly as they occur
//!   (`e-abort`) or lazily after the whole TPG has been explored (`l-abort`).
//!
//! The [`DecisionModel`] implements the lightweight heuristic of Figure 7: it
//! looks at the TPG properties of Table 2 and picks a decision per dimension.
//! The engine re-evaluates the model for every batch (and per transaction
//! group in the nested configuration of Figure 13), which is what lets
//! MorphStream "morph" between strategies as the workload drifts.

#![warn(missing_docs)]

pub mod decision;
pub mod model;

pub use decision::{AbortHandling, ExplorationStrategy, Granularity, SchedulingDecision};
pub use model::{DecisionModel, ModelThresholds, WorkloadObservation};
