//! The lightweight heuristic decision model (Section 5.4, Figure 7).
//!
//! The model reads the properties of the constructed TPG (Table 2) plus the
//! cyclic-dependency flag of the coarse unit partition and picks one decision
//! per dimension:
//!
//! * **Exploration** — `s-explore` when there are many dependencies to
//!   resolve *and* the vertex degree distribution is uniform enough that the
//!   strata keep the threads balanced; `ns-explore` otherwise.
//! * **Granularity** — `c-schedule` when coarse units form no cycles, the
//!   number of temporal dependencies is high, and the number of parametric
//!   dependencies is low; `f-schedule` otherwise.
//! * **Abort handling** — `l-abort` when UDFs are cheap and aborts are
//!   frequent (batched clean-up is cheaper than fine-grained rollback);
//!   `e-abort` otherwise.
//!
//! The concrete thresholds are configurable ([`ModelThresholds`]); the
//! defaults were tuned on the micro-benchmarks of Section 8.4, mirroring how
//! the paper derives its bracketed threshold numbers experimentally.

use morphstream_tpg::TpgStats;
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::decision::{AbortHandling, ExplorationStrategy, Granularity, SchedulingDecision};

/// Observation of the current batch handed to the decision model: the TPG
/// statistics plus whether coarse grouping would produce cyclic dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadObservation {
    /// TPG properties of the batch.
    pub stats: TpgStats,
    /// Whether the coarse unit partition contains (merged) cycles.
    pub coarse_cycles: bool,
}

impl WorkloadObservation {
    /// Build an observation from parts.
    pub fn new(stats: TpgStats, coarse_cycles: bool) -> Self {
        Self {
            stats,
            coarse_cycles,
        }
    }

    fn deps_per_op(&self) -> f64 {
        if self.stats.num_ops == 0 {
            0.0
        } else {
            (self.stats.td_edges + self.stats.pd_edges) as f64 / self.stats.num_ops as f64
        }
    }

    fn td_per_op(&self) -> f64 {
        if self.stats.num_ops == 0 {
            0.0
        } else {
            self.stats.td_edges as f64 / self.stats.num_ops as f64
        }
    }

    fn pd_per_op(&self) -> f64 {
        if self.stats.num_ops == 0 {
            0.0
        } else {
            self.stats.pd_edges as f64 / self.stats.num_ops as f64
        }
    }
}

/// Tunable thresholds of the decision model (the bracketed numbers of
/// Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ModelThresholds {
    /// Dependencies per operation above which the batch counts as having a
    /// "high" number of dependencies.
    pub deps_per_op_high: f64,
    /// Degree skew (max out-degree / mean out-degree) above which the state
    /// access distribution counts as skewed.
    pub degree_skew_high: f64,
    /// Temporal dependencies per operation above which TD count is "high".
    pub td_per_op_high: f64,
    /// Parametric dependencies per operation above which PD count is "high".
    pub pd_per_op_high: f64,
    /// Mean UDF cost (µs) above which vertex computation is "complex".
    pub complexity_high_us: f64,
    /// Abort ratio above which aborts are "frequent".
    pub abort_ratio_high: f64,
}

impl Default for ModelThresholds {
    fn default() -> Self {
        Self {
            deps_per_op_high: 0.6,
            degree_skew_high: 8.0,
            td_per_op_high: 0.6,
            pd_per_op_high: 0.15,
            complexity_high_us: 50.0,
            abort_ratio_high: 0.25,
        }
    }
}

/// The heuristic decision model.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DecisionModel {
    thresholds: ModelThresholds,
}

impl DecisionModel {
    /// Model with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with custom thresholds.
    pub fn with_thresholds(thresholds: ModelThresholds) -> Self {
        Self { thresholds }
    }

    /// Thresholds currently in use.
    pub fn thresholds(&self) -> &ModelThresholds {
        &self.thresholds
    }

    /// Pick the exploration strategy (dimension I of Figure 7).
    pub fn decide_exploration(&self, obs: &WorkloadObservation) -> ExplorationStrategy {
        let t = &self.thresholds;
        if obs.deps_per_op() >= t.deps_per_op_high {
            if obs.stats.degree_skew <= t.degree_skew_high {
                // Many dependencies, balanced degree distribution: strata keep
                // threads busy and synchronisation is cheap relative to the
                // number of resolved dependencies.
                ExplorationStrategy::StructuredBfs
            } else {
                ExplorationStrategy::NonStructured
            }
        } else {
            ExplorationStrategy::NonStructured
        }
    }

    /// Pick the scheduling granularity (dimension II of Figure 7).
    pub fn decide_granularity(&self, obs: &WorkloadObservation) -> Granularity {
        let t = &self.thresholds;
        if !obs.coarse_cycles
            && obs.td_per_op() >= t.td_per_op_high
            && obs.pd_per_op() < t.pd_per_op_high
        {
            Granularity::Coarse
        } else {
            Granularity::Fine
        }
    }

    /// Pick the abort handling mechanism (dimension III of Figure 7).
    pub fn decide_abort_handling(&self, obs: &WorkloadObservation) -> AbortHandling {
        let t = &self.thresholds;
        if obs.stats.mean_cost_us < t.complexity_high_us
            && obs.stats.expected_abort_ratio >= t.abort_ratio_high
        {
            AbortHandling::Lazy
        } else {
            AbortHandling::Eager
        }
    }

    /// Full decision across the three dimensions.
    pub fn decide(&self, obs: &WorkloadObservation) -> SchedulingDecision {
        SchedulingDecision {
            exploration: self.decide_exploration(obs),
            granularity: self.decide_granularity(obs),
            abort_handling: self.decide_abort_handling(obs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(
        num_ops: usize,
        td: usize,
        pd: usize,
        skew: f64,
        cost_us: f64,
        abort_ratio: f64,
    ) -> TpgStats {
        TpgStats {
            num_ops,
            num_txns: num_ops,
            td_edges: td,
            pd_edges: pd,
            ld_edges: 0,
            degree_skew: skew,
            mean_cost_us: cost_us,
            expected_abort_ratio: abort_ratio,
            ..TpgStats::default()
        }
    }

    #[test]
    fn many_uniform_dependencies_pick_structured_exploration() {
        let obs = WorkloadObservation::new(stats(1000, 900, 100, 2.0, 10.0, 0.0), false);
        assert_eq!(
            DecisionModel::new().decide_exploration(&obs),
            ExplorationStrategy::StructuredBfs
        );
    }

    #[test]
    fn skewed_dependencies_pick_non_structured_exploration() {
        let obs = WorkloadObservation::new(stats(1000, 900, 100, 50.0, 10.0, 0.0), false);
        assert_eq!(
            DecisionModel::new().decide_exploration(&obs),
            ExplorationStrategy::NonStructured
        );
    }

    #[test]
    fn few_dependencies_pick_non_structured_exploration() {
        let obs = WorkloadObservation::new(stats(1000, 50, 10, 1.5, 10.0, 0.0), false);
        assert_eq!(
            DecisionModel::new().decide_exploration(&obs),
            ExplorationStrategy::NonStructured
        );
    }

    #[test]
    fn coarse_granularity_requires_acyclic_many_td_few_pd() {
        let model = DecisionModel::new();
        let good = WorkloadObservation::new(stats(1000, 900, 20, 2.0, 10.0, 0.0), false);
        assert_eq!(model.decide_granularity(&good), Granularity::Coarse);

        let cyclic = WorkloadObservation::new(stats(1000, 900, 20, 2.0, 10.0, 0.0), true);
        assert_eq!(model.decide_granularity(&cyclic), Granularity::Fine);

        let many_pd = WorkloadObservation::new(stats(1000, 900, 400, 2.0, 10.0, 0.0), false);
        assert_eq!(model.decide_granularity(&many_pd), Granularity::Fine);

        let few_td = WorkloadObservation::new(stats(1000, 100, 20, 2.0, 10.0, 0.0), false);
        assert_eq!(model.decide_granularity(&few_td), Granularity::Fine);
    }

    #[test]
    fn abort_handling_follows_cost_and_abort_ratio() {
        let model = DecisionModel::new();
        let cheap_aborty = WorkloadObservation::new(stats(100, 0, 0, 1.0, 5.0, 0.5), false);
        assert_eq!(
            model.decide_abort_handling(&cheap_aborty),
            AbortHandling::Lazy
        );

        let cheap_clean = WorkloadObservation::new(stats(100, 0, 0, 1.0, 5.0, 0.01), false);
        assert_eq!(
            model.decide_abort_handling(&cheap_clean),
            AbortHandling::Eager
        );

        let expensive_aborty = WorkloadObservation::new(stats(100, 0, 0, 1.0, 90.0, 0.5), false);
        assert_eq!(
            model.decide_abort_handling(&expensive_aborty),
            AbortHandling::Eager
        );
    }

    #[test]
    fn full_decision_combines_all_three_dimensions() {
        let model = DecisionModel::new();
        // Phase-1-like workload of Figure 12: many scattered deposits — lots
        // of TDs/LDs, few PDs, uniform distribution, no aborts.
        let obs = WorkloadObservation::new(stats(10_000, 9_000, 100, 2.0, 10.0, 0.0), false);
        let d = model.decide(&obs);
        assert_eq!(d.exploration, ExplorationStrategy::StructuredBfs);
        assert_eq!(d.granularity, Granularity::Coarse);
        assert_eq!(d.abort_handling, AbortHandling::Eager);

        // Phase-4-like workload: rising abort ratio with cheap UDFs morphs
        // abort handling to lazy.
        let obs = WorkloadObservation::new(stats(10_000, 9_000, 100, 2.0, 10.0, 0.6), false);
        assert_eq!(model.decide(&obs).abort_handling, AbortHandling::Lazy);
    }

    #[test]
    fn custom_thresholds_change_decisions() {
        let strict = DecisionModel::with_thresholds(ModelThresholds {
            deps_per_op_high: 10.0,
            ..ModelThresholds::default()
        });
        let obs = WorkloadObservation::new(stats(1000, 900, 100, 2.0, 10.0, 0.0), false);
        assert_eq!(
            strict.decide_exploration(&obs),
            ExplorationStrategy::NonStructured
        );
        assert_eq!(strict.thresholds().deps_per_op_high, 10.0);
    }

    #[test]
    fn empty_batch_degenerates_gracefully() {
        let obs = WorkloadObservation::new(TpgStats::default(), false);
        let d = DecisionModel::new().decide(&obs);
        assert_eq!(d.exploration, ExplorationStrategy::NonStructured);
        assert_eq!(d.granularity, Granularity::Fine);
        assert_eq!(d.abort_handling, AbortHandling::Eager);
    }
}
