//! End-to-end tests of `morphstream serve`: a real TCP server in-process,
//! real sockets, and the three acceptance properties of the issue —
//! TCP-fed runs are digest-identical to `push_iter` runs (serial and
//! concurrent runtimes), a flooded slow consumer back-pressures with bounded
//! memory and nonzero `queue_full_waits`, and `/metrics` serves Prometheus
//! text whose counters sum to the final report.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use morphstream_common::protocol::WireFormat;
use morphstream_common::WorkloadConfig;
use morphstream_server::{encode_event, reference_run, write_preamble, ServeOptions, Server};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

/// A compact but non-trivial stream: several punctuations, transfers that
/// abort, and keys drawn Zipf-skewed from a small space.
fn test_events(count: usize, config: &WorkloadConfig) -> Vec<SlEvent> {
    StreamingLedgerApp::generate(config, count, 0.5)
}

fn test_options() -> ServeOptions {
    let mut opts = ServeOptions::default();
    opts.workload = opts
        .workload
        .with_key_space(10_000)
        .with_txns_per_batch(1_000);
    // Keep the emulated UDF cost out of test wall-clock.
    opts.workload.udf_complexity_us = 0;
    opts
}

/// Send `events` over one TCP connection in `format`, then half-close.
fn send_stream(addr: std::net::SocketAddr, events: &[SlEvent], format: WireFormat) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    write_preamble(format, &mut wire);
    for event in events {
        encode_event(event, format, &mut scratch, &mut wire).expect("encode event");
    }
    stream.write_all(&wire).expect("write stream");
    stream.flush().unwrap();
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    // Hold the read side open until the server has had a chance to drain;
    // dropping the socket entirely is also fine, the server reads EOF.
}

/// Block until the server has pushed `expected` events into the engine.
/// `Server::shutdown` stops *accepting* — a connection still sitting in the
/// kernel backlog would be dropped — so every test drains first.
fn wait_for_ingest(server: &Server, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.events_ingested() < expected {
        assert!(
            Instant::now() < deadline,
            "server ingested {} of {expected} events before the deadline",
            server.events_ingested()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

/// Parse the value of a non-comment sample line, e.g.
/// `morphstream_events_total 500`.
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (sample, value) = line.rsplit_once(' ')?;
            (sample == name).then(|| value.parse().expect("numeric sample"))
        })
}

#[test]
fn tcp_fed_run_matches_push_iter_on_both_runtimes_and_formats() {
    for concurrent in [false, true] {
        let mut opts = test_options();
        opts.concurrent = concurrent;
        let events = test_events(5_000, &opts.workload);
        let expected = reference_run(&opts, events.clone()).expect("reference run");
        assert_eq!(expected.snapshot.events, 5_000, "reference run sanity");
        assert!(expected.snapshot.aborted > 0, "stream exercises aborts");

        for format in [WireFormat::Binary, WireFormat::JsonLines] {
            let server = Server::start(opts.clone()).expect("server starts");
            send_stream(server.event_addr(), &events, format);
            wait_for_ingest(&server, 5_000);
            let summary = server.shutdown();

            assert_eq!(
                summary.ledger_digest, expected.ledger_digest,
                "ledger state diverged (concurrent={concurrent}, {format:?})"
            );
            assert_eq!(
                summary.audit_digest, expected.audit_digest,
                "audit state diverged (concurrent={concurrent}, {format:?})"
            );
            assert_eq!(
                summary.output_digest, expected.output_digest,
                "output stream diverged (concurrent={concurrent}, {format:?})"
            );
            assert_eq!(summary.snapshot.events, expected.snapshot.events);
            assert_eq!(summary.snapshot.committed, expected.snapshot.committed);
            assert_eq!(summary.snapshot.aborted, expected.snapshot.aborted);
            assert_eq!(summary.frames, 5_000);
            assert_eq!(summary.decode_errors, 0);
        }
    }
}

#[test]
fn slow_consumer_back_pressures_with_bounded_memory() {
    let mut opts = test_options();
    opts.workload = opts.workload.with_txns_per_batch(128);
    // Concurrent runtime, minimal channel, and an audit operator that is
    // deliberately slower than the ledger: the ledger→audit channel must
    // fill and block.
    opts.concurrent = true;
    opts.channel_capacity = 1;
    opts.audit_cost_us = 50;
    opts.threads = 1;

    let events = test_events(10_000, &opts.workload);
    let server = Server::start(opts).expect("server starts");
    send_stream(server.event_addr(), &events, WireFormat::Binary);
    wait_for_ingest(&server, 10_000);
    let summary = server.shutdown();

    assert_eq!(summary.snapshot.events, 10_000, "nothing lost under load");
    let waits: u64 = summary
        .snapshot
        .edges
        .iter()
        .map(|edge| edge.queue_full_waits)
        .sum();
    assert!(
        waits > 0,
        "a flooded slow consumer must block on the bounded channel, edges: {:?}",
        summary.snapshot.edges
    );
    // Memory stays bounded: the retained footprint is on the order of the
    // state tables plus punctuation-sized in-flight batches — far below the
    // raw stream (10k events of versioned state would dwarf this if the
    // channel were unbounded).
    assert!(
        summary.snapshot.peak_bytes_retained < 64 * 1024 * 1024,
        "peak_bytes_retained {} exceeds the bounded-memory expectation",
        summary.snapshot.peak_bytes_retained
    );
}

#[test]
fn metrics_endpoint_serves_prometheus_that_sums_to_the_final_report() {
    let mut opts = test_options();
    // Exactly 4 punctuations, so everything is processed without a flush.
    opts.workload = opts.workload.with_txns_per_batch(250);
    let events = test_events(1_000, &opts.workload);
    let server = Server::start(opts).expect("server starts");

    let (head, body) = http_get(server.metrics_addr(), "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "healthz: {head}");
    assert_eq!(body, "ok\n");

    send_stream(server.event_addr(), &events, WireFormat::Binary);

    // Poll until the stream is fully processed, then take one scrape.
    let deadline = Instant::now() + Duration::from_secs(30);
    let scrape = loop {
        let (head, body) = http_get(server.metrics_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "metrics: {head}");
        assert!(
            head.contains("text/plain; version=0.0.4"),
            "prometheus content type: {head}"
        );
        if metric_value(&body, "morphstream_events_total") == Some(1_000.0) {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "server never processed the stream; last scrape:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    let (head, _) = http_get(server.metrics_addr(), "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "unknown path: {head}");

    let summary = server.shutdown();
    assert_eq!(summary.snapshot.events, 1_000);

    // The scrape taken while live must agree with the final report: same
    // cumulative counters, per-operator rows summing to the totals.
    for (name, expected) in [
        ("morphstream_events_total", summary.snapshot.events),
        ("morphstream_committed_total", summary.snapshot.committed),
        ("morphstream_aborted_total", summary.snapshot.aborted),
        ("morphstream_batches_total", summary.snapshot.batches),
        ("morphstream_connections_total", 1),
        ("morphstream_frames_total", 1_000),
        ("morphstream_decode_errors_total", 0),
    ] {
        assert_eq!(
            metric_value(&scrape, name),
            Some(expected as f64),
            "{name} diverged from the final report"
        );
    }
    let per_operator: f64 = summary
        .snapshot
        .operators
        .iter()
        .map(|op| {
            metric_value(
                &scrape,
                &format!(
                    "morphstream_operator_committed_total{{operator=\"{}\"}}",
                    op.name
                ),
            )
            .unwrap_or_else(|| panic!("operator row {} missing from scrape", op.name))
        })
        .sum();
    assert_eq!(
        per_operator, summary.snapshot.committed as f64,
        "operator rows must sum to the top-level committed counter"
    );
}

#[test]
fn malformed_connection_errors_without_taking_the_server_down() {
    let opts = test_options();
    let events = test_events(500, &opts.workload);
    let server = Server::start(opts).expect("server starts");

    // A garbage connection: neither `{` nor the MSB1 magic.
    let mut bad = TcpStream::connect(server.event_addr()).expect("connect");
    bad.write_all(b"GARBAGE STREAM").unwrap();
    bad.shutdown(std::net::Shutdown::Write).unwrap();

    // A valid connection right after must still be served in full.
    send_stream(server.event_addr(), &events, WireFormat::JsonLines);
    wait_for_ingest(&server, 500);
    let summary = server.shutdown();
    assert_eq!(summary.snapshot.events, 500);
    assert_eq!(summary.decode_errors, 1);
    assert_eq!(summary.connections, 2);
}

#[test]
fn session_rotation_preserves_lifetime_totals() {
    let mut opts = test_options();
    opts.workload = opts.workload.with_txns_per_batch(100);
    // Rotate every ~256 events: a 2_000-event stream crosses several
    // sessions, and the folded totals must still account for every event.
    opts.session_events = 256;
    let events = test_events(2_000, &opts.workload);
    let expected = reference_run(&test_options_like(&opts), events.clone()).expect("reference run");

    let server = Server::start(opts).expect("server starts");
    send_stream(server.event_addr(), &events, WireFormat::Binary);
    wait_for_ingest(&server, 2_000);
    let summary = server.shutdown();

    assert_eq!(summary.snapshot.events, 2_000);
    assert_eq!(summary.snapshot.committed, expected.snapshot.committed);
    assert_eq!(summary.snapshot.aborted, expected.snapshot.aborted);
    // State is carried across session rotations — digests still match a
    // single uninterrupted run.
    assert_eq!(summary.ledger_digest, expected.ledger_digest);
    assert_eq!(summary.output_digest, expected.output_digest);
}

/// The same options without rotation, for the reference side.
fn test_options_like(opts: &ServeOptions) -> ServeOptions {
    let mut reference = opts.clone();
    reference.session_events = 0;
    reference
}
