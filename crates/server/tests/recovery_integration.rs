//! End-to-end durability tests of `morphstream serve`: a server with a
//! `--data-dir` survives restarts — resuming from its final checkpoint after
//! a graceful shutdown, and replaying the write-ahead log after a simulated
//! crash — to state and output digests identical to one uninterrupted run of
//! the same stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use morphstream_common::protocol::WireFormat;
use morphstream_common::WorkloadConfig;
use morphstream_durability::{decode_segment, FsyncPolicy, WalLog};
use morphstream_server::{encode_event, reference_run, write_preamble, ServeOptions, Server};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

fn test_events(count: usize, config: &WorkloadConfig) -> Vec<SlEvent> {
    StreamingLedgerApp::generate(config, count, 0.5)
}

fn test_options(data_dir: Option<PathBuf>) -> ServeOptions {
    let mut opts = ServeOptions::default();
    opts.workload = opts
        .workload
        .with_key_space(10_000)
        .with_txns_per_batch(1_000);
    opts.workload.udf_complexity_us = 0;
    opts.data_dir = data_dir;
    opts
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-serve-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn send_stream(addr: std::net::SocketAddr, events: &[SlEvent]) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    write_preamble(WireFormat::Binary, &mut wire);
    for event in events {
        encode_event(event, WireFormat::Binary, &mut scratch, &mut wire).expect("encode event");
    }
    stream.write_all(&wire).expect("write stream");
    stream.flush().unwrap();
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
}

fn wait_for_ingest(server: &Server, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.events_ingested() < expected {
        assert!(
            Instant::now() < deadline,
            "server ingested {} of {expected} events before the deadline",
            server.events_ingested()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split")
        .1
        .to_string()
}

fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (sample, value) = line.rsplit_once(' ')?;
            (sample == name).then(|| value.parse().expect("numeric sample"))
        })
}

/// Graceful restart: stop a durable server mid-stream, start a second one on
/// the same data directory, feed it the rest. The second lifetime resumes
/// from the shutdown checkpoint (nothing to replay) and the combined run is
/// digest-identical to one uninterrupted run.
#[test]
fn graceful_restart_resumes_from_checkpoint_to_identical_digests() {
    let dir = temp_dir("graceful");
    let opts = test_options(Some(dir.clone()));
    let events = test_events(4_000, &opts.workload);
    let expected = reference_run(&test_options(None), events.clone()).expect("reference run");

    let first = Server::start(opts.clone()).expect("first server starts");
    assert!(
        first.recovery().is_none(),
        "fresh data dir: nothing to recover"
    );
    send_stream(first.event_addr(), &events[..2_500]);
    wait_for_ingest(&first, 2_500);
    first.shutdown();

    let second = Server::start(opts).expect("second server starts");
    let recovery = second.recovery().expect("second lifetime recovers").clone();
    assert!(recovery.checkpoint_id.is_some(), "restored a checkpoint");
    assert_eq!(
        recovery.events_applied, 2_500,
        "checkpoint covered the prefix"
    );
    assert_eq!(
        recovery.replayed_events, 0,
        "graceful shutdown leaves no WAL tail"
    );
    assert!(!recovery.torn_tail);
    send_stream(second.event_addr(), &events[2_500..]);
    wait_for_ingest(&second, 1_500);
    let summary = second.shutdown();

    assert_eq!(
        summary.ledger_digest, expected.ledger_digest,
        "ledger state diverged"
    );
    assert_eq!(
        summary.audit_digest, expected.audit_digest,
        "audit state diverged"
    );
    assert_eq!(
        summary.output_digest, expected.output_digest,
        "output stream diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery: a data directory holding only a write-ahead log (the
/// shape a kill leaves when it lands before the first checkpoint) is fully
/// replayed through the topology at startup, then the stream continues over
/// TCP — digest-identical to the uninterrupted run, with the durability
/// metrics visible on `/metrics`.
#[test]
fn crash_recovery_replays_wal_tail_through_the_server() {
    let dir = temp_dir("crash");
    let opts = test_options(Some(dir.clone()));
    let events = test_events(3_000, &opts.workload);
    let expected = reference_run(&test_options(None), events.clone()).expect("reference run");

    // Simulate the crashed first lifetime: its WAL recorded the prefix, but
    // it died before any checkpoint was taken.
    {
        let mut wal = WalLog::open(dir.join("wal"), FsyncPolicy::Always, 0).expect("open WAL");
        for event in &events[..1_700] {
            wal.append_event(event).expect("append");
        }
    }

    let server = Server::start(opts).expect("server recovers and starts");
    let recovery = server
        .recovery()
        .expect("WAL tail triggers recovery")
        .clone();
    assert_eq!(recovery.checkpoint_id, None, "no checkpoint existed");
    assert_eq!(recovery.replayed_events, 1_700, "the whole WAL is the tail");
    assert!(!recovery.torn_tail);

    let scrape = http_get(server.metrics_addr(), "/metrics");
    assert_eq!(
        metric_value(&scrape, "morphstream_recovered_events_total"),
        Some(1_700.0)
    );
    assert_eq!(
        metric_value(&scrape, "morphstream_recoveries_total"),
        Some(1.0)
    );
    assert!(
        metric_value(&scrape, "morphstream_checkpoints_total").unwrap_or(0.0) >= 1.0,
        "recovery re-anchors with a fresh checkpoint"
    );
    assert!(
        metric_value(&scrape, "morphstream_durable_events").unwrap_or(0.0) >= 1_700.0,
        "durable_events tells a resuming client where to skip to"
    );

    send_stream(server.event_addr(), &events[1_700..]);
    wait_for_ingest(&server, 1_300);
    let summary = server.shutdown();

    assert_eq!(
        summary.ledger_digest, expected.ledger_digest,
        "ledger state diverged"
    );
    assert_eq!(
        summary.audit_digest, expected.audit_digest,
        "audit state diverged"
    );
    assert_eq!(
        summary.output_digest, expected.output_digest,
        "output stream diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Durability on a TOML-declared dataflow: a server started with
/// `--topology` recovers a WAL-only data directory (the crash signature) by
/// replaying every event through the *loaded* topology, then continues over
/// TCP — digest-identical to an uninterrupted reference run of the same
/// scenario file.
#[test]
fn crash_recovery_works_on_a_toml_loaded_topology() {
    const SCENARIO: &str = r#"
[topology]
name = "served-ledger"
terminal = "audit"
punctuation = 500

[[stages]]
id = "accounts"
app = "ledger"

[[stages]]
id = "audit"
app = "tally"
inputs = ["accounts"]
"#;
    let dir = temp_dir("toml-crash");
    std::fs::create_dir_all(&dir).expect("create data dir");
    let scenario_path = dir.join("served.toml");
    std::fs::write(&scenario_path, SCENARIO).expect("write scenario");

    let mut opts = test_options(Some(dir.clone()));
    opts.topology = Some(scenario_path.clone());
    let events = test_events(3_000, &opts.workload);
    let mut reference_opts = test_options(None);
    reference_opts.topology = Some(scenario_path);
    let expected = reference_run(&reference_opts, events.clone()).expect("reference run");
    // The loaded dataflow shares one store, returned in both digest slots.
    assert_eq!(expected.ledger_digest, expected.audit_digest);

    // Simulate the crashed first lifetime: WAL prefix, no checkpoint.
    {
        let mut wal = WalLog::open(dir.join("wal"), FsyncPolicy::Always, 0).expect("open WAL");
        for event in &events[..1_800] {
            wal.append_event(event).expect("append");
        }
    }

    let server = Server::start(opts).expect("server recovers the TOML topology");
    let recovery = server
        .recovery()
        .expect("WAL tail triggers recovery")
        .clone();
    assert_eq!(recovery.checkpoint_id, None, "no checkpoint existed");
    assert_eq!(recovery.replayed_events, 1_800, "the whole WAL is the tail");
    assert!(!recovery.torn_tail);

    send_stream(server.event_addr(), &events[1_800..]);
    wait_for_ingest(&server, 1_200);
    let summary = server.shutdown();

    assert_eq!(
        summary.ledger_digest, expected.ledger_digest,
        "scenario state diverged"
    );
    assert_eq!(
        summary.output_digest, expected.output_digest,
        "output stream diverged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn record at the WAL tail — the signature of a kill mid-write — is
/// dropped and reported; everything before it still replays.
#[test]
fn torn_wal_tail_is_dropped_and_reported() {
    let dir = temp_dir("torn");
    let opts = test_options(Some(dir.clone()));
    let events = test_events(900, &opts.workload);

    {
        let mut wal = WalLog::open(dir.join("wal"), FsyncPolicy::Always, 0).expect("open WAL");
        for event in &events {
            wal.append_event(event).expect("append");
        }
    }
    // Half a record: a valid event tag, then a length field with no payload
    // behind it.
    let segment = std::fs::read_dir(dir.join("wal"))
        .expect("wal dir")
        .map(|entry| entry.expect("entry").path())
        .max()
        .expect("one segment");
    let mut bytes = std::fs::read(&segment).expect("read segment");
    bytes.extend_from_slice(&[1, 0xFF, 0xFF, 0xFF]);
    std::fs::write(&segment, bytes).expect("tear the tail");

    let server = Server::start(opts).expect("server tolerates the torn tail");
    let recovery = server.recovery().expect("recovers").clone();
    assert!(recovery.torn_tail, "the torn record is reported");
    assert_eq!(recovery.replayed_events, 900, "the intact prefix replays");

    // Recovery also repaired the segment on disk: new appends will seal it
    // behind a newer segment, where leftover damage would refuse startup.
    let repaired = std::fs::read(&segment).expect("re-read segment");
    let decoded = decode_segment::<SlEvent>(&repaired).expect("decodes");
    assert!(!decoded.torn, "the torn tail was truncated away");
    assert_eq!(decoded.events.len(), 900);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
