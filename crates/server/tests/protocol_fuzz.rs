//! Property tests of the wire protocol (vendored proptest shim): arbitrary
//! events round-trip both formats bit-exactly, and arbitrary byte soup fed
//! to the socket decoder errors instead of panicking — the server-facing
//! totality guarantee.

use std::io::Cursor;

use proptest::prelude::*;

use morphstream_common::protocol::{WireCodec, WireFormat};
use morphstream_server::{encode_event, write_preamble, SocketEventSource};
use morphstream_workloads::{EventSource, GsEvent, SlEvent};

/// Largest integer JSON carries exactly (the parser goes through `f64`).
const JSON_MAX: u64 = (1 << 53) - 1;

fn sl_event(key_bound: u64, amount_bound: i64) -> impl Strategy<Value = SlEvent> {
    prop_oneof![
        (0..key_bound, -amount_bound..amount_bound)
            .prop_map(|(account, amount)| { SlEvent::Deposit { account, amount } }),
        (0..key_bound, 0..key_bound, 0..amount_bound)
            .prop_map(|(from, to, amount)| { SlEvent::Transfer { from, to, amount } }),
    ]
}

fn gs_event(key_bound: u64) -> impl Strategy<Value = GsEvent> {
    let keys = || proptest::collection::vec(0..key_bound, 0..6);
    prop_oneof![
        (0..key_bound, keys(), -1_000i64..1_000, 0u64..2).prop_map(
            |(target, sources, value, abort)| GsEvent::Update {
                target,
                sources,
                value,
                inject_abort: abort == 1,
            }
        ),
        (keys(), 0..key_bound).prop_map(|(keys, window)| GsEvent::WindowSum { keys, window }),
        (0..key_bound, keys()).prop_map(|(seed, read_keys)| GsEvent::NonDetSum { seed, read_keys }),
    ]
}

/// Encode one event as a full wire stream and decode it back through the
/// socket decoder.
fn round_trip<T: WireCodec + PartialEq + std::fmt::Debug>(event: &T, format: WireFormat) {
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    write_preamble(format, &mut wire);
    encode_event(event, format, &mut scratch, &mut wire).expect("encode");
    let mut source: SocketEventSource<T, _> = SocketEventSource::new(Cursor::new(wire));
    let mut out = Vec::new();
    assert_eq!(source.next_batch(4, &mut out), 1, "{format:?}");
    assert_eq!(&out[0], event, "{format:?}");
    assert_eq!(source.next_batch(4, &mut out), 0, "stream is exhausted");
    assert!(source.error().is_none(), "{:?}", source.error());
}

/// Feed arbitrary bytes to the decoder: it must terminate without panicking,
/// and never fabricate trailing events after an error.
fn fuzz_decode(wire: Vec<u8>) {
    let mut source: SocketEventSource<SlEvent, _> = SocketEventSource::new(Cursor::new(wire));
    let mut out = Vec::new();
    while source.next_batch(64, &mut out) > 0 {
        assert!(source.error().is_none(), "events after an error");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sl_events_round_trip_binary_at_full_range(event in sl_event(u64::MAX, i64::MAX)) {
        round_trip(&event, WireFormat::Binary);
    }

    #[test]
    fn sl_events_round_trip_json_in_the_safe_integer_range(
        event in sl_event(JSON_MAX, JSON_MAX as i64)
    ) {
        round_trip(&event, WireFormat::JsonLines);
    }

    #[test]
    fn gs_events_round_trip_both_formats(event in gs_event(JSON_MAX)) {
        round_trip(&event, WireFormat::Binary);
        round_trip(&event, WireFormat::JsonLines);
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_decoder(
        wire in proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..512)
    ) {
        fuzz_decode(wire.clone());

        // The same soup behind a valid binary preamble: exercises the frame
        // parser instead of failing at the magic check.
        let mut framed = b"MSB1".to_vec();
        framed.extend_from_slice(&wire);
        fuzz_decode(framed);

        // And as a "JSON" connection: a `{` forces the line parser.
        let mut json = b"{".to_vec();
        json.extend_from_slice(&wire);
        fuzz_decode(json);
    }

    #[test]
    fn corrupted_valid_frames_error_instead_of_panicking(
        event in sl_event(u64::MAX, i64::MAX),
        flip in 0usize..64,
        bite in 0usize..16,
    ) {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_preamble(WireFormat::Binary, &mut wire);
        encode_event(&event, WireFormat::Binary, &mut scratch, &mut wire).expect("encode");
        // Flip one byte somewhere in the stream...
        let at = flip % wire.len();
        wire[at] ^= 1 << (bite % 8);
        fuzz_decode(wire.clone());
        // ...and also truncate at an arbitrary point.
        wire.truncate(flip % (wire.len() + 1));
        fuzz_decode(wire);
    }
}
