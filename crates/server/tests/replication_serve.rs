//! End-to-end replication through the server layer: a `--replicate-to`
//! primary ships its WAL to a [`StandbyHandle`], both sides expose the
//! replication families on `/metrics`, the `/promote` admin endpoint flips
//! the promote flag, and a promoted standby serves the rest of the stream
//! to digests identical to one uninterrupted run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use morphstream_common::protocol::WireFormat;
use morphstream_common::WorkloadConfig;
use morphstream_server::{
    encode_event, promote_requested, reference_run, write_preamble, AckMode, ServeOptions, Server,
    StandbyHandle,
};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

fn test_events(count: usize, config: &WorkloadConfig) -> Vec<SlEvent> {
    StreamingLedgerApp::generate(config, count, 0.5)
}

fn test_options(data_dir: Option<PathBuf>) -> ServeOptions {
    let mut opts = ServeOptions::default();
    opts.workload = opts
        .workload
        .with_key_space(10_000)
        .with_txns_per_batch(1_000);
    opts.workload.udf_complexity_us = 0;
    opts.data_dir = data_dir;
    opts
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-repl-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn send_stream(addr: std::net::SocketAddr, events: &[SlEvent]) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    write_preamble(WireFormat::Binary, &mut wire);
    for event in events {
        encode_event(event, WireFormat::Binary, &mut scratch, &mut wire).expect("encode event");
    }
    stream.write_all(&wire).expect("write stream");
    stream.flush().unwrap();
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
}

fn wait_for_ingest(server: &Server, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while server.events_ingested() < expected {
        assert!(
            Instant::now() < deadline,
            "server ingested {} of {expected} events before the deadline",
            server.events_ingested()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_for_durable(standby: &StandbyHandle, expected: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while standby.durable_index() < expected {
        assert!(
            Instant::now() < deadline,
            "standby replicated {} of {expected} events before the deadline",
            standby.durable_index()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split")
        .1
        .to_string()
}

fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .filter(|line| !line.starts_with('#'))
        .find_map(|line| {
            let (sample, value) = line.rsplit_once(' ')?;
            (sample == name).then(|| value.parse().expect("numeric sample"))
        })
}

/// The full failover story through the public server API: replicate under
/// sync acks, observe lag reach zero on both `/metrics` endpoints, promote
/// the standby, serve the rest of the stream there, and match the digests
/// of one uninterrupted reference run.
#[test]
fn replicated_serve_fails_over_to_a_promoted_standby_with_identical_digests() {
    const EVENTS: usize = 4_000;
    const HANDOFF: usize = 2_500;
    let primary_dir = temp_dir("primary");
    let standby_dir = temp_dir("standby");
    let events = test_events(EVENTS, &test_options(None).workload);
    let expected = reference_run(&test_options(None), events.clone()).expect("reference run");

    let standby = StandbyHandle::start(
        test_options(Some(standby_dir.clone())),
        "127.0.0.1:0".into(),
    )
    .expect("standby starts");
    assert!(standby.recovery().is_none(), "fresh standby data dir");

    let mut primary_opts = test_options(Some(primary_dir.clone()));
    primary_opts.replicate_to = Some(standby.listen_addr().to_string());
    primary_opts.ack = AckMode::Sync;
    let primary = Server::start(primary_opts).expect("primary starts");

    send_stream(primary.event_addr(), &events[..HANDOFF]);
    wait_for_ingest(&primary, HANDOFF as u64);
    wait_for_durable(&standby, HANDOFF as u64);

    // Both sides expose the replication families, and the link is caught up.
    let primary_scrape = http_get(primary.metrics_addr(), "/metrics");
    assert_eq!(
        metric_value(&primary_scrape, "morphstream_standby_connected"),
        Some(1.0)
    );
    assert!(
        metric_value(
            &primary_scrape,
            "morphstream_replication_shipped_records_total"
        )
        .expect("primary exposes shipped records")
            >= HANDOFF as f64
    );
    assert_eq!(
        metric_value(&primary_scrape, "morphstream_replication_lag_records"),
        Some(0.0),
        "sync acks leave no lag after ingest finishes"
    );
    let standby_scrape = http_get(standby.metrics_addr(), "/metrics");
    assert_eq!(
        metric_value(&standby_scrape, "morphstream_standby_connected"),
        Some(1.0)
    );
    assert_eq!(
        metric_value(
            &standby_scrape,
            "morphstream_replication_shipped_records_total"
        ),
        Some(HANDOFF as f64)
    );
    assert_eq!(
        metric_value(&standby_scrape, "morphstream_replication_lag_records"),
        Some(0.0)
    );
    assert!(
        metric_value(&standby_scrape, "morphstream_replication_last_ack_seconds")
            .expect("standby exposes ack age")
            >= 0.0
    );
    assert_eq!(http_get(standby.metrics_addr(), "/healthz"), "ok\n");

    // The admin endpoint flips the same flag SIGUSR1 does.
    assert!(!promote_requested());
    assert_eq!(http_get(standby.metrics_addr(), "/promote"), "promoting\n");
    assert!(promote_requested(), "/promote raises the promote flag");

    // Lose the primary, promote, and serve the rest of the stream there.
    primary.shutdown();
    let promoted = standby.promote().expect("promotion succeeds");
    send_stream(promoted.event_addr(), &events[HANDOFF..]);
    wait_for_ingest(&promoted, (EVENTS - HANDOFF) as u64);
    let summary = promoted.shutdown();

    assert_eq!(
        summary.ledger_digest, expected.ledger_digest,
        "ledger state diverged across failover"
    );
    assert_eq!(
        summary.audit_digest, expected.audit_digest,
        "audit state diverged across failover"
    );
    assert_eq!(
        summary.output_digest, expected.output_digest,
        "output stream diverged across failover"
    );
    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}
