//! Live observability: lifetime metric state and the `/metrics` endpoint.
//!
//! [`ServerMetrics`] holds the server's lifetime totals as a folded
//! [`ReportSnapshot`] (sessions rotate to bound report memory; each finished
//! session's snapshot is folded in) plus socket-layer counters maintained by
//! the connection handlers. A scrape combines the folded base with a live
//! snapshot of the current session and renders Prometheus text exposition
//! format — every number a scrape reports therefore sums to exactly what the
//! final [`RunReport`](morphstream::RunReport) would say if the server shut
//! down at that instant.
//!
//! The HTTP side is a deliberately small single-threaded responder: scrapes
//! are rare, the response is one string, and pulling in an HTTP stack for
//! two GET routes would dwarf the server itself.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use morphstream::ReportSnapshot;

/// Shared metric state: folded lifetime totals plus socket-layer counters.
#[derive(Default)]
pub struct ServerMetrics {
    /// Totals of every *finished* session, folded.
    base: Mutex<ReportSnapshot>,
    /// Last coherent lifetime total (base + live), served when the engine
    /// lock is contended at scrape time (e.g. blocked in back-pressure).
    cached: Mutex<ReportSnapshot>,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Frames/lines decoded over the server's lifetime.
    pub frames: AtomicU64,
    /// Connections closed by a protocol error.
    pub decode_errors: AtomicU64,
}

impl ServerMetrics {
    /// Fresh, all-zero metric state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold a finished session's snapshot into the lifetime base.
    pub fn fold_session(&self, snapshot: &ReportSnapshot) {
        self.base.lock().expect("metrics lock").fold(snapshot);
    }

    /// Lifetime totals given a live snapshot of the current session; also
    /// refreshes the stale-scrape cache.
    pub fn total_with_live(&self, live: &ReportSnapshot) -> ReportSnapshot {
        let mut total = self.base.lock().expect("metrics lock").clone();
        total.fold(live);
        *self.cached.lock().expect("metrics lock") = total.clone();
        total
    }

    /// The last coherent lifetime total, for scrapes that cannot take the
    /// engine lock without blocking behind back-pressure.
    pub fn cached_total(&self) -> ReportSnapshot {
        self.cached.lock().expect("metrics lock").clone()
    }
}

/// Render a lifetime snapshot as Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, counters suffixed `_total`,
/// label values escaped per the spec.
pub fn render_prometheus(total: &ReportSnapshot, metrics: &ServerMetrics) -> String {
    let mut out = String::with_capacity(2048);
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        &mut out,
        "morphstream_events_total",
        "Events processed (committed + aborted transactions).",
        total.events,
    );
    counter(
        &mut out,
        "morphstream_committed_total",
        "Committed transactions.",
        total.committed,
    );
    counter(
        &mut out,
        "morphstream_aborted_total",
        "Aborted transactions.",
        total.aborted,
    );
    counter(
        &mut out,
        "morphstream_redone_ops_total",
        "Operations redone because of upstream aborts.",
        total.redone_ops,
    );
    counter(
        &mut out,
        "morphstream_batches_total",
        "Punctuation batches processed.",
        total.batches,
    );
    counter(
        &mut out,
        "morphstream_connections_total",
        "TCP event connections accepted.",
        metrics.connections.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "morphstream_frames_total",
        "Wire frames (binary) or lines (JSON) decoded.",
        metrics.frames.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "morphstream_decode_errors_total",
        "Connections closed by a protocol error.",
        metrics.decode_errors.load(Ordering::Relaxed),
    );

    let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        &mut out,
        "morphstream_processing_seconds",
        "Engine-occupancy processing time summed over batches.",
        total.processing_seconds,
    );
    gauge(
        &mut out,
        "morphstream_events_per_second",
        "Throughput implied by the lifetime counters.",
        total.events_per_second(),
    );
    gauge(
        &mut out,
        "morphstream_p50_latency_ms",
        "Median end-to-end event latency of the current session window.",
        total.p50_latency_ms,
    );
    gauge(
        &mut out,
        "morphstream_p95_latency_ms",
        "95th-percentile end-to-end event latency of the current session window.",
        total.p95_latency_ms,
    );
    gauge(
        &mut out,
        "morphstream_peak_bytes_retained",
        "Largest state-store footprint observed.",
        total.peak_bytes_retained as f64,
    );

    if !total.operators.is_empty() {
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_events_total Events processed per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_events_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_events_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.events
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_committed_total Committed transactions per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_committed_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_committed_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.committed
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_aborted_total Aborted transactions per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_aborted_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_aborted_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.aborted
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_batches_total Punctuation batches per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_batches_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_batches_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.batches
            );
        }
    }
    if !total.edges.is_empty() {
        let _ = writeln!(
            out,
            "# HELP morphstream_edge_queue_full_waits_total Sender blocks on a full bounded channel, per dataflow edge."
        );
        let _ = writeln!(
            out,
            "# TYPE morphstream_edge_queue_full_waits_total counter"
        );
        for edge in &total.edges {
            let _ = writeln!(
                out,
                "morphstream_edge_queue_full_waits_total{{from=\"{}\",to=\"{}\"}} {}",
                escape_label(&edge.from),
                escape_label(&edge.to),
                edge.queue_full_waits
            );
        }
    }
    out
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Serve `/metrics` and `/healthz` on `listener` until `running` reports
/// false. Requests are handled one at a time; `scrape` produces the metrics
/// body on demand.
pub(crate) fn serve_http(
    listener: TcpListener,
    running: impl Fn() -> bool,
    scrape: impl Fn() -> String,
) {
    listener
        .set_nonblocking(true)
        .expect("metrics listener nonblocking");
    while running() {
        match listener.accept() {
            Ok((stream, _)) => handle_http(stream, &scrape),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_http(mut stream: std::net::TcpStream, scrape: &impl Fn() -> String) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request headers (or timeout); only the
    // request line matters for routing.
    let mut request = Vec::new();
    let mut chunk = [0u8; 1024];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => request.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request_line = request
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            scrape(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Bind the metrics listener, returning it with its resolved address
/// (`addr` may use port 0 for an ephemeral port in tests).
pub(crate) fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_is_well_formed_and_carries_the_counters() {
        let metrics = ServerMetrics::new();
        metrics.connections.store(2, Ordering::Relaxed);
        metrics.frames.store(100, Ordering::Relaxed);
        let mut total = ReportSnapshot {
            events: 100,
            committed: 95,
            aborted: 5,
            batches: 10,
            processing_seconds: 0.5,
            ..Default::default()
        };
        total.edges.push(morphstream::EdgeReport {
            from: "ledger".into(),
            to: "audit".into(),
            queue_full_waits: 7,
        });
        let text = render_prometheus(&total, &metrics);
        assert!(text.contains("morphstream_events_total 100\n"));
        assert!(text.contains("morphstream_committed_total 95\n"));
        assert!(text.contains("morphstream_connections_total 2\n"));
        assert!(text
            .contains("morphstream_edge_queue_full_waits_total{from=\"ledger\",to=\"audit\"} 7\n"));
        // every exposed family carries HELP and TYPE headers
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "stray comment: {line}"
                );
            }
        }
    }

    #[test]
    fn label_escaping_covers_quotes_and_backslashes() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
