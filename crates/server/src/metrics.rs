//! Live observability: lifetime metric state and the `/metrics` endpoint.
//!
//! [`ServerMetrics`] holds the server's lifetime totals as a folded
//! [`ReportSnapshot`] (sessions rotate to bound report memory; each finished
//! session's snapshot is folded in) plus socket-layer counters maintained by
//! the connection handlers. A scrape combines the folded base with a live
//! snapshot of the current session and renders Prometheus text exposition
//! format — every number a scrape reports therefore sums to exactly what the
//! final [`RunReport`](morphstream::RunReport) would say if the server shut
//! down at that instant.
//!
//! The HTTP side is a deliberately small single-threaded responder: scrapes
//! are rare, the response is one string, and pulling in an HTTP stack for
//! two GET routes would dwarf the server itself.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morphstream::{DurabilityCounters, ReportSnapshot};
use morphstream_replication::ReplicationStats;

/// Lock-free durability counters, updated by the ingest path while holding
/// the engine lock and read by scrapes that must never block behind it.
/// Gauges for "when" are stored as nanoseconds since the metrics clock
/// started ([`u64::MAX`] = never), so rendering needs no extra lock.
#[derive(Default)]
pub struct DurabilityStats {
    enabled: AtomicBool,
    checkpoints: AtomicU64,
    checkpoint_bytes: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    recoveries: AtomicU64,
    recovered_events: AtomicU64,
    wal_segments: AtomicU64,
    durable_events: AtomicU64,
    /// Duration of the most recent checkpoint, in nanoseconds.
    last_checkpoint_nanos: AtomicU64,
    /// When the most recent checkpoint finished, as nanoseconds on the
    /// metrics clock; `u64::MAX` = no checkpoint yet.
    last_checkpoint_at_nanos: AtomicU64,
}

impl DurabilityStats {
    fn new() -> Self {
        let stats = Self::default();
        stats
            .last_checkpoint_at_nanos
            .store(u64::MAX, Ordering::Relaxed);
        stats
    }

    /// Mark durability as configured: scrapes expose the family even while
    /// all counters are still zero.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Whether durability is configured on this server.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a crash recovery that replayed `replayed` WAL events.
    pub fn record_recovery(&self, replayed: u64) {
        self.enable();
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.recovered_events.fetch_add(replayed, Ordering::Relaxed);
    }

    /// Record one published checkpoint. `at` is the current reading of the
    /// metrics clock (see [`ServerMetrics::clock`]).
    pub fn record_checkpoint(&self, bytes: u64, took: Duration, at: Duration) {
        self.enable();
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.last_checkpoint_nanos
            .store(took.as_nanos() as u64, Ordering::Relaxed);
        self.last_checkpoint_at_nanos
            .store(at.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Publish the WAL's cumulative totals (the log handle owns the real
    /// counters; this mirrors them for scrapes).
    pub fn set_wal(&self, records: u64, bytes: u64, segments: u64, durable_events: u64) {
        self.wal_records.store(records, Ordering::Relaxed);
        self.wal_bytes.store(bytes, Ordering::Relaxed);
        self.wal_segments.store(segments, Ordering::Relaxed);
        self.durable_events.store(durable_events, Ordering::Relaxed);
    }

    /// Events durably logged (the WAL's next index) — what a resuming
    /// client needs to know to skip already-ingested events.
    pub fn durable_events(&self) -> u64 {
        self.durable_events.load(Ordering::Relaxed)
    }

    /// Render into the snapshot-level counter struct. `now` is the current
    /// reading of the metrics clock, for the last-checkpoint age.
    pub fn counters(&self, now: Duration) -> DurabilityCounters {
        let at = self.last_checkpoint_at_nanos.load(Ordering::Relaxed);
        let age = if at == u64::MAX {
            -1.0
        } else {
            (now.as_nanos() as f64 - at as f64) / 1e9
        };
        DurabilityCounters {
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            recovered_events: self.recovered_events.load(Ordering::Relaxed),
            wal_segments: self.wal_segments.load(Ordering::Relaxed),
            last_checkpoint_seconds: {
                let nanos = self.last_checkpoint_nanos.load(Ordering::Relaxed);
                nanos as f64 / 1e9
            },
            last_checkpoint_age_seconds: age,
        }
    }
}

/// Shared metric state: folded lifetime totals plus socket-layer counters.
pub struct ServerMetrics {
    /// Totals of every *finished* session, folded.
    base: Mutex<ReportSnapshot>,
    /// Last coherent lifetime total (base + live), served when the engine
    /// lock is contended at scrape time (e.g. blocked in back-pressure).
    cached: Mutex<ReportSnapshot>,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Frames/lines decoded over the server's lifetime.
    pub frames: AtomicU64,
    /// Connections closed by a protocol error.
    pub decode_errors: AtomicU64,
    /// Checkpoint/WAL counters (zero and hidden unless durability is on).
    pub durability: DurabilityStats,
    /// Replication counters (primary's sender or standby's receiver);
    /// hidden from scrapes until attached with
    /// [`ServerMetrics::set_replication`].
    replication: Mutex<Option<Arc<ReplicationStats>>>,
    /// Epoch of the gauges' time axis (checkpoint age).
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh, all-zero metric state.
    pub fn new() -> Self {
        Self {
            base: Mutex::new(ReportSnapshot::default()),
            cached: Mutex::new(ReportSnapshot::default()),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            durability: DurabilityStats::new(),
            replication: Mutex::new(None),
            started: Instant::now(),
        }
    }

    /// Attach the replication counters this server should expose (the
    /// sender's on a replicating primary, the receiver's on a standby).
    pub fn set_replication(&self, stats: Arc<ReplicationStats>) {
        *self.replication.lock().expect("metrics lock") = Some(stats);
    }

    /// The attached replication counters, if any.
    pub fn replication(&self) -> Option<Arc<ReplicationStats>> {
        self.replication.lock().expect("metrics lock").clone()
    }

    /// Current reading of the metrics clock (feeds
    /// [`DurabilityStats::record_checkpoint`] and the age gauge).
    pub fn clock(&self) -> Duration {
        self.started.elapsed()
    }

    /// Fold a finished session's snapshot into the lifetime base.
    pub fn fold_session(&self, snapshot: &ReportSnapshot) {
        self.base.lock().expect("metrics lock").fold(snapshot);
    }

    /// Lifetime totals given a live snapshot of the current session; also
    /// refreshes the stale-scrape cache. The durability counters come from
    /// this struct's atomics — the single source of truth — not from the
    /// folded snapshots.
    pub fn total_with_live(&self, live: &ReportSnapshot) -> ReportSnapshot {
        let mut total = self.base.lock().expect("metrics lock").clone();
        total.fold(live);
        total.durability = self.durability.counters(self.clock());
        *self.cached.lock().expect("metrics lock") = total.clone();
        total
    }

    /// The last coherent lifetime total, for scrapes that cannot take the
    /// engine lock without blocking behind back-pressure. Durability
    /// counters and the checkpoint age are still live (they are atomics).
    pub fn cached_total(&self) -> ReportSnapshot {
        let mut total = self.cached.lock().expect("metrics lock").clone();
        total.durability = self.durability.counters(self.clock());
        total
    }
}

/// Render a lifetime snapshot as Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` headers, counters suffixed `_total`,
/// label values escaped per the spec. Latency is exposed as a proper
/// histogram (`_bucket`/`_sum`/`_count`); `legacy_latency_gauges`
/// additionally emits the pre-histogram p50/p95 gauges for dashboards that
/// still chart them.
pub fn render_prometheus(
    total: &ReportSnapshot,
    metrics: &ServerMetrics,
    legacy_latency_gauges: bool,
) -> String {
    let mut out = String::with_capacity(2048);
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    };
    counter(
        &mut out,
        "morphstream_events_total",
        "Events processed (committed + aborted transactions).",
        total.events,
    );
    counter(
        &mut out,
        "morphstream_committed_total",
        "Committed transactions.",
        total.committed,
    );
    counter(
        &mut out,
        "morphstream_aborted_total",
        "Aborted transactions.",
        total.aborted,
    );
    counter(
        &mut out,
        "morphstream_redone_ops_total",
        "Operations redone because of upstream aborts.",
        total.redone_ops,
    );
    counter(
        &mut out,
        "morphstream_batches_total",
        "Punctuation batches processed.",
        total.batches,
    );
    counter(
        &mut out,
        "morphstream_connections_total",
        "TCP event connections accepted.",
        metrics.connections.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "morphstream_frames_total",
        "Wire frames (binary) or lines (JSON) decoded.",
        metrics.frames.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "morphstream_decode_errors_total",
        "Connections closed by a protocol error.",
        metrics.decode_errors.load(Ordering::Relaxed),
    );

    let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    };
    gauge(
        &mut out,
        "morphstream_processing_seconds",
        "Engine-occupancy processing time summed over batches.",
        total.processing_seconds,
    );
    gauge(
        &mut out,
        "morphstream_events_per_second",
        "Throughput implied by the lifetime counters.",
        total.events_per_second(),
    );
    if legacy_latency_gauges {
        gauge(
            &mut out,
            "morphstream_p50_latency_ms",
            "Median end-to-end event latency of the current session window (legacy; prefer morphstream_latency_ms).",
            total.p50_latency_ms,
        );
        gauge(
            &mut out,
            "morphstream_p95_latency_ms",
            "95th-percentile end-to-end event latency of the current session window (legacy; prefer morphstream_latency_ms).",
            total.p95_latency_ms,
        );
    }
    gauge(
        &mut out,
        "morphstream_peak_bytes_retained",
        "Largest state-store footprint observed.",
        total.peak_bytes_retained as f64,
    );

    // End-to-end latency as a real histogram: cumulative buckets, quantiles
    // computable server-side with histogram_quantile().
    let _ = writeln!(
        out,
        "# HELP morphstream_latency_ms End-to-end event latency in milliseconds."
    );
    let _ = writeln!(out, "# TYPE morphstream_latency_ms histogram");
    for (bound, cumulative) in total.latency.cumulative_buckets() {
        if bound.is_finite() {
            let _ = writeln!(
                out,
                "morphstream_latency_ms_bucket{{le=\"{bound}\"}} {cumulative}"
            );
        } else {
            let _ = writeln!(
                out,
                "morphstream_latency_ms_bucket{{le=\"+Inf\"}} {cumulative}"
            );
        }
    }
    let _ = writeln!(out, "morphstream_latency_ms_sum {}", total.latency.sum_ms);
    let _ = writeln!(out, "morphstream_latency_ms_count {}", total.latency.count);

    if metrics.durability.enabled() || total.durability.is_active() {
        let d = &total.durability;
        counter(
            &mut out,
            "morphstream_checkpoints_total",
            "Checkpoints published.",
            d.checkpoints,
        );
        counter(
            &mut out,
            "morphstream_checkpoint_bytes_total",
            "Bytes written by published checkpoints.",
            d.checkpoint_bytes,
        );
        counter(
            &mut out,
            "morphstream_wal_records_total",
            "Records appended to the write-ahead log (events + punctuation markers).",
            d.wal_records,
        );
        counter(
            &mut out,
            "morphstream_wal_bytes_total",
            "Bytes appended to the write-ahead log, including framing.",
            d.wal_bytes,
        );
        counter(
            &mut out,
            "morphstream_recoveries_total",
            "Crash recoveries performed at startup.",
            d.recoveries,
        );
        counter(
            &mut out,
            "morphstream_recovered_events_total",
            "Events replayed from the write-ahead log during recovery.",
            d.recovered_events,
        );
        gauge(
            &mut out,
            "morphstream_wal_segments",
            "Write-ahead log segment files currently on disk.",
            d.wal_segments as f64,
        );
        gauge(
            &mut out,
            "morphstream_durable_events",
            "Events durably logged (the WAL's next index); a resuming client skips this many.",
            metrics.durability.durable_events() as f64,
        );
        gauge(
            &mut out,
            "morphstream_last_checkpoint_seconds",
            "Duration of the most recent checkpoint.",
            d.last_checkpoint_seconds,
        );
        gauge(
            &mut out,
            "morphstream_last_checkpoint_age_seconds",
            "Seconds since the most recent checkpoint (-1 = none yet).",
            d.last_checkpoint_age_seconds,
        );
    }

    if let Some(repl) = metrics.replication() {
        gauge(
            &mut out,
            "morphstream_standby_connected",
            "Whether the replication link is currently established (1 = yes).",
            repl.is_connected() as u64 as f64,
        );
        counter(
            &mut out,
            "morphstream_replication_shipped_records_total",
            "WAL records shipped over the replication link (sent on the primary, received on the standby).",
            repl.shipped_records(),
        );
        counter(
            &mut out,
            "morphstream_replication_shipped_bytes_total",
            "WAL payload bytes shipped over the replication link.",
            repl.shipped_bytes(),
        );
        gauge(
            &mut out,
            "morphstream_replication_lag_records",
            "Events the standby's acknowledged durable position trails the primary's WAL tip by.",
            repl.lag_records() as f64,
        );
        gauge(
            &mut out,
            "morphstream_replication_lag_seconds",
            "Seconds of replication lag (0 when fully acknowledged).",
            repl.lag_seconds(),
        );
        gauge(
            &mut out,
            "morphstream_replication_last_ack_seconds",
            "Seconds since the last replication acknowledgement (-1 = none yet).",
            repl.last_ack_seconds(),
        );
    }

    if !total.operators.is_empty() {
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_events_total Events processed per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_events_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_events_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.events
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_committed_total Committed transactions per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_committed_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_committed_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.committed
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_aborted_total Aborted transactions per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_aborted_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_aborted_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.aborted
            );
        }
        let _ = writeln!(
            out,
            "# HELP morphstream_operator_batches_total Punctuation batches per operator instance."
        );
        let _ = writeln!(out, "# TYPE morphstream_operator_batches_total counter");
        for op in &total.operators {
            let _ = writeln!(
                out,
                "morphstream_operator_batches_total{{operator=\"{}\"}} {}",
                escape_label(&op.name),
                op.batches
            );
        }
    }
    if !total.edges.is_empty() {
        let _ = writeln!(
            out,
            "# HELP morphstream_edge_queue_full_waits_total Sender blocks on a full bounded channel, per dataflow edge."
        );
        let _ = writeln!(
            out,
            "# TYPE morphstream_edge_queue_full_waits_total counter"
        );
        for edge in &total.edges {
            let _ = writeln!(
                out,
                "morphstream_edge_queue_full_waits_total{{from=\"{}\",to=\"{}\"}} {}",
                escape_label(&edge.from),
                escape_label(&edge.to),
                edge.queue_full_waits
            );
        }
    }
    out
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Serve `/metrics` and `/healthz` on `listener` until `running` reports
/// false. Requests are handled one at a time; `scrape` produces the metrics
/// body on demand.
pub(crate) fn serve_http(
    listener: TcpListener,
    running: impl Fn() -> bool,
    scrape: impl Fn() -> String,
) {
    serve_http_with(listener, running, scrape, |_| None);
}

/// [`serve_http`] plus an extra route hook: `extra` sees the request path
/// first and may claim it with a `(status, content_type, body)` response
/// (the standby's `/promote` admin endpoint rides on this).
pub(crate) fn serve_http_with(
    listener: TcpListener,
    running: impl Fn() -> bool,
    scrape: impl Fn() -> String,
    extra: impl Fn(&str) -> Option<(&'static str, &'static str, String)>,
) {
    listener
        .set_nonblocking(true)
        .expect("metrics listener nonblocking");
    while running() {
        match listener.accept() {
            Ok((stream, _)) => handle_http(stream, &scrape, &extra),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_http(
    mut stream: std::net::TcpStream,
    scrape: &impl Fn() -> String,
    extra: &impl Fn(&str) -> Option<(&'static str, &'static str, String)>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    // Read until the end of the request headers (or timeout); only the
    // request line matters for routing.
    let mut request = Vec::new();
    let mut chunk = [0u8; 1024];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => request.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let request_line = request
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let (status, content_type, body) = match extra(path) {
        Some(response) => response,
        None => match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                scrape(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        },
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Bind the metrics listener, returning it with its resolved address
/// (`addr` may use port 0 for an ephemeral port in tests).
pub(crate) fn bind(addr: &str) -> std::io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_text_is_well_formed_and_carries_the_counters() {
        let metrics = ServerMetrics::new();
        metrics.connections.store(2, Ordering::Relaxed);
        metrics.frames.store(100, Ordering::Relaxed);
        let mut total = ReportSnapshot {
            events: 100,
            committed: 95,
            aborted: 5,
            batches: 10,
            processing_seconds: 0.5,
            ..Default::default()
        };
        total.edges.push(morphstream::EdgeReport {
            from: "ledger".into(),
            to: "audit".into(),
            queue_full_waits: 7,
        });
        let text = render_prometheus(&total, &metrics, false);
        assert!(text.contains("morphstream_events_total 100\n"));
        assert!(text.contains("morphstream_committed_total 95\n"));
        assert!(text.contains("morphstream_connections_total 2\n"));
        assert!(text
            .contains("morphstream_edge_queue_full_waits_total{from=\"ledger\",to=\"audit\"} 7\n"));
        // every exposed family carries HELP and TYPE headers
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "stray comment: {line}"
                );
            }
        }
    }

    #[test]
    fn latency_is_a_histogram_and_p50_gauges_are_legacy_gated() {
        let metrics = ServerMetrics::new();
        let mut total = ReportSnapshot::default();
        total.latency.observe_micros(700); // 0.7ms → le="1" bucket
        total.latency.observe_micros(30_000); // 30ms → le="50" bucket

        let text = render_prometheus(&total, &metrics, false);
        assert!(text.contains("# TYPE morphstream_latency_ms histogram\n"));
        assert!(text.contains("morphstream_latency_ms_bucket{le=\"0.5\"} 0\n"));
        assert!(text.contains("morphstream_latency_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("morphstream_latency_ms_bucket{le=\"50\"} 2\n"));
        assert!(text.contains("morphstream_latency_ms_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("morphstream_latency_ms_count 2\n"));
        assert!(!text.contains("morphstream_p50_latency_ms"));
        // the bucket sequence is monotonically non-decreasing
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("morphstream_latency_ms_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));

        let legacy = render_prometheus(&total, &metrics, true);
        assert!(legacy.contains("morphstream_p50_latency_ms"));
        assert!(legacy.contains("morphstream_p95_latency_ms"));
    }

    #[test]
    fn durability_family_appears_once_enabled() {
        let metrics = ServerMetrics::new();
        let total = ReportSnapshot::default();
        let silent = render_prometheus(&total, &metrics, false);
        assert!(!silent.contains("morphstream_checkpoints_total"));

        metrics.durability.record_recovery(17);
        metrics.durability.record_checkpoint(
            4096,
            Duration::from_millis(3),
            Duration::from_secs(1),
        );
        metrics.durability.set_wal(40, 2048, 2, 38);
        let total = metrics.total_with_live(&ReportSnapshot::default());
        assert_eq!(total.durability.checkpoints, 1);
        let text = render_prometheus(&total, &metrics, false);
        assert!(text.contains("morphstream_checkpoints_total 1\n"));
        assert!(text.contains("morphstream_checkpoint_bytes_total 4096\n"));
        assert!(text.contains("morphstream_wal_records_total 40\n"));
        assert!(text.contains("morphstream_recovered_events_total 17\n"));
        assert!(text.contains("morphstream_durable_events 38\n"));
        assert!(text.contains("morphstream_wal_segments 2\n"));
        assert!(text.contains("morphstream_last_checkpoint_seconds 0.003"));
    }

    #[test]
    fn replication_family_appears_once_attached() {
        let metrics = ServerMetrics::new();
        let total = ReportSnapshot::default();
        let silent = render_prometheus(&total, &metrics, false);
        assert!(!silent.contains("morphstream_standby_connected"));

        let stats = Arc::new(ReplicationStats::new());
        stats.set_connected(true);
        stats.set_wal_next(120);
        stats.add_shipped(100, 3200);
        stats.record_ack(100);
        metrics.set_replication(Arc::clone(&stats));
        let text = render_prometheus(&total, &metrics, false);
        assert!(text.contains("morphstream_standby_connected 1\n"));
        assert!(text.contains("morphstream_replication_shipped_records_total 100\n"));
        assert!(text.contains("morphstream_replication_shipped_bytes_total 3200\n"));
        assert!(text.contains("morphstream_replication_lag_records 20\n"));
        assert!(text.contains("morphstream_replication_lag_seconds"));
        assert!(text.contains("morphstream_replication_last_ack_seconds"));
    }

    #[test]
    fn label_escaping_covers_quotes_and_backslashes() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
    }
}
