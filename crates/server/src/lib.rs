//! Network ingress for the MorphStream reproduction: the `morphstream`
//! binary's `serve` and `loadgen` subcommands, as a library so tests can run
//! a server in-process.
//!
//! The server accepts events over TCP in two self-describing wire formats
//! (length-prefixed binary behind an `MSB1` magic, or JSON lines starting
//! with `{` — see [`morphstream_common::protocol`]), decodes them with a
//! [`SocketEventSource`] (an ordinary
//! [`EventSource`](morphstream::EventSource), so sockets and generated
//! workloads feed the engine through the same trait), and pushes them
//! through [`Pipeline::push`](morphstream::Pipeline::push) into a
//! `ledger → audit` dataflow. Back-pressure is end-to-end: a slow operator
//! fills the bounded inter-operator channel, the blocked push holds the
//! ingestion lock, the connection handler stops reading, and TCP flow
//! control throttles the client — memory stays bounded to one punctuation
//! interval plus the channel capacity.
//!
//! Observability is a `/metrics` endpoint in Prometheus text format (live
//! [`ReportSnapshot`](morphstream::ReportSnapshot) of the current session
//! folded into rotated-session totals) plus `/healthz`; shutdown on
//! SIGINT/SIGTERM drains in-flight punctuations (`flush` + `finish`) before
//! exit.
//!
//! With `--replicate-to`, a durable server also ships its WAL to a hot
//! standby (`morphstream standby`, [`StandbyHandle`]) which replays it
//! through the same topology and can be promoted — by SIGUSR1 or its
//! `/promote` endpoint — into a serving primary with digest-identical
//! state; see [`morphstream_replication`].

#![warn(missing_docs)]

pub mod codec;
pub mod loadgen;
pub mod metrics;
pub mod serve;
pub mod signal;
pub mod standby;

pub use codec::{encode_event, write_preamble, SocketEventSource};
pub use loadgen::{run_loadgen, LoadgenOptions, LoadgenReport};
pub use metrics::{render_prometheus, ServerMetrics};
pub use morphstream_replication::{AckMode, ReplicationStats};
pub use serve::{
    build_topology, reference_run, AuditApp, RecoveryReport, ServeOptions, Server, ServerSummary,
};
pub use signal::{
    install_promote_handler, install_shutdown_handler, promote_requested, shutdown_requested,
    trigger_promote, trigger_shutdown,
};
pub use standby::StandbyHandle;
