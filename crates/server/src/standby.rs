//! `morphstream standby`: the server-side wrapper around a replication
//! [`StandbyServer`].
//!
//! [`StandbyHandle::start`] builds the same topology `morphstream serve`
//! would run (from the same [`ServeOptions`], including `--topology` TOML
//! scenarios), hands it to the replication layer as the engine factory, and
//! serves the standby's own observability endpoint: `/metrics` with the
//! replication families, `/healthz`, and the `/promote` admin route that —
//! like SIGUSR1 — asks the process to flip into a serving primary.
//!
//! Promotion ([`StandbyHandle::promote`]) tears down the standby's metrics
//! responder (freeing the port for the promoted server to rebind), stops
//! replication with a final checkpoint, and starts a full [`Server`] on the
//! warm engine via [`Server::start_promoted`] — no recovery pass, no replay.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use morphstream_replication::{
    ReplicaEngine, ReplicationStats, StandbyOptions, StandbyRecovery, StandbyServer,
};

use crate::metrics::{render_prometheus, ServerMetrics};
use crate::serve::{build_topology, ServeOptions, Server};
use crate::signal::trigger_promote;

/// A running hot standby with its own metrics endpoint; promote it with
/// [`StandbyHandle::promote`] or stop it with [`StandbyHandle::shutdown`].
pub struct StandbyHandle {
    standby: StandbyServer,
    opts: ServeOptions,
    metrics_addr: SocketAddr,
    metrics_stop: Arc<AtomicBool>,
    metrics_thread: Option<JoinHandle<()>>,
}

impl StandbyHandle {
    /// Recover local standby state, bind the replication listener on
    /// `listen`, and serve `/metrics` + `/healthz` + `/promote` on
    /// `opts.metrics_addr`. `opts` must carry a `data_dir` (the standby's
    /// own durable directory) and describes the topology the primary
    /// serves — the two sides must build the same dataflow or replayed
    /// digests will diverge.
    pub fn start(opts: ServeOptions, listen: String) -> io::Result<StandbyHandle> {
        let data_dir = opts.data_dir.clone().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "standby requires --data-dir (its own WAL + checkpoint directory)",
            )
        })?;
        let standby_opts = StandbyOptions {
            listen,
            data_dir,
            fsync: opts.fsync,
            checkpoint_interval: opts.checkpoint_interval,
            checkpoint_retain: opts.checkpoint_retain,
        };
        let factory_opts = opts.clone();
        let standby = StandbyServer::start(
            standby_opts,
            Box::new(move || {
                let (engine, ledger, audit) = build_topology(&factory_opts)?;
                Ok(ReplicaEngine {
                    engine,
                    stores: vec![ledger, audit],
                })
            }),
        )?;

        let metrics = Arc::new(ServerMetrics::new());
        metrics.set_replication(standby.stats());
        let (listener, metrics_addr) = crate::metrics::bind(&opts.metrics_addr)?;
        let metrics_stop = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&metrics_stop);
        let scrape_metrics = Arc::clone(&metrics);
        let metrics_thread = std::thread::Builder::new()
            .name("morphstream-standby-metrics".into())
            .spawn(move || {
                let running = {
                    let stop = Arc::clone(&stop);
                    move || !stop.load(Ordering::SeqCst)
                };
                // The standby has no live engine report to splice in: the
                // cached (empty) totals plus the replication atomics are
                // the whole story until promotion.
                let scrape = move || {
                    render_prometheus(&scrape_metrics.cached_total(), &scrape_metrics, false)
                };
                crate::metrics::serve_http_with(listener, running, scrape, |path| {
                    (path == "/promote").then(|| {
                        trigger_promote();
                        (
                            "200 OK",
                            "text/plain; charset=utf-8",
                            "promoting\n".to_string(),
                        )
                    })
                });
            })
            .expect("spawn standby metrics responder");

        Ok(StandbyHandle {
            standby,
            opts,
            metrics_addr,
            metrics_stop,
            metrics_thread: Some(metrics_thread),
        })
    }

    /// Address the replication listener actually bound (resolves port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.standby.listen_addr()
    }

    /// Address the metrics listener actually bound.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Counters behind the `/metrics` replication families.
    pub fn stats(&self) -> Arc<ReplicationStats> {
        self.standby.stats()
    }

    /// Events durably replicated (WAL-appended locally) so far.
    pub fn durable_index(&self) -> u64 {
        self.standby.durable_index()
    }

    /// What startup recovery did, when the data directory held prior state.
    pub fn recovery(&self) -> Option<&StandbyRecovery> {
        self.standby.recovery()
    }

    /// Flip into a serving primary: stop the metrics responder (the
    /// promoted server rebinds the same address), stop replication with a
    /// final checkpoint, and start a full server on the warm engine.
    pub fn promote(mut self) -> io::Result<Server> {
        self.stop_metrics();
        let opts = self.opts.clone();
        let promoted = self.standby.promote()?;
        Server::start_promoted(opts, promoted)
    }

    /// Stop the standby without promoting (local state stays on disk).
    pub fn shutdown(mut self) {
        self.stop_metrics();
        self.standby.shutdown();
    }

    fn stop_metrics(&mut self) {
        self.metrics_stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.metrics_thread.take() {
            let _ = thread.join();
        }
    }
}
