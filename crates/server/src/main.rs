//! The `morphstream` command: `serve` (TCP event ingress), `standby` (hot
//! replica with promotion), `loadgen` (reproducible heavy-traffic client),
//! and `run` (execute a declarative TOML scenario). Flags are parsed by
//! hand — the workspace is offline and four subcommands do not justify
//! vendoring an argument parser.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use morphstream_common::protocol::WireFormat;
use morphstream_durability::FsyncPolicy;
use morphstream_server::{
    install_promote_handler, install_shutdown_handler, promote_requested, run_loadgen,
    shutdown_requested, AckMode, LoadgenOptions, ServeOptions, Server, StandbyHandle,
};

const USAGE: &str = "\
morphstream — transactional stream processing over TCP

USAGE:
    morphstream serve   [--addr HOST:PORT] [--metrics-addr HOST:PORT]
                        [--topology pipeline.toml]
                        [--threads N] [--punctuation N] [--key-space N]
                        [--channel-capacity N] [--concurrent]
                        [--audit-cost-us N] [--session-events N]
                        [--data-dir PATH] [--checkpoint-interval N]
                        [--fsync always|interval|never]
                        [--checkpoint-retain N]
                        [--replicate-to HOST:PORT] [--ack sync|async]
                        [--legacy-latency-gauges]
    morphstream standby --data-dir PATH [--listen HOST:PORT]
                        [--addr HOST:PORT] [--metrics-addr HOST:PORT]
                        [--topology pipeline.toml]
                        [--threads N] [--punctuation N] [--key-space N]
                        [--channel-capacity N] [--concurrent]
                        [--audit-cost-us N] [--session-events N]
                        [--checkpoint-interval N]
                        [--fsync always|interval|never]
                        [--checkpoint-retain N]
    morphstream loadgen [--addr HOST:PORT] [--events N] [--skip N]
                        [--key-space N] [--zipf-theta F]
                        [--transfer-ratio F] [--format binary|json]
                        [--burst N] [--burst-pause-ms N] [--seed N]
                        [--reconnect] [--json]
    morphstream run     <pipeline.toml> [--threads N] [--concurrent]
                        [--serial] [--json]
    morphstream run     --list

serve accepts events on --addr (length-prefixed binary after an MSB1 magic,
or JSON lines; auto-detected per connection), serves Prometheus metrics on
http://<metrics-addr>/metrics and liveness on /healthz, and drains in-flight
punctuations on SIGINT/SIGTERM before exiting. With --data-dir, every event
is written ahead to a WAL and state is checkpointed incrementally every
--checkpoint-interval events (0 = only at startup recovery and shutdown);
after a crash, restarting with the same --data-dir restores the latest
checkpoint chain and replays the WAL tail to digest-identical state. With
--topology, serve runs a declarative TOML dataflow (one entry stage; wire
events enter there, terminal outputs are digested) instead of the builtin
ledger -> audit chain — durability and recovery apply unchanged. With
--replicate-to, every WAL record is also shipped to a standby's replication
listener; --ack sync makes each ingest chunk wait for the standby's durable
acknowledgement (--ack async, the default, lets it trail).

standby is the other end of --replicate-to: it accepts the primary's stream
on --listen, persists it into its own --data-dir, and replays it through
the same topology the primary serves (pass the same --topology / workload
flags on both sides) so its state digests match the primary's at every
punctuation. /metrics on --metrics-addr exposes the replication lag;
SIGUSR1 or POST /promote promotes it into a full serving primary (events on
--addr) with no recovery pass.

loadgen connects to a running server and sends a deterministic Zipf-skewed
Streaming Ledger stream in bursts, reporting the achieved rate and the
socket write-latency tail (which rises when server back-pressure reaches the
client through TCP flow control). --skip N generates but does not send the
first N events — resume a deterministic stream past what a recovered server
already ingested (its morphstream_durable_events gauge). --reconnect
retries failed connects and mid-stream write errors with capped backoff,
surviving a failover window.

run loads a declarative scenario file ([[feeds]], [[stages]], [topology]),
merges the deterministic feeds by timestamp, drives the topology to
completion, and prints the final state digest (the equivalence witness CI
compares across runs) plus the engine report. --threads / --concurrent /
--serial override the file's runtime knobs; --json emits the full report as
one JSON object. run --list prints the registry: every operator, route, and
feed source a scenario file can name, with their accepted config keys.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("standby") => cmd_standby(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Pull the value of `--flag VALUE` out of `args`, parsed with `parse`.
fn flag_value<T>(
    args: &[String],
    flag: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Option<T>, String> {
    let mut found = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            let raw = iter
                .next()
                .ok_or_else(|| format!("{flag} requires a value"))?;
            found = Some(parse(raw).ok_or_else(|| format!("invalid value {raw:?} for {flag}"))?);
        }
    }
    Ok(found)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn known_flags(args: &[String], known: &[(&str, bool)]) -> Result<(), String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match known.iter().find(|(name, _)| name == arg) {
            Some((_, takes_value)) => {
                if *takes_value {
                    iter.next();
                }
            }
            None => return Err(format!("unknown flag {arg:?}")),
        }
    }
    Ok(())
}

/// Flags `serve` and `standby` share: a name + takes-value pair per flag
/// for [`known_flags`], applied by [`apply_serve_flags`].
const SERVE_FLAGS: &[(&str, bool)] = &[
    ("--addr", true),
    ("--metrics-addr", true),
    ("--topology", true),
    ("--threads", true),
    ("--punctuation", true),
    ("--key-space", true),
    ("--channel-capacity", true),
    ("--concurrent", false),
    ("--audit-cost-us", true),
    ("--session-events", true),
    ("--data-dir", true),
    ("--checkpoint-interval", true),
    ("--fsync", true),
    ("--checkpoint-retain", true),
];

/// Apply the shared `serve`/`standby` flags onto `opts`.
fn apply_serve_flags(args: &[String], opts: &mut ServeOptions) -> Result<(), String> {
    if let Some(addr) = flag_value(args, "--addr", |s| Some(s.to_string()))? {
        opts.event_addr = addr;
    }
    if let Some(addr) = flag_value(args, "--metrics-addr", |s| Some(s.to_string()))? {
        opts.metrics_addr = addr;
    }
    if let Some(path) = flag_value(args, "--topology", |s| Some(PathBuf::from(s)))? {
        opts.topology = Some(path);
    }
    if let Some(n) = flag_value(args, "--threads", |s| s.parse::<usize>().ok())? {
        opts.threads = n.max(1);
    }
    if let Some(n) = flag_value(args, "--punctuation", |s| s.parse::<usize>().ok())? {
        opts.workload.txns_per_batch = n.max(1);
    }
    if let Some(n) = flag_value(args, "--key-space", |s| s.parse::<u64>().ok())? {
        opts.workload.key_space = n.max(1);
    }
    if let Some(n) = flag_value(args, "--channel-capacity", |s| s.parse::<usize>().ok())? {
        opts.channel_capacity = n.max(1);
    }
    opts.concurrent = has_flag(args, "--concurrent");
    if let Some(n) = flag_value(args, "--audit-cost-us", |s| s.parse::<u64>().ok())? {
        opts.audit_cost_us = n;
    }
    if let Some(n) = flag_value(args, "--session-events", |s| s.parse::<u64>().ok())? {
        opts.session_events = n;
    }
    if let Some(dir) = flag_value(args, "--data-dir", |s| Some(std::path::PathBuf::from(s)))? {
        opts.data_dir = Some(dir);
    }
    if let Some(n) = flag_value(args, "--checkpoint-interval", |s| s.parse::<u64>().ok())? {
        opts.checkpoint_interval = n;
    }
    if let Some(policy) = flag_value(args, "--fsync", FsyncPolicy::from_name)? {
        opts.fsync = policy;
    }
    if let Some(n) = flag_value(args, "--checkpoint-retain", |s| s.parse::<usize>().ok())? {
        opts.checkpoint_retain = n;
    }
    Ok(())
}

/// Poll for shutdown, drain the server, and print the summary + digest
/// witness lines. Shared by `serve` and by `standby` once promoted — the
/// digest line format is identical so failover smoke tests can compare a
/// promoted run against an uninterrupted reference run.
fn serve_until_shutdown(server: Server) -> ExitCode {
    while !shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("morphstream serve: shutdown requested, draining");
    let summary = server.shutdown();
    println!(
        "morphstream serve: drained; {} events ({} committed, {} aborted) over {} connections, {} frames, {} decode errors",
        summary.snapshot.events,
        summary.snapshot.committed,
        summary.snapshot.aborted,
        summary.connections,
        summary.frames,
        summary.decode_errors,
    );
    // Machine-checkable equivalence witness: the crash-recovery and
    // replication smoke tests compare this line between a
    // killed-and-recovered (or killed-and-promoted) run and an
    // uninterrupted reference run of the same stream.
    println!(
        "morphstream serve: digests ledger={:016x} audit={:016x} outputs={:016x}",
        summary.ledger_digest, summary.audit_digest, summary.output_digest,
    );
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<ServeOptions, String> {
        let mut known = SERVE_FLAGS.to_vec();
        known.extend_from_slice(&[
            ("--replicate-to", true),
            ("--ack", true),
            ("--legacy-latency-gauges", false),
        ]);
        known_flags(args, &known)?;
        let mut opts = ServeOptions {
            event_addr: "127.0.0.1:7878".into(),
            metrics_addr: "127.0.0.1:9878".into(),
            // A session per ~10M events keeps the in-engine report bounded
            // on an unbounded stream while staying invisible at smoke scale.
            session_events: 10_000_000,
            ..ServeOptions::default()
        };
        apply_serve_flags(args, &mut opts)?;
        if let Some(target) = flag_value(args, "--replicate-to", |s| Some(s.to_string()))? {
            opts.replicate_to = Some(target);
        }
        if let Some(ack) = flag_value(args, "--ack", AckMode::from_name)? {
            opts.ack = ack;
        }
        if opts.replicate_to.is_some() && opts.data_dir.is_none() {
            return Err("--replicate-to requires --data-dir (the WAL is what ships)".into());
        }
        opts.legacy_latency_gauges = has_flag(args, "--legacy-latency-gauges");
        Ok(opts)
    })();
    let opts = match parsed {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("morphstream serve: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    install_shutdown_handler();
    let replicating = opts.replicate_to.clone();
    let ack = opts.ack;
    let server = match Server::start(opts) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("morphstream serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(recovery) = server.recovery() {
        println!("morphstream serve: recovered {}", recovery.to_json());
    }
    println!(
        "morphstream serve: events on {}  metrics on http://{}/metrics",
        server.event_addr(),
        server.metrics_addr()
    );
    if let Some(target) = replicating {
        println!(
            "morphstream serve: replicating to {target} (ack {})",
            ack.name()
        );
    }
    serve_until_shutdown(server)
}

fn cmd_standby(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(ServeOptions, String), String> {
        let mut known = SERVE_FLAGS.to_vec();
        known.push(("--listen", true));
        known_flags(args, &known)?;
        let mut opts = ServeOptions {
            event_addr: "127.0.0.1:7878".into(),
            metrics_addr: "127.0.0.1:9879".into(),
            session_events: 10_000_000,
            ..ServeOptions::default()
        };
        apply_serve_flags(args, &mut opts)?;
        if opts.data_dir.is_none() {
            return Err("standby requires --data-dir (its own WAL + checkpoint directory)".into());
        }
        let listen = flag_value(args, "--listen", |s| Some(s.to_string()))?
            .unwrap_or_else(|| "127.0.0.1:7879".into());
        Ok((opts, listen))
    })();
    let (opts, listen) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("morphstream standby: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    install_shutdown_handler();
    install_promote_handler();
    let standby = match StandbyHandle::start(opts, listen) {
        Ok(standby) => standby,
        Err(e) => {
            eprintln!("morphstream standby: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(recovery) = standby.recovery() {
        println!(
            "morphstream standby: recovered checkpoint_id={:?} replayed={} torn_tail={}",
            recovery.checkpoint_id, recovery.replayed_events, recovery.torn_tail
        );
    }
    println!(
        "morphstream standby: replication on {}  metrics on http://{}/metrics  (promote: SIGUSR1 or POST /promote)",
        standby.listen_addr(),
        standby.metrics_addr()
    );
    loop {
        if shutdown_requested() {
            println!(
                "morphstream standby: shutdown requested at durable index {}",
                standby.durable_index()
            );
            standby.shutdown();
            return ExitCode::SUCCESS;
        }
        if promote_requested() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(
        "morphstream standby: promoting at durable index {}",
        standby.durable_index()
    );
    let server = match standby.promote() {
        Ok(server) => server,
        Err(e) => {
            eprintln!("morphstream standby: promotion failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "morphstream standby: promoted; events on {}  metrics on http://{}/metrics",
        server.event_addr(),
        server.metrics_addr()
    );
    serve_until_shutdown(server)
}

fn cmd_run(args: &[String]) -> ExitCode {
    if has_flag(args, "--list") {
        print!("{}", morphstream_dataflow::listing());
        return ExitCode::SUCCESS;
    }
    let parsed = (|| -> Result<(PathBuf, morphstream_dataflow::LoadOverrides, bool), String> {
        let mut overrides = morphstream_dataflow::LoadOverrides::default();
        let mut json = false;
        let mut path: Option<PathBuf> = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--threads" => {
                    let raw = iter
                        .next()
                        .ok_or_else(|| "--threads requires a value".to_string())?;
                    let n = raw
                        .parse::<usize>()
                        .map_err(|_| format!("invalid value {raw:?} for --threads"))?;
                    overrides.threads = Some(n.max(1));
                }
                "--concurrent" => overrides.concurrent = Some(true),
                "--serial" => overrides.concurrent = Some(false),
                "--json" => json = true,
                flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
                file => {
                    if path.replace(PathBuf::from(file)).is_some() {
                        return Err("run takes exactly one scenario file".into());
                    }
                }
            }
        }
        if has_flag(args, "--concurrent") && has_flag(args, "--serial") {
            return Err("--concurrent and --serial are mutually exclusive".into());
        }
        let path = path.ok_or_else(|| "run requires a scenario file (or --list)".to_string())?;
        Ok((path, overrides, json))
    })();
    let (path, overrides, json) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("morphstream run: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match morphstream_dataflow::run_file(&path, &overrides) {
        Ok(outcome) => {
            if json {
                println!("{}", outcome.to_json());
            } else {
                println!("morphstream run: {}", outcome.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("morphstream run: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_loadgen(args: &[String]) -> ExitCode {
    let parsed = (|| -> Result<(LoadgenOptions, bool), String> {
        known_flags(
            args,
            &[
                ("--addr", true),
                ("--events", true),
                ("--skip", true),
                ("--key-space", true),
                ("--zipf-theta", true),
                ("--transfer-ratio", true),
                ("--format", true),
                ("--burst", true),
                ("--burst-pause-ms", true),
                ("--seed", true),
                ("--reconnect", false),
                ("--json", false),
            ],
        )?;
        let mut opts = LoadgenOptions::default();
        if let Some(addr) = flag_value(args, "--addr", |s| Some(s.to_string()))? {
            opts.addr = addr;
        }
        if let Some(n) = flag_value(args, "--events", |s| s.parse::<usize>().ok())? {
            opts.events = n;
        }
        if let Some(n) = flag_value(args, "--skip", |s| s.parse::<usize>().ok())? {
            opts.skip = n;
        }
        if let Some(n) = flag_value(args, "--key-space", |s| s.parse::<u64>().ok())? {
            opts.key_space = n.max(1);
        }
        if let Some(f) = flag_value(args, "--zipf-theta", |s| s.parse::<f64>().ok())? {
            opts.zipf_theta = f;
        }
        if let Some(f) = flag_value(args, "--transfer-ratio", |s| s.parse::<f64>().ok())? {
            opts.transfer_ratio = f;
        }
        if let Some(format) = flag_value(args, "--format", WireFormat::from_name)? {
            opts.format = format;
        }
        if let Some(n) = flag_value(args, "--burst", |s| s.parse::<usize>().ok())? {
            opts.burst = n.max(1);
        }
        if let Some(n) = flag_value(args, "--burst-pause-ms", |s| s.parse::<u64>().ok())? {
            opts.burst_pause = Duration::from_millis(n);
        }
        if let Some(n) = flag_value(args, "--seed", |s| s.parse::<u64>().ok())? {
            opts.seed = n;
        }
        opts.reconnect = has_flag(args, "--reconnect");
        Ok((opts, has_flag(args, "--json")))
    })();
    let (opts, json) = match parsed {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("morphstream loadgen: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run_loadgen(&opts) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                println!("morphstream loadgen: {}", report.render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("morphstream loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
