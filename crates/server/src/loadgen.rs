//! `morphstream loadgen`: a reproducible heavy-traffic client.
//!
//! Generates the Streaming Ledger event stream (millions of distinct keys,
//! Zipf-skewed via `common::zipf`, deterministic per seed), encodes it in
//! either wire format, and sends it in bursts — `burst` events back to back,
//! then a pause — so arrival is bursty rather than a smooth drip. Every
//! burst's socket write is timed: under server back-pressure the write
//! blocks (TCP flow control reaching the client), so the write-latency tail
//! *is* the back-pressure signal, reported alongside the achieved rate.
//!
//! `--reconnect` makes the client survive a failover window: failed
//! connects and mid-stream write errors are retried with capped exponential
//! backoff against the same address, re-sending the wire preamble and the
//! interrupted burst on the new connection. Events of that burst which the
//! old server had already ingested are sent again — delivery under
//! reconnection is at-least-once, which is why failover flows restart the
//! client with `--skip <morphstream_durable_events>` instead.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use morphstream_common::json::JsonObject;
use morphstream_common::metrics::LatencyRecorder;
use morphstream_common::protocol::WireFormat;
use morphstream_common::WorkloadConfig;
use morphstream_workloads::{EventSource, SlEvent, StreamingLedgerApp};

use crate::codec::{encode_event, write_preamble};

/// Load-generation knobs; [`Default`] is the documented smoke profile.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server event address to connect to.
    pub addr: String,
    /// Total events to send.
    pub events: usize,
    /// Generate but do not send the first N events of the deterministic
    /// stream — resume past what a recovered server already ingested.
    pub skip: usize,
    /// Distinct account keys the stream draws from.
    pub key_space: u64,
    /// Zipf skew of key popularity (0.0 = uniform).
    pub zipf_theta: f64,
    /// Fraction of transfer (vs deposit) events.
    pub transfer_ratio: f64,
    /// Wire format to send in.
    pub format: WireFormat,
    /// Events per burst (written back to back in one buffered flush).
    pub burst: usize,
    /// Pause between bursts.
    pub burst_pause: Duration,
    /// Workload generator seed, for reproducible streams.
    pub seed: u64,
    /// Retry failed connects and mid-stream write errors with capped
    /// exponential backoff instead of giving up.
    pub reconnect: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            events: 100_000,
            skip: 0,
            key_space: 2_000_000,
            zipf_theta: 0.6,
            transfer_ratio: 0.5,
            format: WireFormat::Binary,
            burst: 1024,
            burst_pause: Duration::ZERO,
            seed: 0xD5EE_D001,
            reconnect: false,
        }
    }
}

/// Consecutive failed attempts before `--reconnect` gives up.
const RECONNECT_ATTEMPTS: u32 = 20;
/// First reconnect backoff; doubles per failure up to the cap.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(50);
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// What the run achieved, as observed from the client side.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Events actually sent.
    pub sent: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Median per-burst socket write latency.
    pub p50_write_ms: f64,
    /// 95th-percentile per-burst socket write latency.
    pub p95_write_ms: f64,
    /// 99th-percentile per-burst socket write latency (the back-pressure
    /// tail).
    pub p99_write_ms: f64,
    /// Times the connection was (re-)established after a failure — failed
    /// connect attempts retried plus mid-stream reconnections. Always 0
    /// without `--reconnect`.
    pub reconnects: u64,
}

impl LoadgenReport {
    /// Achieved send rate in thousands of events per second.
    pub fn k_events_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.sent as f64 / self.elapsed.as_secs_f64() / 1000.0
        }
    }

    /// One JSON object, for `BENCH_serve_smoke.json`-style artifacts.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .unsigned("sent", self.sent as u64)
            .fixed("elapsed_s", self.elapsed.as_secs_f64(), 4)
            .fixed("k_events_per_second", self.k_events_per_second(), 3)
            .fixed("p50_write_ms", self.p50_write_ms, 4)
            .fixed("p95_write_ms", self.p95_write_ms, 4)
            .fixed("p99_write_ms", self.p99_write_ms, 4)
            .unsigned("reconnects", self.reconnects)
            .build()
    }

    /// Human-readable one-paragraph summary.
    pub fn render(&self) -> String {
        let mut line = format!(
            "sent {} events in {:.2}s ({:.1}k events/s); burst write latency p50 {:.3}ms  p95 {:.3}ms  p99 {:.3}ms",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.k_events_per_second(),
            self.p50_write_ms,
            self.p95_write_ms,
            self.p99_write_ms,
        );
        if self.reconnects > 0 {
            line.push_str(&format!("; {} reconnects", self.reconnects));
        }
        line
    }
}

/// Generate and send the stream; returns the client-side report.
pub fn run_loadgen(opts: &LoadgenOptions) -> io::Result<LoadgenReport> {
    let config = WorkloadConfig::streaming_ledger()
        .with_zipf_theta(opts.zipf_theta)
        .with_key_space(opts.key_space)
        .with_seed(opts.seed);
    let mut source = StreamingLedgerApp::source(&config, opts.events, opts.transfer_ratio);

    // Skip by generating and discarding: the generator is deterministic per
    // seed, so event `skip` here is byte-identical to event `skip` of a
    // run that sent the whole stream.
    let mut discard: Vec<SlEvent> = Vec::new();
    let mut to_skip = opts.skip.min(opts.events);
    while to_skip > 0 {
        discard.clear();
        let n = source.next_batch(to_skip.min(4096), &mut discard);
        if n == 0 {
            break;
        }
        to_skip -= n;
    }

    let mut reconnects = 0u64;
    let mut stream = establish(opts, &mut reconnects)?;

    let burst = opts.burst.max(1);
    let mut events: Vec<SlEvent> = Vec::with_capacity(burst);
    let mut wire: Vec<u8> = Vec::with_capacity(burst * 32);
    let mut scratch: Vec<u8> = Vec::new();

    let mut writes = LatencyRecorder::new();
    let mut sent = 0usize;
    let started = Instant::now();
    loop {
        events.clear();
        if source.next_batch(burst, &mut events) == 0 {
            break;
        }
        wire.clear();
        for event in &events {
            encode_event(event, opts.format, &mut scratch, &mut wire)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        let mut burst_failures = 0u32;
        loop {
            let write_started = Instant::now();
            match stream.write_all(&wire) {
                Ok(()) => {
                    writes.record(write_started.elapsed());
                    break;
                }
                Err(e) if opts.reconnect && burst_failures < RECONNECT_ATTEMPTS => {
                    burst_failures += 1;
                    // The interrupted burst is re-sent whole on the new
                    // connection: at-least-once across the failure.
                    eprintln!("morphstream loadgen: write failed ({e}), reconnecting");
                    reconnects += 1;
                    stream = establish(opts, &mut reconnects)?;
                }
                Err(e) => return Err(e),
            }
        }
        sent += events.len();
        if !opts.burst_pause.is_zero() {
            std::thread::sleep(opts.burst_pause);
        }
    }
    stream.flush()?;
    // Half-close tells the server the stream is complete; it keeps
    // processing everything already buffered.
    stream.shutdown(std::net::Shutdown::Write)?;
    let elapsed = started.elapsed();

    let pct = |recorder: &mut LatencyRecorder, p: f64| {
        recorder
            .percentile(p)
            .map(|d| d.as_secs_f64() * 1000.0)
            .unwrap_or(0.0)
    };
    Ok(LoadgenReport {
        sent,
        elapsed,
        p50_write_ms: pct(&mut writes, 50.0),
        p95_write_ms: pct(&mut writes, 95.0),
        p99_write_ms: pct(&mut writes, 99.0),
        reconnects,
    })
}

/// Connect and send the wire-format preamble. With `--reconnect`, failed
/// connect attempts are retried with capped exponential backoff (surviving
/// the window where a promoted standby is not yet listening); each retry
/// counts toward the report's `reconnects`.
fn establish(opts: &LoadgenOptions, reconnects: &mut u64) -> io::Result<TcpStream> {
    let mut backoff = RECONNECT_BACKOFF;
    let mut failures = 0u32;
    loop {
        let attempt = TcpStream::connect(&opts.addr).and_then(|stream| {
            stream.set_nodelay(true)?;
            let mut preamble = Vec::new();
            write_preamble(opts.format, &mut preamble);
            (&stream).write_all(&preamble)?;
            Ok(stream)
        });
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                failures += 1;
                if !opts.reconnect || failures >= RECONNECT_ATTEMPTS {
                    return Err(e);
                }
                *reconnects += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(RECONNECT_BACKOFF_CAP);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    #[test]
    fn reconnect_survives_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: accept and drop immediately — the client's
            // writes hit a reset mid-stream.
            let (first, _) = listener.accept().expect("accept first");
            drop(first);
            // Second connection: drain to EOF like a healthy server.
            let (mut second, _) = listener.accept().expect("accept second");
            let mut sink = Vec::new();
            second.read_to_end(&mut sink).expect("drain");
            sink.len()
        });

        let report = run_loadgen(&LoadgenOptions {
            addr: addr.to_string(),
            events: 20_000,
            burst: 256,
            reconnect: true,
            ..LoadgenOptions::default()
        })
        .expect("loadgen with --reconnect succeeds across the drop");
        assert_eq!(report.sent, 20_000);
        assert!(report.reconnects >= 1, "no reconnect was recorded");
        assert!(report.to_json().contains("\"reconnects\":"));
        assert!(report.render().contains("reconnects"));

        let drained = server.join().expect("server thread");
        assert!(drained > 0, "second connection saw no data");
    }

    #[test]
    fn without_reconnect_a_dead_address_fails_fast() {
        // Bind then drop: the port is (momentarily) closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let err = run_loadgen(&LoadgenOptions {
            addr,
            events: 16,
            ..LoadgenOptions::default()
        });
        assert!(err.is_err());
    }
}
