//! The server-side socket decoder: an [`EventSource`] over a byte stream.
//!
//! [`SocketEventSource`] wraps any [`Read`] (a [`TcpStream`] in production,
//! an in-memory cursor in tests), auto-detects the wire format from the
//! first byte of the connection (`{` → JSON lines, otherwise the
//! [`BINARY_MAGIC`] preamble must follow), and decodes complete events
//! incrementally. Because it implements the same [`EventSource`] trait as
//! the generated workload sources, the server feeds the engine through the
//! exact ingestion loop the benchmarks use — this is the satellite "a
//! partitioned Kafka-like source can later slot in without touching the
//! engine" seam.
//!
//! Buffered bytes are bounded: the decoder only reads from the socket when
//! no complete event is parseable, so at most one partial frame plus one
//! read chunk (4 KiB) is ever retained. Everything upstream of that sits in
//! the kernel socket buffer, which is where TCP flow control takes over —
//! the end of the back-pressure chain described in the crate docs.

use std::io::{self, Read};
use std::marker::PhantomData;
use std::net::TcpStream;

use morphstream::EventSource;
use morphstream_common::protocol::{
    ProtocolError, WireCodec, WireFormat, BINARY_MAGIC, MAX_FRAME_LEN,
};

/// Bytes pulled from the underlying stream per read call.
const READ_CHUNK: usize = 4096;

/// Incremental event decoder over a byte stream; see the module docs.
///
/// The generic `R` is a [`TcpStream`] in the server; tests substitute an
/// in-memory reader. Decoding is *total*: malformed input closes the source
/// with a [`ProtocolError`] retrievable via [`SocketEventSource::error`],
/// never a panic.
pub struct SocketEventSource<T, R = TcpStream> {
    reader: R,
    /// Received bytes not yet parsed; `start` is the parse offset.
    pending: Vec<u8>,
    start: usize,
    format: Option<WireFormat>,
    error: Option<ProtocolError>,
    eof: bool,
    frames: u64,
    _event: PhantomData<fn() -> T>,
}

impl<T: WireCodec, R: Read> SocketEventSource<T, R> {
    /// Decode events of type `T` from `reader`. The wire format is detected
    /// from the first byte received.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            pending: Vec::with_capacity(READ_CHUNK),
            start: 0,
            format: None,
            error: None,
            eof: false,
            frames: 0,
            _event: PhantomData,
        }
    }

    /// The detected wire format (`None` until the first byte arrives).
    pub fn format(&self) -> Option<WireFormat> {
        self.format
    }

    /// Complete frames decoded so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// True while the stream may still yield events. `false` after a clean
    /// EOF or a protocol error. A [`SocketEventSource::next_batch`] that
    /// returns `0` while this is still `true` means a read timeout elapsed
    /// with no data — the caller's chance to flush idle batches and poll its
    /// shutdown flag.
    pub fn is_open(&self) -> bool {
        !self.eof && self.error.is_none()
    }

    /// The protocol error that closed the stream, if any.
    pub fn error(&self) -> Option<&ProtocolError> {
        self.error.as_ref()
    }

    fn unparsed(&self) -> &[u8] {
        &self.pending[self.start..]
    }

    /// Drop consumed bytes once the prefix gets large, keeping the buffer
    /// bounded without an O(n) shift per event.
    fn compact(&mut self) {
        if self.start > READ_CHUNK {
            self.pending.drain(..self.start);
            self.start = 0;
        }
    }

    fn fail(&mut self, e: ProtocolError) {
        self.error = Some(e);
    }

    /// Parse one complete event from the buffered bytes, if available.
    /// `Ok(None)` means "need more bytes" (or EOF / error already latched).
    fn parse_one(&mut self) -> Option<T> {
        if self.error.is_some() {
            return None;
        }
        let format = match self.format {
            Some(f) => f,
            None => {
                let first = *self.unparsed().first()?;
                let f = if first == b'{' {
                    WireFormat::JsonLines
                } else {
                    WireFormat::Binary
                };
                self.format = Some(f);
                f
            }
        };
        match format {
            WireFormat::Binary => self.parse_binary(),
            WireFormat::JsonLines => self.parse_json_line(),
        }
    }

    fn parse_binary(&mut self) -> Option<T> {
        // Consume the connection preamble before the first frame.
        if self.frames == 0 && self.start == 0 {
            let bytes = self.unparsed();
            if bytes.len() < BINARY_MAGIC.len() {
                if bytes != &BINARY_MAGIC[..bytes.len()] {
                    self.fail(ProtocolError::Malformed(
                        "connection does not start with the MSB1 magic or '{'".into(),
                    ));
                }
                return None;
            }
            if bytes[..4] != BINARY_MAGIC {
                self.fail(ProtocolError::Malformed(
                    "connection does not start with the MSB1 magic or '{'".into(),
                ));
                return None;
            }
            self.start += BINARY_MAGIC.len();
        }
        let bytes = self.unparsed();
        if bytes.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            self.fail(ProtocolError::Oversized { len });
            return None;
        }
        if bytes.len() < 4 + len {
            return None;
        }
        let payload = &bytes[4..4 + len];
        match T::decode_binary(payload) {
            Ok(event) => {
                self.start += 4 + len;
                self.frames += 1;
                self.compact();
                Some(event)
            }
            Err(e) => {
                self.fail(e);
                None
            }
        }
    }

    fn parse_json_line(&mut self) -> Option<T> {
        let bytes = self.unparsed();
        let newline = bytes.iter().position(|&b| b == b'\n')?;
        let line = &bytes[..newline];
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        let parsed = match std::str::from_utf8(line) {
            Ok(text) => {
                let text = text.trim();
                if text.is_empty() {
                    // Blank line between events: skip it, try again.
                    self.start += newline + 1;
                    self.compact();
                    return self.parse_one();
                }
                T::decode_json(text)
            }
            Err(_) => Err(ProtocolError::Malformed(
                "JSON line is not valid UTF-8".into(),
            )),
        };
        match parsed {
            Ok(event) => {
                self.start += newline + 1;
                self.frames += 1;
                self.compact();
                Some(event)
            }
            Err(e) => {
                self.fail(e);
                None
            }
        }
    }
}

impl<T: WireCodec, R: Read> EventSource for SocketEventSource<T, R> {
    type Event = T;

    /// Append up to `max` decoded events. Returns `0` at clean EOF, on a
    /// protocol error (see [`SocketEventSource::error`]), or — when the
    /// underlying stream has a read timeout — after a quiet interval with no
    /// data, distinguishable via [`SocketEventSource::is_open`]. Only reads
    /// from the stream when no buffered event is parseable, so one call never
    /// buffers more than a frame beyond what it returns.
    fn next_batch(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        let mut produced = 0;
        loop {
            while produced < max {
                match self.parse_one() {
                    Some(event) => {
                        out.push(event);
                        produced += 1;
                    }
                    None => break,
                }
            }
            if produced > 0 || self.eof || self.error.is_some() {
                return produced;
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if !self.unparsed().is_empty() {
                        // EOF mid-frame: the client died between length
                        // prefix and payload (or mid-line).
                        self.fail(ProtocolError::Truncated);
                    }
                    return 0;
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return 0;
                }
                Err(e) => {
                    self.fail(ProtocolError::Io(e));
                    return 0;
                }
            }
        }
    }
}

/// Encode one event in `format` onto the wire: a length-prefixed frame, or a
/// JSON line. The binary connection preamble ([`BINARY_MAGIC`]) is written
/// separately, once, by the client — see [`write_preamble`].
pub fn encode_event<T: WireCodec>(
    event: &T,
    format: WireFormat,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> Result<(), ProtocolError> {
    match format {
        WireFormat::Binary => {
            scratch.clear();
            event.encode_binary(scratch);
            if scratch.len() > MAX_FRAME_LEN {
                return Err(ProtocolError::Oversized { len: scratch.len() });
            }
            out.extend_from_slice(&(scratch.len() as u32).to_le_bytes());
            out.extend_from_slice(scratch);
        }
        WireFormat::JsonLines => {
            out.extend_from_slice(event.encode_json().as_bytes());
            out.push(b'\n');
        }
    }
    Ok(())
}

/// Append the connection preamble for `format` (the binary magic; nothing
/// for JSON lines, whose first `{` is self-describing).
pub fn write_preamble(format: WireFormat, out: &mut Vec<u8>) {
    if format == WireFormat::Binary {
        out.extend_from_slice(&BINARY_MAGIC);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_workloads::SlEvent;

    fn events() -> Vec<SlEvent> {
        vec![
            SlEvent::Deposit {
                account: 1,
                amount: 50,
            },
            SlEvent::Transfer {
                from: 2,
                to: 3,
                amount: 7,
            },
            // Largest JSON-safe integer, so the fixture crosses both wire
            // formats (full 64-bit range is covered by the wire.rs tests).
            SlEvent::Deposit {
                account: (1 << 53) - 1,
                amount: -1,
            },
        ]
    }

    fn encode_stream(events: &[SlEvent], format: WireFormat) -> Vec<u8> {
        let mut wire = Vec::new();
        write_preamble(format, &mut wire);
        let mut scratch = Vec::new();
        for e in events {
            encode_event(e, format, &mut scratch, &mut wire).unwrap();
        }
        wire
    }

    fn drain<R: Read>(source: &mut SocketEventSource<SlEvent, R>) -> Vec<SlEvent> {
        let mut out = Vec::new();
        while source.next_batch(2, &mut out) > 0 {}
        out
    }

    #[test]
    fn decodes_binary_and_json_streams_with_format_autodetect() {
        for format in [WireFormat::Binary, WireFormat::JsonLines] {
            let wire = encode_stream(&events(), format);
            let mut source = SocketEventSource::new(io::Cursor::new(wire));
            let decoded = drain(&mut source);
            assert_eq!(decoded, events(), "{format:?}");
            assert_eq!(source.format(), Some(format));
            assert_eq!(source.frames(), 3);
            assert!(!source.is_open());
            assert!(source.error().is_none(), "clean EOF is not an error");
        }
    }

    #[test]
    fn resumes_across_arbitrarily_split_reads() {
        // A reader that returns one byte at a time exercises every partial
        // state of the incremental parser.
        struct OneByte(io::Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let wire = encode_stream(&events(), WireFormat::Binary);
        let mut source = SocketEventSource::new(OneByte(io::Cursor::new(wire)));
        assert_eq!(drain(&mut source), events());
    }

    #[test]
    fn bad_magic_and_midframe_eof_close_with_an_error() {
        let mut source: SocketEventSource<SlEvent, _> =
            SocketEventSource::new(io::Cursor::new(b"XXXX".to_vec()));
        assert_eq!(source.next_batch(8, &mut Vec::new()), 0);
        assert!(matches!(source.error(), Some(ProtocolError::Malformed(_))));

        // Magic + length prefix announcing more bytes than the stream holds.
        let mut wire = Vec::new();
        wire.extend_from_slice(&BINARY_MAGIC);
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut source: SocketEventSource<SlEvent, _> =
            SocketEventSource::new(io::Cursor::new(wire));
        assert_eq!(source.next_batch(8, &mut Vec::new()), 0);
        assert!(matches!(source.error(), Some(ProtocolError::Truncated)));
        assert!(!source.is_open());
    }

    #[test]
    fn malformed_json_line_closes_with_an_error() {
        let wire = b"{\"type\":\"deposit\",\"account\":1,\"amount\":5}\nnot json\n".to_vec();
        let mut source: SocketEventSource<SlEvent, _> =
            SocketEventSource::new(io::Cursor::new(wire));
        let mut out = Vec::new();
        assert_eq!(source.next_batch(8, &mut out), 1);
        assert_eq!(source.next_batch(8, &mut out), 0);
        assert!(source.error().is_some());
    }
}
