//! The long-running server: TCP event ingress over a two-operator dataflow.
//!
//! `morphstream serve` runs the Streaming Ledger workload as a
//! `ledger → audit` [`Topology`]: the entry operator executes the
//! deposits/transfers, and a downstream `audit` operator tallies commit
//! outcomes into its own table (its per-event cost is the configurable
//! "slow terminal operator" of the back-pressure story). Each accepted
//! connection decodes events through a [`SocketEventSource`] and pushes them
//! through [`Pipeline::push`](morphstream::Pipeline::push), so the PR 5
//! back-pressure chain extends to the socket: a slow operator fills the
//! bounded inter-operator channel, the blocked push holds the ingestion
//! lock, the handler stops reading, the kernel socket buffer fills, and TCP
//! flow control throttles the client. Memory stays bounded to one
//! punctuation interval plus the channel capacity.
//!
//! Sessions rotate after a configurable number of events so the in-engine
//! [`RunReport`](morphstream::RunReport) never grows without bound; each
//! finished session's [`ReportSnapshot`] folds into the lifetime totals the
//! `/metrics` endpoint serves (see [`crate::metrics`]).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use morphstream::storage::StateStore;
use morphstream::{
    udfs, EngineConfig, EventSource, FnSink, Pipeline, ReportSnapshot, StreamApp, Topology,
    TopologyBuilder, TopologyConfig, TxnBuilder, TxnEngine, TxnOutcome, WorkloadConfig,
};
use morphstream_common::hash::Fnv1a;
use morphstream_common::json::JsonObject;
use morphstream_durability::{
    read_wal, repair_torn_tail, CheckpointBuilder, CheckpointStore, DurabilityError, FsyncPolicy,
    RedirtySink, WalLog, WalState,
};
use morphstream_replication::{AckMode, Promoted, ReplicationSender, SenderOptions};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

use crate::codec::SocketEventSource;
use crate::metrics::{render_prometheus, ServerMetrics};

/// Events decoded per engine-lock acquisition; small enough to interleave
/// connections fairly, large enough to amortise the lock.
const INGEST_CHUNK: usize = 256;

/// Poll interval of the accept loop and the idle tick of quiet connections.
const POLL: Duration = Duration::from_millis(50);

/// Ingest chunks between scrape-cache refreshes (~4k events): under sustained
/// back-pressure the engine lock is almost never free at scrape time, so the
/// ingest path itself keeps the fallback totals fresh.
const CACHE_REFRESH_CHUNKS: u64 = 16;

/// Everything `morphstream serve` needs to come up. [`Default`] binds
/// ephemeral ports (for tests); the CLI fills in real addresses and knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Event listener address (TCP; binary or JSON-lines per connection).
    pub event_addr: String,
    /// Metrics listener address (HTTP; `/metrics` and `/healthz`).
    pub metrics_addr: String,
    /// Workload shape of the served Streaming Ledger application
    /// (key space, UDF cost, punctuation interval).
    pub workload: WorkloadConfig,
    /// Serve a declarative TOML scenario instead of the builtin
    /// `ledger → audit` dataflow. The file must declare exactly one entry
    /// stage; wire events enter there and terminal outputs are digested.
    pub topology: Option<std::path::PathBuf>,
    /// Worker threads per operator.
    pub threads: usize,
    /// Per-edge bounded channel capacity, in punctuation batches.
    pub channel_capacity: usize,
    /// Run the concurrent (threaded) topology runtime instead of the serial
    /// wave loop.
    pub concurrent: bool,
    /// Per-event cost of the downstream `audit` operator, in microseconds —
    /// raise it to demonstrate back-pressure end to end.
    pub audit_cost_us: u64,
    /// Rotate the engine session after this many ingested events, folding
    /// its report into the lifetime totals (0 = never rotate).
    pub session_events: u64,
    /// Durable data directory (checkpoints + write-ahead log). `None`
    /// disables durability entirely.
    pub data_dir: Option<std::path::PathBuf>,
    /// Events between incremental checkpoints when durability is on
    /// (0 = checkpoint only at recovery and shutdown).
    pub checkpoint_interval: u64,
    /// When the write-ahead log fsyncs.
    pub fsync: FsyncPolicy,
    /// Superseded checkpoint chains to retain on disk (0 = prune each as
    /// soon as its successor's manifest is published).
    pub checkpoint_retain: usize,
    /// Ship the WAL to a standby at this replication address (requires
    /// `data_dir`; the WAL files are the replication source of truth).
    pub replicate_to: Option<String>,
    /// Whether ingest waits for standby acknowledgements.
    pub ack: AckMode,
    /// Also emit the pre-histogram p50/p95 latency gauges on `/metrics`.
    pub legacy_latency_gauges: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            event_addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            workload: WorkloadConfig::streaming_ledger(),
            topology: None,
            threads: 2,
            channel_capacity: 2,
            concurrent: false,
            audit_cost_us: 0,
            session_events: 0,
            data_dir: None,
            checkpoint_interval: 100_000,
            fsync: FsyncPolicy::Interval,
            checkpoint_retain: 0,
            replicate_to: None,
            ack: AckMode::Async,
            legacy_latency_gauges: false,
        }
    }
}

/// The downstream operator: tallies commit outcomes (key 0 = aborted,
/// key 1 = committed) into its own `outcomes` table, at a configurable
/// per-event cost. Deliberately trivial — its role is to be the *terminal*
/// of the dataflow, slow on demand, so back-pressure has somewhere to start.
pub struct AuditApp {
    outcomes: morphstream_common::TableId,
    cost_us: u64,
}

impl AuditApp {
    /// Create the app and its `outcomes` table on `store`.
    pub fn new(store: &StateStore, cost_us: u64) -> Self {
        Self {
            outcomes: store.create_table("outcomes", 0, true),
            cost_us,
        }
    }
}

impl StreamApp for AuditApp {
    type Event = u64;
    type Output = u64;

    fn state_access(&self, outcome: &u64, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        txn.write(self.outcomes, (*outcome != 0) as u64, udfs::add_delta(1));
    }

    fn post_process(&self, outcome: &u64, _result: &TxnOutcome) -> u64 {
        *outcome
    }
}

/// The engine `morphstream serve` runs.
pub type ServeEngine = Topology<SlEvent, u64>;

/// Build the served dataflow with the stores returned so callers can digest
/// final state: the builtin `ledger → audit` chain, or — when
/// [`ServeOptions::topology`] names a scenario file — the TOML-declared
/// dataflow from the loader (whose stages all share one store, returned as
/// both digest positions). Shared by the server and the reference
/// (`push_iter`) runs the equivalence tests compare against.
pub fn build_topology(opts: &ServeOptions) -> io::Result<(ServeEngine, StateStore, StateStore)> {
    if let Some(path) = opts.topology.as_deref() {
        let scenario = morphstream_dataflow::load_serve_file(path)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        return Ok((scenario.topology, scenario.store.clone(), scenario.store));
    }
    let ledger_store = StateStore::new();
    let audit_store = StateStore::new();
    let engine_config = EngineConfig::with_threads(opts.threads)
        .with_punctuation_interval(opts.workload.txns_per_batch);
    let mut builder = TopologyBuilder::new();
    let ledger = builder.add_operator(
        "ledger",
        StreamingLedgerApp::new(&ledger_store, &opts.workload),
        ledger_store.clone(),
        engine_config,
    );
    let audit = builder.add_operator(
        "audit",
        AuditApp::new(&audit_store, opts.audit_cost_us),
        audit_store.clone(),
        engine_config,
    );
    builder.connect(
        ledger,
        audit,
        morphstream::Route::map(|committed: &bool| *committed as u64),
    );
    let topology = builder
        .build(
            ledger,
            audit,
            TopologyConfig::default()
                .with_channel_capacity(opts.channel_capacity)
                .with_concurrent(opts.concurrent),
        )
        .expect("ledger -> audit is a valid dataflow");
    Ok((topology, ledger_store, audit_store))
}

/// Final accounting returned by [`Server::shutdown`] (and by
/// [`reference_run`], so a TCP-fed run and a `push_iter` run are directly
/// comparable).
#[derive(Debug, Clone)]
pub struct ServerSummary {
    /// Lifetime totals: every rotated session plus the final one, folded.
    pub snapshot: ReportSnapshot,
    /// Digest of the ledger operator's final state (the accounts table).
    pub ledger_digest: u64,
    /// Digest of the audit operator's final state (the outcomes table).
    pub audit_digest: u64,
    /// Order-sensitive digest of every output the topology emitted.
    pub output_digest: u64,
    /// Connections accepted (0 for a reference run).
    pub connections: u64,
    /// Wire frames decoded (0 for a reference run).
    pub frames: u64,
    /// Connections closed by a protocol error.
    pub decode_errors: u64,
}

/// The engine plus its durability companion, guarded by one lock: WAL
/// appends and pipeline pushes must interleave in the same order, and a
/// checkpoint is a consistent cut only while no push is in flight.
struct EngineAndLog {
    engine: ServeEngine,
    durable: Option<Durable>,
}

/// The durable half of a serving engine: the write-ahead log events pass
/// through on their way in, and the checkpoint store that periodically
/// absorbs the log.
struct Durable {
    wal: WalLog,
    checkpoints: CheckpointStore,
    /// Events between incremental checkpoints (0 = never on interval).
    interval: u64,
    events_since_checkpoint: u64,
    /// Punctuation interval: WAL markers (and `Interval`-policy fsyncs)
    /// align with the engine's batch boundaries.
    punctuation: u64,
    events_since_marker: u64,
}

impl Durable {
    /// Per-chunk bookkeeping after `logged` events were appended + pushed:
    /// punctuation markers, interval checkpoints, scrape-visible counters.
    fn after_chunk(
        &mut self,
        logged: u64,
        engine: &mut ServeEngine,
        output_digest: &Mutex<Fnv1a>,
        metrics: &ServerMetrics,
    ) {
        self.events_since_marker += logged;
        if self.punctuation > 0 && self.events_since_marker >= self.punctuation {
            self.events_since_marker %= self.punctuation;
            if let Err(e) = self.wal.mark_punctuation() {
                eprintln!("morphstream serve: WAL punctuation marker failed: {e}");
            }
        }
        self.events_since_checkpoint += logged;
        if self.interval > 0 && self.events_since_checkpoint >= self.interval {
            self.checkpoint_now(engine, output_digest, metrics);
        }
        self.publish_wal_stats(metrics);
    }

    /// Take a checkpoint right now: flush the engine to a barrier, snapshot
    /// every table dirtied since the last checkpoint, publish atomically,
    /// then rotate the WAL and drop segments the checkpoint made obsolete.
    fn checkpoint_now(
        &mut self,
        engine: &mut ServeEngine,
        output_digest: &Mutex<Fnv1a>,
        metrics: &ServerMetrics,
    ) {
        self.events_since_checkpoint = 0;
        let started = Instant::now();
        let mut builder = CheckpointBuilder::new();
        TxnEngine::checkpoint(engine, &mut builder);
        // The flush above pushed every appended event through the topology,
        // so the digest state and the WAL index describe the same cut.
        let digest_state = output_digest.lock().expect("digest lock").finish();
        let events_applied = self.wal.next_index();
        let taken_dirty = builder.taken_dirty();
        let checkpoint = builder.build(self.checkpoints.next_id(), events_applied, digest_state);
        match self.checkpoints.save(&checkpoint) {
            Ok(saved) => {
                if let Err(e) = self
                    .wal
                    .rotate()
                    .and_then(|()| self.wal.truncate_before(events_applied).map(|_| ()))
                {
                    eprintln!("morphstream serve: WAL rotation failed: {e}");
                }
                metrics.durability.record_checkpoint(
                    saved.bytes,
                    started.elapsed(),
                    metrics.clock(),
                );
            }
            Err(e) => {
                eprintln!("morphstream serve: checkpoint failed: {e}");
                // The snapshot was never persisted, but the engine already
                // consumed the dirty flags: give them back so the next
                // checkpoint re-captures these tables, and leave the WAL
                // untruncated so replay still covers their writes.
                let mut redirty = RedirtySink::new(taken_dirty);
                TxnEngine::checkpoint(engine, &mut redirty);
            }
        }
        self.publish_wal_stats(metrics);
    }

    /// Mirror the WAL's cumulative totals into the scrape-visible atomics.
    fn publish_wal_stats(&self, metrics: &ServerMetrics) {
        metrics.durability.set_wal(
            self.wal.records_appended(),
            self.wal.bytes_appended(),
            self.wal.segment_count(),
            self.wal.next_index(),
        );
    }
}

/// What startup recovery found and did (present on [`Server`] when
/// `--data-dir` held prior state).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Id of the newest checkpoint restored, if any existed.
    pub checkpoint_id: Option<u64>,
    /// Events the restored checkpoint chain covered.
    pub events_applied: u64,
    /// WAL events replayed through the topology on top of the checkpoint.
    pub replayed_events: u64,
    /// Whether the last WAL segment ended in a torn record (dropped).
    pub torn_tail: bool,
}

impl RecoveryReport {
    /// One JSON object, for startup log lines and smoke-test artifacts.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj = match self.checkpoint_id {
            Some(id) => obj.unsigned("checkpoint_id", id),
            None => obj.raw("checkpoint_id", "null"),
        };
        obj.unsigned("events_applied", self.events_applied)
            .unsigned("replayed_events", self.replayed_events)
            .boolean("torn_tail", self.torn_tail)
            .build()
    }
}

/// Shared state between the accept loop, connection handlers, the metrics
/// responder, and the shutdown path.
struct Shared {
    engine: Mutex<EngineAndLog>,
    metrics: ServerMetrics,
    /// The replication shipping thread, when `--replicate-to` is set. Lives
    /// outside the engine lock: it tails the WAL *files*, so ingest only
    /// nudges it (and, in sync mode, waits for acks) after releasing the
    /// lock.
    sender: Option<ReplicationSender>,
    stop: AtomicBool,
    session_events: u64,
    ingested_since_rotate: AtomicU64,
    /// Events pushed into the engine over the server's lifetime; incremented
    /// after each chunk's pushes complete, so once it reaches a client's send
    /// count a subsequent `flush`/`finish` is guaranteed to cover the stream.
    pushed: AtomicU64,
    /// Order-sensitive digest of every output the topology emitted; also
    /// the state checkpoints persist and restarts resume. Shared with the
    /// engine's output sink closure, hence the `Arc`.
    output_digest: Arc<Mutex<Fnv1a>>,
    legacy_gauges: bool,
}

/// A running server; shut it down with [`Server::shutdown`].
pub struct Server {
    shared: Arc<Shared>,
    event_addr: SocketAddr,
    metrics_addr: SocketAddr,
    accept_thread: JoinHandle<()>,
    metrics_thread: JoinHandle<()>,
    ledger_store: StateStore,
    audit_store: StateStore,
    recovery: Option<RecoveryReport>,
}

impl Server {
    /// Bind both listeners and start accepting. Events flow as soon as this
    /// returns. With a `data_dir`, prior state is recovered first — restore
    /// the latest checkpoint chain, replay the WAL tail, re-anchor with a
    /// fresh full checkpoint — before the listeners come up.
    pub fn start(opts: ServeOptions) -> io::Result<Server> {
        let (mut engine, ledger_store, audit_store) = build_topology(&opts)?;

        // Outputs stream into a digesting sink instead of accumulating in
        // the report, so a long-lived server retains no per-event data; the
        // digest doubles as the equivalence witness in tests. Installed
        // before recovery so replayed outputs are digested too.
        let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
        let digest = Arc::clone(&output_digest);
        engine.set_output_sink(Some(Box::new(FnSink(move |out: u64| {
            digest
                .lock()
                .expect("digest lock")
                .update(&out.to_le_bytes());
        }))));

        let metrics = ServerMetrics::new();
        let (durable, recovery) = match opts.data_dir.as_deref() {
            Some(dir) => {
                metrics.durability.enable();
                let (durable, recovery) =
                    open_durability(dir, &opts, &mut engine, &output_digest, &metrics)?;
                (Some(durable), recovery)
            }
            None => (None, None),
        };
        Self::launch(
            opts,
            engine,
            ledger_store,
            audit_store,
            output_digest,
            metrics,
            durable,
            recovery,
        )
    }

    /// Start serving on a standby's warm, promoted engine: no topology
    /// build, no recovery pass — the engine, output digest, WAL, and
    /// checkpoint store arrive already positioned at the replicated index.
    /// The engine keeps its standby-installed output sink (it feeds the
    /// same digest accumulator [`Promoted::output_digest`] hands over).
    pub fn start_promoted(opts: ServeOptions, promoted: Promoted) -> io::Result<Server> {
        let Promoted {
            engine,
            stores,
            output_digest,
            wal,
            checkpoints,
            ..
        } = promoted;
        let ledger_store = stores
            .first()
            .cloned()
            .ok_or_else(|| io::Error::other("promoted engine has no state stores"))?;
        let audit_store = stores
            .get(1)
            .cloned()
            .unwrap_or_else(|| ledger_store.clone());
        let metrics = ServerMetrics::new();
        metrics.durability.enable();
        let durable = Durable {
            wal,
            checkpoints,
            interval: opts.checkpoint_interval,
            events_since_checkpoint: 0,
            punctuation: opts.workload.txns_per_batch as u64,
            events_since_marker: 0,
        };
        durable.publish_wal_stats(&metrics);
        Self::launch(
            opts,
            engine,
            ledger_store,
            audit_store,
            output_digest,
            metrics,
            Some(durable),
            None,
        )
    }

    /// Common tail of [`Server::start`] and [`Server::start_promoted`]:
    /// start replication shipping (when configured), bind both listeners,
    /// and spawn the accept + metrics threads.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        opts: ServeOptions,
        engine: ServeEngine,
        ledger_store: StateStore,
        audit_store: StateStore,
        output_digest: Arc<Mutex<Fnv1a>>,
        metrics: ServerMetrics,
        durable: Option<Durable>,
        recovery: Option<RecoveryReport>,
    ) -> io::Result<Server> {
        let sender = match opts.replicate_to.as_ref() {
            Some(target) => {
                let dir = opts.data_dir.as_deref().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "--replicate-to requires --data-dir (the WAL is what ships)",
                    )
                })?;
                let wal_next = durable.as_ref().map(|d| d.wal.next_index()).unwrap_or(0);
                let sender = ReplicationSender::start(
                    SenderOptions {
                        target: target.clone(),
                        wal_dir: dir.join("wal"),
                        checkpoint_dir: dir.join("checkpoints"),
                        punctuation: opts.workload.txns_per_batch as u64,
                        ack: opts.ack,
                    },
                    wal_next,
                );
                metrics.set_replication(sender.stats());
                Some(sender)
            }
            None => None,
        };

        let event_listener = TcpListener::bind(&opts.event_addr)?;
        let event_addr = event_listener.local_addr()?;
        event_listener.set_nonblocking(true)?;
        let (metrics_listener, metrics_addr) = crate::metrics::bind(&opts.metrics_addr)?;

        let shared = Arc::new(Shared {
            engine: Mutex::new(EngineAndLog { engine, durable }),
            metrics,
            sender,
            stop: AtomicBool::new(false),
            session_events: opts.session_events,
            ingested_since_rotate: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            output_digest,
            legacy_gauges: opts.legacy_latency_gauges,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("morphstream-accept".into())
            .spawn(move || accept_loop(event_listener, accept_shared))
            .expect("spawn accept loop");

        let http_shared = Arc::clone(&shared);
        let metrics_thread = thread::Builder::new()
            .name("morphstream-metrics".into())
            .spawn(move || {
                let running = {
                    let shared = Arc::clone(&http_shared);
                    move || !shared.stop.load(Ordering::SeqCst)
                };
                let scrape_body = move || scrape(&http_shared);
                crate::metrics::serve_http(metrics_listener, running, scrape_body);
            })
            .expect("spawn metrics responder");

        Ok(Server {
            shared,
            event_addr,
            metrics_addr,
            accept_thread,
            metrics_thread,
            ledger_store,
            audit_store,
            recovery,
        })
    }

    /// What startup recovery did, when the data directory held prior state.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Address the event listener actually bound (resolves port 0).
    pub fn event_addr(&self) -> SocketAddr {
        self.event_addr
    }

    /// Address the metrics listener actually bound.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// Ask the server to stop without waiting; [`Server::shutdown`] joins.
    pub fn request_stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// True once a stop was requested (by [`Server::request_stop`] or a
    /// signal-driven caller flipping the same decision).
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Events pushed into the engine over the server's lifetime. A client
    /// that sent `n` events and half-closed can poll this to `n` before
    /// [`Server::shutdown`] to guarantee the summary accounts for all of
    /// them (shutdown stops *accepting*, it does not wait for connections
    /// that are still in the kernel's accept backlog).
    pub fn events_ingested(&self) -> u64 {
        self.shared.pushed.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting, let every connection handler
    /// finish its in-flight chunk, take a final checkpoint (when durable)
    /// so a clean restart replays nothing, then drain buffered punctuations
    /// (`flush` + `finish`) so nothing pushed before the stop is lost, and
    /// return the lifetime summary.
    pub fn shutdown(self) -> ServerSummary {
        self.request_stop();
        self.accept_thread.join().expect("accept loop panicked");
        self.metrics_thread
            .join()
            .expect("metrics responder panicked");
        let (final_snapshot, wal_tip) = {
            let mut guard = self.shared.engine.lock().expect("engine lock");
            let state = &mut *guard;
            if let Some(durable) = state.durable.as_mut() {
                durable.checkpoint_now(
                    &mut state.engine,
                    &self.shared.output_digest,
                    &self.shared.metrics,
                );
            }
            state.engine.flush();
            let tip = state.durable.as_ref().map(|d| d.wal.next_index());
            (state.engine.finish().snapshot(), tip)
        };
        if let (Some(sender), Some(tip)) = (self.shared.sender.as_ref(), wal_tip) {
            // Best-effort drain: give the standby a bounded window to
            // acknowledge everything this server logged (the final
            // checkpoint above covers the tip, so even a late-joining
            // standby can be bootstrapped to it).
            sender.notify(tip);
            let deadline = Instant::now() + Duration::from_secs(5);
            sender.wait_for_ack(tip, &|| Instant::now() >= deadline);
        }
        self.shared.metrics.fold_session(&final_snapshot);
        let snapshot = self
            .shared
            .metrics
            .total_with_live(&ReportSnapshot::default());
        ServerSummary {
            snapshot,
            ledger_digest: self.ledger_store.state_digest(),
            audit_digest: self.audit_store.state_digest(),
            output_digest: self
                .shared
                .output_digest
                .lock()
                .expect("digest lock")
                .finish(),
            connections: self.shared.metrics.connections.load(Ordering::Relaxed),
            frames: self.shared.metrics.frames.load(Ordering::Relaxed),
            decode_errors: self.shared.metrics.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// Open (or create) the durable data directory and recover prior state into
/// `engine`: restore the checkpoint chain, resume the output digest, replay
/// the WAL tail, then re-anchor with a fresh full checkpoint so a second
/// restart never replays the same tail again.
fn open_durability(
    dir: &Path,
    opts: &ServeOptions,
    engine: &mut ServeEngine,
    output_digest: &Mutex<Fnv1a>,
    metrics: &ServerMetrics,
) -> io::Result<(Durable, Option<RecoveryReport>)> {
    let to_io = |e: DurabilityError| io::Error::other(e.to_string());
    let checkpoints =
        CheckpointStore::open_with_retention(dir.join("checkpoints"), opts.checkpoint_retain)
            .map_err(to_io)?;
    let mut events_applied = 0u64;
    let mut checkpoint_id = None;
    if let Some(mut loaded) = checkpoints.load_chain().map_err(to_io)? {
        TxnEngine::restore(engine, &mut loaded.restore);
        *output_digest.lock().expect("digest lock") = Fnv1a::from_state(loaded.output_digest);
        events_applied = loaded.events_applied;
        checkpoint_id = Some(loaded.last_id);
    }
    let wal_dir = dir.join("wal");
    let wal_state: WalState<SlEvent> = read_wal(&wal_dir).map_err(to_io)?;
    if wal_state.torn_tail {
        // Seal the torn segment at its valid prefix now: the replay below
        // (plus the re-anchor checkpoint) covers its events, and once new
        // appends start a newer segment the torn one would otherwise read
        // as damage in a sealed segment on the next restart.
        repair_torn_tail::<SlEvent>(&wal_dir).map_err(to_io)?;
    }
    let next_index = wal_state
        .events
        .last()
        .map(|(index, _)| index + 1)
        .unwrap_or(events_applied)
        .max(events_applied);
    let torn_tail = wal_state.torn_tail;
    let tail = wal_state.replay_tail(events_applied);
    let replayed_events = tail.len() as u64;
    let recovered = checkpoint_id.is_some() || replayed_events > 0;
    if recovered {
        {
            let mut pipeline = Pipeline::new(engine);
            for (_, event) in tail {
                pipeline.push(event);
            }
        }
        engine.flush();
        metrics.durability.record_recovery(replayed_events);
    }
    let mut durable = Durable {
        wal: WalLog::open(&wal_dir, opts.fsync, next_index).map_err(to_io)?,
        checkpoints,
        interval: opts.checkpoint_interval,
        events_since_checkpoint: 0,
        punctuation: opts.workload.txns_per_batch as u64,
        events_since_marker: 0,
    };
    if recovered {
        durable.checkpoint_now(engine, output_digest, metrics);
    }
    durable.publish_wal_stats(metrics);
    let report = recovered.then_some(RecoveryReport {
        checkpoint_id,
        events_applied,
        replayed_events,
        torn_tail,
    });
    Ok((durable, report))
}

/// Live lifetime totals: the folded base plus the current session's report,
/// with live operator/edge rows spliced in (the session report only carries
/// rows at `finish`). Also refreshes the stale-scrape cache.
fn live_total(shared: &Shared, engine: &ServeEngine) -> ReportSnapshot {
    let mut live = engine.report().snapshot();
    let (operators, edges) = engine.live_rows();
    live.operators = operators;
    live.edges = edges;
    shared.metrics.total_with_live(&live)
}

/// Render the current lifetime metrics, preferring a live engine snapshot
/// but falling back to the last coherent one when the engine lock is held by
/// a push blocked in back-pressure (a scrape must never wait behind the
/// dataflow; the ingest path refreshes the fallback every
/// [`CACHE_REFRESH_CHUNKS`] chunks).
fn scrape(shared: &Shared) -> String {
    for _ in 0..25 {
        if let Ok(state) = shared.engine.try_lock() {
            let total = live_total(shared, &state.engine);
            drop(state);
            return render_prometheus(&total, &shared.metrics, shared.legacy_gauges);
        }
        thread::sleep(Duration::from_millis(4));
    }
    render_prometheus(
        &shared.metrics.cached_total(),
        &shared.metrics,
        shared.legacy_gauges,
    )
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name(format!("morphstream-conn-{peer}"))
                    .spawn(move || handle_connection(stream, conn_shared))
                    .expect("spawn connection handler");
                handlers.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(e) => {
                eprintln!("morphstream serve: accept failed: {e}");
                thread::sleep(POLL);
            }
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One connection: decode chunks of events and push them into the shared
/// engine. The read timeout doubles as the idle tick (flush partial batches,
/// poll the stop flag) and as the guarantee that shutdown never waits on a
/// silent client.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_nodelay(true);
    let mut source: SocketEventSource<SlEvent> = SocketEventSource::new(stream);
    let mut buf: Vec<SlEvent> = Vec::with_capacity(INGEST_CHUNK);
    let mut chunks = 0u64;
    loop {
        let n = source.next_batch(INGEST_CHUNK, &mut buf);
        if n == 0 {
            if !source.is_open() || shared.stop.load(Ordering::SeqCst) {
                break;
            }
            // Quiet interval: process the trailing partial batch so a slow
            // trickle of events still commits without waiting for a full
            // punctuation. try_lock — another connection may be mid-push.
            if let Ok(mut state) = shared.engine.try_lock() {
                state.engine.flush();
            }
            continue;
        }
        let (logged, wal_tip) = {
            let mut guard = shared.engine.lock().expect("engine lock");
            let state = &mut *guard;
            let mut logged = 0u64;
            {
                let mut pipeline = Pipeline::new(&mut state.engine);
                if let Some(durable) = state.durable.as_mut() {
                    // Durable ingestion: an event reaches the pipeline only
                    // after its WAL append succeeded, under the same lock
                    // acquisition, so the log is always a superset of what
                    // the engine has seen — in identical order.
                    for event in buf.drain(..) {
                        if let Err(e) = durable.wal.append_event(&event) {
                            eprintln!(
                                "morphstream serve: WAL append failed, closing connection: {e}"
                            );
                            break;
                        }
                        pipeline.push(event);
                        logged += 1;
                    }
                } else {
                    for event in buf.drain(..) {
                        pipeline.push(event);
                        logged += 1;
                    }
                }
            }
            if let Some(durable) = state.durable.as_mut() {
                durable.after_chunk(
                    logged,
                    &mut state.engine,
                    &shared.output_digest,
                    &shared.metrics,
                );
            }
            chunks += 1;
            if chunks.is_multiple_of(CACHE_REFRESH_CHUNKS) {
                live_total(&shared, &state.engine);
            }
            (logged, state.durable.as_ref().map(|d| d.wal.next_index()))
        };
        shared.pushed.fetch_add(logged, Ordering::SeqCst);
        if let (Some(sender), Some(tip)) = (shared.sender.as_ref(), wal_tip) {
            // Nudge the shipping thread outside the engine lock; in sync
            // mode this connection's reads then wait for the standby's
            // acknowledgement — extending the back-pressure chain across
            // machines without ever stalling the engine itself.
            sender.notify(tip);
            if logged > 0 && sender.ack_mode() == AckMode::Sync {
                sender.wait_for_ack(tip, &|| shared.stop.load(Ordering::SeqCst));
            }
        }
        source.ack(logged as usize);
        maybe_rotate_session(&shared, logged);
        if logged < n as u64 {
            // A WAL append failed mid-chunk: the unlogged remainder was
            // dropped, so stop reading rather than ingest a gapped stream.
            break;
        }
    }
    if !source.is_open() {
        // The connection ended (EOF or protocol error): process its trailing
        // partial batch now, so a closed stream is fully reflected in state
        // and metrics without waiting for other traffic or shutdown.
        shared.engine.lock().expect("engine lock").engine.flush();
    }
    shared
        .metrics
        .frames
        .fetch_add(source.frames(), Ordering::Relaxed);
    if let Some(e) = source.error() {
        shared.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
        eprintln!("morphstream serve: connection closed by protocol error: {e}");
    }
}

/// Fold the current session into the lifetime totals once enough events have
/// flowed, bounding in-engine report memory on an unbounded stream.
fn maybe_rotate_session(shared: &Shared, just_ingested: u64) {
    if shared.session_events == 0 {
        return;
    }
    let total = shared
        .ingested_since_rotate
        .fetch_add(just_ingested, Ordering::Relaxed)
        + just_ingested;
    if total < shared.session_events {
        return;
    }
    let mut state = shared.engine.lock().expect("engine lock");
    // Re-check under the lock: another handler may have rotated already.
    if shared.ingested_since_rotate.load(Ordering::Relaxed) < shared.session_events {
        return;
    }
    shared.ingested_since_rotate.store(0, Ordering::Relaxed);
    state.engine.flush();
    let snapshot = state.engine.finish().snapshot();
    shared.metrics.fold_session(&snapshot);
}

/// Feed `events` to the same dataflow [`Server::start`] runs, via
/// [`Pipeline::push_iter`], and summarise identically — the reference side
/// of the TCP-vs-local digest-equivalence guarantee.
pub fn reference_run(opts: &ServeOptions, events: Vec<SlEvent>) -> io::Result<ServerSummary> {
    let (mut engine, ledger_store, audit_store) = build_topology(opts)?;
    let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
    let digest = Arc::clone(&output_digest);
    let mut pipeline = engine.pipeline().output_sink(FnSink(move |out: u64| {
        digest
            .lock()
            .expect("digest lock")
            .update(&out.to_le_bytes());
    }));
    pipeline.push_iter(events);
    let snapshot = pipeline.finish().snapshot();
    let output_digest = output_digest.lock().expect("digest lock").finish();
    Ok(ServerSummary {
        snapshot,
        ledger_digest: ledger_store.state_digest(),
        audit_digest: audit_store.state_digest(),
        output_digest,
        connections: 0,
        frames: 0,
        decode_errors: 0,
    })
}
