//! SIGINT/SIGTERM → an [`AtomicBool`], with no dependency on a signal crate.
//!
//! The handler does the only thing that is async-signal-safe here: store a
//! relaxed flag. The serve loop polls the flag on its accept/read timeouts
//! and runs the full graceful drain (`flush` + `finish`) from ordinary
//! thread context, so a Ctrl-C mid-stream loses nothing.
//!
//! On non-Unix targets installation is a no-op and only programmatic
//! shutdown ([`crate::Server::request_stop`]) applies.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM was received (or [`trigger_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Flip the shutdown flag programmatically (tests, embedding).
pub fn trigger_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Install the SIGINT/SIGTERM handlers. Safe to call more than once.
pub fn install_shutdown_handler() {
    imp::install();
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // libc's classic `signal`; glibc gives BSD semantics (the handler
        // stays installed). Declared directly to avoid a libc crate
        // dependency for two constants and one call.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}
