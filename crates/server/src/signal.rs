//! SIGINT/SIGTERM (and SIGUSR1) → [`AtomicBool`]s, with no dependency on a
//! signal crate.
//!
//! The handlers do the only thing that is async-signal-safe here: store a
//! relaxed flag. The serve loop polls the shutdown flag on its accept/read
//! timeouts and runs the full graceful drain (`flush` + `finish`) from
//! ordinary thread context, so a Ctrl-C mid-stream loses nothing. The
//! standby loop additionally polls the promote flag (SIGUSR1 or the
//! `/promote` admin endpoint) to flip itself into a serving primary.
//!
//! On non-Unix targets installation is a no-op and only the programmatic
//! triggers ([`crate::Server::request_stop`], [`trigger_promote`]) apply.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static PROMOTE: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM was received (or [`trigger_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Flip the shutdown flag programmatically (tests, embedding).
pub fn trigger_shutdown() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// True once SIGUSR1 was received (or [`trigger_promote`] ran).
pub fn promote_requested() -> bool {
    PROMOTE.load(Ordering::Relaxed)
}

/// Flip the promote flag programmatically (the `/promote` endpoint, tests).
pub fn trigger_promote() {
    PROMOTE.store(true, Ordering::Relaxed);
}

/// Install the SIGINT/SIGTERM handlers. Safe to call more than once.
pub fn install_shutdown_handler() {
    imp::install();
}

/// Install the SIGUSR1 → promote handler. Safe to call more than once.
pub fn install_promote_handler() {
    imp::install_promote();
}

#[cfg(unix)]
mod imp {
    use super::{PROMOTE, SHUTDOWN};
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const SIGUSR1: i32 = 10;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const SIGUSR1: i32 = 30;

    extern "C" {
        // libc's classic `signal`; glibc gives BSD semantics (the handler
        // stays installed). Declared directly to avoid a libc crate
        // dependency for three constants and one call.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    extern "C" fn on_promote(_signum: i32) {
        PROMOTE.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn install_promote() {
        unsafe {
            signal(SIGUSR1, on_promote as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
    pub fn install_promote() {}
}
