//! Toll Processing (TP): the Linear-Road-inspired workload.
//!
//! Vehicles report positions; the application maintains per-segment road
//! statistics and charges tolls to per-vehicle accounts. The configuration
//! used by the multiple-scheduling-strategy experiment (Section 8.2.3) splits
//! the input into two groups with very different characteristics:
//!
//! * **group 0** — skewed segment accesses and a high abort ratio;
//! * **group 1** — uniform accesses with (almost) no aborts.

use morphstream::storage::StateStore;
use morphstream::{
    udfs, EngineConfig, Route, StreamApp, Topology, TopologyBuilder, TopologyConfig, TxnBuilder,
    TxnOutcome,
};
use morphstream_common::rng::DetRng;
use morphstream_common::zipf::Zipf;
use morphstream_common::{StateRef, TableId, Value, WorkloadConfig};

/// A toll-processing input event: one position report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpEvent {
    /// Road segment the vehicle is on.
    pub segment: u64,
    /// Vehicle account charged for the toll.
    pub vehicle: u64,
    /// Toll amount.
    pub toll: Value,
    /// Which transaction group the event belongs to (0 or 1).
    pub group: usize,
    /// Whether the event violates the consistency rule (insufficient prepaid
    /// balance) and aborts.
    pub inject_abort: bool,
}

/// The Toll Processing application.
pub struct TollProcessingApp {
    segments: TableId,
    vehicles: TableId,
    cost_us: u64,
    expected_abort_ratio: f64,
}

/// Initial prepaid balance of every vehicle account.
pub const PREPAID_BALANCE: Value = 10_000;

impl TollProcessingApp {
    /// Create the application and its `segments`/`vehicles` tables.
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let segments = store.create_table("segments", 0, false);
        let vehicles = store.create_table("vehicles", PREPAID_BALANCE, false);
        store
            .preallocate_range(segments, config.key_space)
            .expect("segments table exists");
        store
            .preallocate_range(vehicles, config.key_space)
            .expect("vehicles table exists");
        Self {
            segments,
            vehicles,
            cost_us: config.udf_complexity_us,
            expected_abort_ratio: config.abort_ratio,
        }
    }

    /// Table of per-segment statistics.
    pub fn segments_table(&self) -> TableId {
        self.segments
    }

    /// Table of per-vehicle prepaid accounts.
    pub fn vehicles_table(&self) -> TableId {
        self.vehicles
    }

    /// Generate `count` events split between the two groups: `group0_ratio`
    /// of the events belong to the skewed, abort-heavy group 0; the rest to
    /// the uniform, clean group 1.
    ///
    /// The two groups model different road regions, so they operate on
    /// disjoint halves of the key space — which is also what makes them safe
    /// to schedule with independent strategies (the nested configuration of
    /// Section 8.2.3).
    pub fn generate_two_groups(
        config: &WorkloadConfig,
        count: usize,
        group0_ratio: f64,
        group0_abort_ratio: f64,
        group0_theta: f64,
    ) -> Vec<TpEvent> {
        let half = (config.key_space / 2).max(1);
        let skewed = Zipf::new(half, group0_theta, config.seed);
        let uniform = Zipf::new(config.key_space - half, 0.0, config.seed.wrapping_add(1));
        let mut rng = DetRng::new(config.seed ^ 0x7011);
        (0..count)
            .map(|_| {
                if rng.next_bool(group0_ratio) {
                    TpEvent {
                        segment: skewed.sample(&mut rng),
                        vehicle: skewed.sample(&mut rng),
                        toll: rng.next_range(1, 5) as Value,
                        group: 0,
                        inject_abort: rng.next_bool(group0_abort_ratio),
                    }
                } else {
                    TpEvent {
                        segment: half + uniform.sample(&mut rng),
                        vehicle: half + uniform.sample(&mut rng),
                        toll: rng.next_range(1, 5) as Value,
                        group: 1,
                        inject_abort: rng.next_bool(0.001),
                    }
                }
            })
            .collect()
    }

    /// Generate a single-group workload following `config` directly.
    pub fn generate(config: &WorkloadConfig, count: usize) -> Vec<TpEvent> {
        Self::generate_two_groups(config, count, 1.0, config.abort_ratio, config.zipf_theta)
    }
}

/// The event routed between the two operators of the split TP dataflow: the
/// original position report plus whether the toll charge committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpCharged {
    /// Road segment the vehicle reported from.
    pub segment: u64,
    /// Vehicle whose account was charged.
    pub vehicle: u64,
    /// Toll amount requested.
    pub toll: Value,
    /// Whether the charge committed (false when the prepaid balance was
    /// insufficient — including the injected violations).
    pub charged: bool,
}

/// Operator 1 of the split TP dataflow: charge the toll against the
/// per-vehicle prepaid account. This is the abort-prone half of the fused
/// [`TollProcessingApp`] transaction — splitting it *first* preserves the
/// fused semantics, because a failed charge then suppresses the downstream
/// segment-statistics update exactly like the fused transaction's rollback
/// undoes its segment write.
pub struct TollChargeApp {
    vehicles: TableId,
    cost_us: u64,
    expected_abort_ratio: f64,
}

impl TollChargeApp {
    /// Create the charging operator. Creates (or reuses) the same
    /// `segments`/`vehicles` tables as [`TollProcessingApp::new`], in the
    /// same order, so a split run over a shared store is table-for-table
    /// comparable with a fused run.
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let _segments = store.create_table("segments", 0, false);
        let vehicles = store.create_table("vehicles", PREPAID_BALANCE, false);
        store
            .preallocate_range(_segments, config.key_space)
            .expect("segments table exists");
        store
            .preallocate_range(vehicles, config.key_space)
            .expect("vehicles table exists");
        Self {
            vehicles,
            cost_us: config.udf_complexity_us,
            expected_abort_ratio: config.abort_ratio,
        }
    }
}

impl StreamApp for TollChargeApp {
    type Event = TpEvent;
    type Output = TpCharged;

    fn state_access(&self, event: &TpEvent, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        let toll = if event.inject_abort {
            PREPAID_BALANCE * 100
        } else {
            event.toll
        };
        txn.write(self.vehicles, event.vehicle, udfs::withdraw(toll));
    }

    fn post_process(&self, event: &TpEvent, outcome: &TxnOutcome) -> TpCharged {
        TpCharged {
            segment: event.segment,
            vehicle: event.vehicle,
            toll: event.toll,
            charged: outcome.committed,
        }
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.expected_abort_ratio
    }
}

/// Operator 2 of the split TP dataflow: maintain the per-segment road
/// statistics. Counts only *charged* reports, mirroring the fused
/// transaction, where an aborted charge rolls the segment update back; the
/// uncharged reports still flow through (with a no-op delta) so the dataflow
/// emits one output per input event, in order.
pub struct RoadStatsApp {
    segments: TableId,
    cost_us: u64,
}

impl RoadStatsApp {
    /// Create the statistics operator over the shared `segments` table (see
    /// [`TollChargeApp::new`] for the table-layout contract).
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let segments = store.create_table("segments", 0, false);
        store
            .preallocate_range(segments, config.key_space)
            .expect("segments table exists");
        Self {
            segments,
            cost_us: config.udf_complexity_us,
        }
    }
}

impl StreamApp for RoadStatsApp {
    type Event = TpCharged;
    type Output = bool;

    fn state_access(&self, event: &TpCharged, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        let delta = if event.charged { 1 } else { 0 };
        txn.write(self.segments, event.segment, udfs::add_delta(delta));
    }

    fn post_process(&self, event: &TpCharged, _outcome: &TxnOutcome) -> bool {
        // The end-to-end outcome of the position report is whether the toll
        // was charged; the statistics update itself cannot abort.
        event.charged
    }
}

impl TollProcessingApp {
    /// Assemble the two-operator split of the TP workload: a toll-charging
    /// operator routed into a road-statistics operator over one shared
    /// store. The topology ingests the same [`TpEvent`] stream as the fused
    /// app and emits the same per-event `bool` outputs, so the two renditions
    /// are interchangeable behind [`morphstream::TxnEngine`]. Equivalent to
    /// [`TollProcessingApp::topology_with`] with the default (serial)
    /// topology configuration and a single statistics instance.
    pub fn topology(
        store: &StateStore,
        config: &WorkloadConfig,
        engine_config: EngineConfig,
    ) -> Topology<TpEvent, bool> {
        Self::topology_with(store, config, engine_config, TopologyConfig::default(), 1)
    }

    /// The two-operator TP split with explicit runtime choices: the
    /// statistics stage is *keyed by road segment* and runs
    /// `stats_parallelism` parallel instances — every segment's statistics
    /// stay on one instance, so digests and outputs are identical for any
    /// parallelism — and `topology_config` selects the serial wave loop or
    /// the concurrent per-operator-thread runtime.
    pub fn topology_with(
        store: &StateStore,
        config: &WorkloadConfig,
        engine_config: EngineConfig,
        topology_config: TopologyConfig,
        stats_parallelism: usize,
    ) -> Topology<TpEvent, bool> {
        let mut builder = TopologyBuilder::new();
        let charge = builder.add_operator(
            "toll-charge",
            TollChargeApp::new(store, config),
            store.clone(),
            engine_config,
        );
        let stats = builder
            .add_operator(
                "road-stats",
                RoadStatsApp::new(store, config),
                store.clone(),
                engine_config,
            )
            .with_parallelism(stats_parallelism);
        builder.connect(
            charge,
            stats,
            Route::keyed(
                |charged: &TpCharged| charged.segment,
                |charged: &TpCharged| Some(charged.clone()),
            ),
        );
        builder
            .build(charge, stats, topology_config)
            .expect("the two-operator TP chain is a valid DAG")
    }
}

impl StreamApp for TollProcessingApp {
    type Event = TpEvent;
    type Output = bool;

    fn state_access(&self, event: &TpEvent, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        // update the segment's vehicle counter
        txn.write(self.segments, event.segment, udfs::add_delta(1));
        // charge the toll against the prepaid balance, aborting when the
        // balance would go negative (injected aborts charge an impossible
        // toll)
        let toll = if event.inject_abort {
            PREPAID_BALANCE * 100
        } else {
            event.toll
        };
        txn.write_with_params(
            self.vehicles,
            event.vehicle,
            vec![StateRef::new(self.segments, event.segment)],
            udfs::withdraw(toll),
        );
    }

    fn post_process(&self, _event: &TpEvent, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.expected_abort_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream, TxnEngine};

    fn config() -> WorkloadConfig {
        WorkloadConfig::toll_processing()
            .with_key_space(256)
            .with_udf_complexity_us(0)
    }

    #[test]
    fn two_group_generator_produces_both_groups() {
        let events = TollProcessingApp::generate_two_groups(&config(), 1000, 0.5, 0.3, 0.8);
        let group0 = events.iter().filter(|e| e.group == 0).count();
        assert!((300..700).contains(&group0));
        let aborts0 = events
            .iter()
            .filter(|e| e.group == 0 && e.inject_abort)
            .count();
        let aborts1 = events
            .iter()
            .filter(|e| e.group == 1 && e.inject_abort)
            .count();
        assert!(aborts0 > aborts1);
    }

    #[test]
    fn split_topology_matches_the_fused_app() {
        let cfg = config();
        let events = TollProcessingApp::generate(&cfg, 500);

        let fused_store = StateStore::new();
        let fused_app = TollProcessingApp::new(&fused_store, &cfg);
        let mut fused = MorphStream::new(
            fused_app,
            fused_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let expected = fused.run(events.clone());

        let split_store = StateStore::new();
        let mut topology = TollProcessingApp::topology(
            &split_store,
            &cfg,
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let report = topology.run(events);

        assert_eq!(report.outputs, expected.outputs);
        assert_eq!(split_store.state_digest(), fused_store.state_digest());
        assert_eq!(report.operators.len(), 2);
        assert_eq!(
            report.operators[0].committed + report.operators[1].committed,
            report.committed
        );
    }

    #[test]
    fn keyed_parallel_stats_stage_matches_the_fused_app() {
        let cfg = config();
        let events = TollProcessingApp::generate(&cfg, 600);

        let fused_store = StateStore::new();
        let fused_app = TollProcessingApp::new(&fused_store, &cfg);
        let mut fused = MorphStream::new(
            fused_app,
            fused_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let expected = fused.run(events.clone());

        for concurrent in [false, true] {
            let split_store = StateStore::new();
            let mut topology = TollProcessingApp::topology_with(
                &split_store,
                &cfg,
                EngineConfig::with_threads(2).with_punctuation_interval(100),
                TopologyConfig::default().with_concurrent(concurrent),
                4,
            );
            let report = topology.run(events.clone());
            assert_eq!(report.outputs, expected.outputs);
            assert_eq!(split_store.state_digest(), fused_store.state_digest());
            // per-instance rows: toll-charge + road-stats#0..#3
            assert_eq!(report.operators.len(), 5);
            assert_eq!(report.operators[0].name, "toll-charge");
            assert_eq!(report.operators[1].name, "road-stats#0");
            let committed: usize = report.operators.iter().map(|op| op.committed).sum();
            assert_eq!(report.committed, committed);
            let stats_events: usize = report.operators[1..].iter().map(|op| op.events).sum();
            assert_eq!(stats_events, 600);
        }
    }

    #[test]
    fn toll_processing_runs_grouped_and_plain() {
        let cfg = config();
        let store = StateStore::new();
        let app = TollProcessingApp::new(&store, &cfg);
        let segments = app.segments_table();
        let events = TollProcessingApp::generate_two_groups(&cfg, 400, 0.5, 0.2, 0.8);
        let committed_expected = events.iter().filter(|e| !e.inject_abort).count();
        let mut engine = MorphStream::new(
            app,
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(100),
        );
        let report = engine.process_grouped(events, |e| e.group);
        assert_eq!(report.committed, committed_expected);
        // committed events each incremented one segment counter
        let total_counts: Value = store.snapshot_latest(segments).unwrap().values().sum();
        assert_eq!(total_counts, committed_expected as Value);
    }
}
