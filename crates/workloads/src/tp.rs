//! Toll Processing (TP): the Linear-Road-inspired workload.
//!
//! Vehicles report positions; the application maintains per-segment road
//! statistics and charges tolls to per-vehicle accounts. The configuration
//! used by the multiple-scheduling-strategy experiment (Section 8.2.3) splits
//! the input into two groups with very different characteristics:
//!
//! * **group 0** — skewed segment accesses and a high abort ratio;
//! * **group 1** — uniform accesses with (almost) no aborts.

use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::rng::DetRng;
use morphstream_common::zipf::Zipf;
use morphstream_common::{StateRef, TableId, Value, WorkloadConfig};

/// A toll-processing input event: one position report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpEvent {
    /// Road segment the vehicle is on.
    pub segment: u64,
    /// Vehicle account charged for the toll.
    pub vehicle: u64,
    /// Toll amount.
    pub toll: Value,
    /// Which transaction group the event belongs to (0 or 1).
    pub group: usize,
    /// Whether the event violates the consistency rule (insufficient prepaid
    /// balance) and aborts.
    pub inject_abort: bool,
}

/// The Toll Processing application.
pub struct TollProcessingApp {
    segments: TableId,
    vehicles: TableId,
    cost_us: u64,
    expected_abort_ratio: f64,
}

/// Initial prepaid balance of every vehicle account.
pub const PREPAID_BALANCE: Value = 10_000;

impl TollProcessingApp {
    /// Create the application and its `segments`/`vehicles` tables.
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let segments = store.create_table("segments", 0, false);
        let vehicles = store.create_table("vehicles", PREPAID_BALANCE, false);
        store
            .preallocate_range(segments, config.key_space)
            .expect("segments table exists");
        store
            .preallocate_range(vehicles, config.key_space)
            .expect("vehicles table exists");
        Self {
            segments,
            vehicles,
            cost_us: config.udf_complexity_us,
            expected_abort_ratio: config.abort_ratio,
        }
    }

    /// Table of per-segment statistics.
    pub fn segments_table(&self) -> TableId {
        self.segments
    }

    /// Table of per-vehicle prepaid accounts.
    pub fn vehicles_table(&self) -> TableId {
        self.vehicles
    }

    /// Generate `count` events split between the two groups: `group0_ratio`
    /// of the events belong to the skewed, abort-heavy group 0; the rest to
    /// the uniform, clean group 1.
    ///
    /// The two groups model different road regions, so they operate on
    /// disjoint halves of the key space — which is also what makes them safe
    /// to schedule with independent strategies (the nested configuration of
    /// Section 8.2.3).
    pub fn generate_two_groups(
        config: &WorkloadConfig,
        count: usize,
        group0_ratio: f64,
        group0_abort_ratio: f64,
        group0_theta: f64,
    ) -> Vec<TpEvent> {
        let half = (config.key_space / 2).max(1);
        let skewed = Zipf::new(half, group0_theta, config.seed);
        let uniform = Zipf::new(config.key_space - half, 0.0, config.seed.wrapping_add(1));
        let mut rng = DetRng::new(config.seed ^ 0x7011);
        (0..count)
            .map(|_| {
                if rng.next_bool(group0_ratio) {
                    TpEvent {
                        segment: skewed.sample(&mut rng),
                        vehicle: skewed.sample(&mut rng),
                        toll: rng.next_range(1, 5) as Value,
                        group: 0,
                        inject_abort: rng.next_bool(group0_abort_ratio),
                    }
                } else {
                    TpEvent {
                        segment: half + uniform.sample(&mut rng),
                        vehicle: half + uniform.sample(&mut rng),
                        toll: rng.next_range(1, 5) as Value,
                        group: 1,
                        inject_abort: rng.next_bool(0.001),
                    }
                }
            })
            .collect()
    }

    /// Generate a single-group workload following `config` directly.
    pub fn generate(config: &WorkloadConfig, count: usize) -> Vec<TpEvent> {
        Self::generate_two_groups(config, count, 1.0, config.abort_ratio, config.zipf_theta)
    }
}

impl StreamApp for TollProcessingApp {
    type Event = TpEvent;
    type Output = bool;

    fn state_access(&self, event: &TpEvent, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        // update the segment's vehicle counter
        txn.write(self.segments, event.segment, udfs::add_delta(1));
        // charge the toll against the prepaid balance, aborting when the
        // balance would go negative (injected aborts charge an impossible
        // toll)
        let toll = if event.inject_abort {
            PREPAID_BALANCE * 100
        } else {
            event.toll
        };
        txn.write_with_params(
            self.vehicles,
            event.vehicle,
            vec![StateRef::new(self.segments, event.segment)],
            udfs::withdraw(toll),
        );
    }

    fn post_process(&self, _event: &TpEvent, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.expected_abort_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream};

    fn config() -> WorkloadConfig {
        WorkloadConfig::toll_processing()
            .with_key_space(256)
            .with_udf_complexity_us(0)
    }

    #[test]
    fn two_group_generator_produces_both_groups() {
        let events = TollProcessingApp::generate_two_groups(&config(), 1000, 0.5, 0.3, 0.8);
        let group0 = events.iter().filter(|e| e.group == 0).count();
        assert!((300..700).contains(&group0));
        let aborts0 = events
            .iter()
            .filter(|e| e.group == 0 && e.inject_abort)
            .count();
        let aborts1 = events
            .iter()
            .filter(|e| e.group == 1 && e.inject_abort)
            .count();
        assert!(aborts0 > aborts1);
    }

    #[test]
    fn toll_processing_runs_grouped_and_plain() {
        let cfg = config();
        let store = StateStore::new();
        let app = TollProcessingApp::new(&store, &cfg);
        let segments = app.segments_table();
        let events = TollProcessingApp::generate_two_groups(&cfg, 400, 0.5, 0.2, 0.8);
        let committed_expected = events.iter().filter(|e| !e.inject_abort).count();
        let mut engine = MorphStream::new(
            app,
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(100),
        );
        let report = engine.process_grouped(events, |e| e.group);
        assert_eq!(report.committed, committed_expected);
        // committed events each incremented one segment counter
        let total_counts: Value = store.snapshot_latest(segments).unwrap().values().sum();
        assert_eq!(total_counts, committed_expected as Value);
    }
}
