//! [`WireCodec`] implementations for the workload event types, making SL and
//! GS streams servable over `morphstream serve`'s two wire formats.
//!
//! Binary layouts are a one-byte variant tag followed by fixed-width
//! little-endian fields (`u64` keys, `i64` amounts) and length-prefixed key
//! lists; JSON lines are flat objects discriminated by a `"type"` field.
//! Every decoder is total: malformed bytes or JSON produce a
//! [`ProtocolError`], never a panic, and both decoders reject trailing
//! content so one frame is exactly one event.

use std::collections::BTreeMap;

use morphstream_common::json::{parse_object, JsonObject, JsonValue};
use morphstream_common::protocol::{put_u64_list, PayloadReader, ProtocolError, WireCodec};

use crate::gs::GsEvent;
use crate::sl::SlEvent;

// Binary variant tags. Tag spaces are per event type: the connection's
// application determines which event type frames decode as.
const SL_DEPOSIT: u8 = 0;
const SL_TRANSFER: u8 = 1;
const GS_UPDATE: u8 = 0;
const GS_WINDOW_SUM: u8 = 1;
const GS_NON_DET_SUM: u8 = 2;

fn field<'m>(
    map: &'m BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'m JsonValue, ProtocolError> {
    map.get(key)
        .ok_or_else(|| ProtocolError::Malformed(format!("missing field {key:?}")))
}

fn u64_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, ProtocolError> {
    field(map, key)?
        .as_u64()
        .ok_or_else(|| ProtocolError::Malformed(format!("field {key:?} is not a u64")))
}

fn i64_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<i64, ProtocolError> {
    field(map, key)?
        .as_i64()
        .ok_or_else(|| ProtocolError::Malformed(format!("field {key:?} is not an integer")))
}

fn list_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<Vec<u64>, ProtocolError> {
    field(map, key)?
        .as_u64_array()
        .ok_or_else(|| ProtocolError::Malformed(format!("field {key:?} is not a key list")))
}

fn bool_field(map: &BTreeMap<String, JsonValue>, key: &str) -> Result<bool, ProtocolError> {
    match field(map, key)? {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(ProtocolError::Malformed(format!(
            "field {key:?} is not a boolean"
        ))),
    }
}

fn number_list(items: &[u64]) -> Vec<String> {
    items.iter().map(|k| k.to_string()).collect()
}

impl WireCodec for SlEvent {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            SlEvent::Deposit { account, amount } => {
                out.push(SL_DEPOSIT);
                out.extend_from_slice(&account.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
            SlEvent::Transfer { from, to, amount } => {
                out.push(SL_TRANSFER);
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&to.to_le_bytes());
                out.extend_from_slice(&amount.to_le_bytes());
            }
        }
    }

    fn decode_binary(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = PayloadReader::new(payload);
        let event = match r.u8()? {
            SL_DEPOSIT => SlEvent::Deposit {
                account: r.u64()?,
                amount: r.i64()?,
            },
            SL_TRANSFER => SlEvent::Transfer {
                from: r.u64()?,
                to: r.u64()?,
                amount: r.i64()?,
            },
            tag => return Err(ProtocolError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(event)
    }

    fn encode_json(&self) -> String {
        match self {
            SlEvent::Deposit { account, amount } => JsonObject::new()
                .string("type", "deposit")
                .unsigned("account", *account)
                .number("amount", *amount)
                .build(),
            SlEvent::Transfer { from, to, amount } => JsonObject::new()
                .string("type", "transfer")
                .unsigned("from", *from)
                .unsigned("to", *to)
                .number("amount", *amount)
                .build(),
        }
    }

    fn decode_json(line: &str) -> Result<Self, ProtocolError> {
        let map = parse_object(line)?;
        match field(&map, "type")?.as_str() {
            Some("deposit") => Ok(SlEvent::Deposit {
                account: u64_field(&map, "account")?,
                amount: i64_field(&map, "amount")?,
            }),
            Some("transfer") => Ok(SlEvent::Transfer {
                from: u64_field(&map, "from")?,
                to: u64_field(&map, "to")?,
                amount: i64_field(&map, "amount")?,
            }),
            other => Err(ProtocolError::Malformed(format!(
                "unknown SL event type {other:?}"
            ))),
        }
    }
}

impl WireCodec for GsEvent {
    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            GsEvent::Update {
                target,
                sources,
                value,
                inject_abort,
            } => {
                out.push(GS_UPDATE);
                out.extend_from_slice(&target.to_le_bytes());
                put_u64_list(out, sources);
                out.extend_from_slice(&value.to_le_bytes());
                out.push(u8::from(*inject_abort));
            }
            GsEvent::WindowSum { keys, window } => {
                out.push(GS_WINDOW_SUM);
                put_u64_list(out, keys);
                out.extend_from_slice(&window.to_le_bytes());
            }
            GsEvent::NonDetSum { seed, read_keys } => {
                out.push(GS_NON_DET_SUM);
                out.extend_from_slice(&seed.to_le_bytes());
                put_u64_list(out, read_keys);
            }
        }
    }

    fn decode_binary(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = PayloadReader::new(payload);
        let event = match r.u8()? {
            GS_UPDATE => GsEvent::Update {
                target: r.u64()?,
                sources: r.u64_list()?,
                value: r.i64()?,
                inject_abort: match r.u8()? {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(ProtocolError::Malformed(format!(
                            "boolean byte must be 0 or 1, got {b}"
                        )))
                    }
                },
            },
            GS_WINDOW_SUM => GsEvent::WindowSum {
                keys: r.u64_list()?,
                window: r.u64()?,
            },
            GS_NON_DET_SUM => GsEvent::NonDetSum {
                seed: r.u64()?,
                read_keys: r.u64_list()?,
            },
            tag => return Err(ProtocolError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(event)
    }

    fn encode_json(&self) -> String {
        match self {
            GsEvent::Update {
                target,
                sources,
                value,
                inject_abort,
            } => JsonObject::new()
                .string("type", "update")
                .unsigned("target", *target)
                .array("sources", number_list(sources))
                .number("value", *value)
                .boolean("inject_abort", *inject_abort)
                .build(),
            GsEvent::WindowSum { keys, window } => JsonObject::new()
                .string("type", "window_sum")
                .array("keys", number_list(keys))
                .unsigned("window", *window)
                .build(),
            GsEvent::NonDetSum { seed, read_keys } => JsonObject::new()
                .string("type", "non_det_sum")
                .unsigned("seed", *seed)
                .array("read_keys", number_list(read_keys))
                .build(),
        }
    }

    fn decode_json(line: &str) -> Result<Self, ProtocolError> {
        let map = parse_object(line)?;
        match field(&map, "type")?.as_str() {
            Some("update") => Ok(GsEvent::Update {
                target: u64_field(&map, "target")?,
                sources: list_field(&map, "sources")?,
                value: i64_field(&map, "value")?,
                inject_abort: bool_field(&map, "inject_abort")?,
            }),
            Some("window_sum") => Ok(GsEvent::WindowSum {
                keys: list_field(&map, "keys")?,
                window: u64_field(&map, "window")?,
            }),
            Some("non_det_sum") => Ok(GsEvent::NonDetSum {
                seed: u64_field(&map, "seed")?,
                read_keys: list_field(&map, "read_keys")?,
            }),
            other => Err(ProtocolError::Malformed(format!(
                "unknown GS event type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GrepSumApp, StreamingLedgerApp};
    use morphstream_common::WorkloadConfig;

    fn binary_round_trip<E: WireCodec + PartialEq + std::fmt::Debug>(event: &E) {
        let mut payload = Vec::new();
        event.encode_binary(&mut payload);
        assert_eq!(&E::decode_binary(&payload).unwrap(), event);
    }

    fn json_round_trip<E: WireCodec + PartialEq + std::fmt::Debug>(event: &E) {
        let line = event.encode_json();
        assert_eq!(&E::decode_json(&line).unwrap(), event, "line: {line}");
    }

    #[test]
    fn generated_sl_events_round_trip_both_formats() {
        let config = WorkloadConfig::streaming_ledger().with_key_space(1 << 20);
        for event in StreamingLedgerApp::source(&config, 200, 0.5) {
            binary_round_trip(&event);
            json_round_trip(&event);
        }
    }

    #[test]
    fn generated_gs_events_round_trip_both_formats() {
        let config = WorkloadConfig::grep_sum().with_key_space(1 << 20);
        for event in GrepSumApp::source(&config, 200) {
            binary_round_trip(&event);
            json_round_trip(&event);
        }
    }

    #[test]
    fn gs_variants_round_trip_including_edge_values() {
        // Binary carries the full 64-bit range.
        for event in [
            GsEvent::Update {
                target: u64::MAX,
                sources: vec![],
                value: i64::MIN,
                inject_abort: true,
            },
            GsEvent::WindowSum {
                keys: vec![0, u64::MAX],
                window: u64::MAX,
            },
            GsEvent::NonDetSum {
                seed: 0,
                read_keys: vec![1, 2, 3],
            },
        ] {
            binary_round_trip(&event);
        }
        // JSON numbers are f64: integers round-trip losslessly up to 2^53
        // (larger keys must use the binary format — the decoder rejects them
        // rather than silently rounding).
        let max_json = (1u64 << 53) - 1;
        for event in [
            GsEvent::Update {
                target: max_json,
                sources: vec![],
                value: -(1i64 << 53),
                inject_abort: true,
            },
            GsEvent::WindowSum {
                keys: vec![0, max_json],
                window: max_json,
            },
            GsEvent::NonDetSum {
                seed: 0,
                read_keys: vec![1, 2, 3],
            },
        ] {
            binary_round_trip(&event);
            json_round_trip(&event);
        }
        let oversized = GsEvent::NonDetSum {
            seed: u64::MAX,
            read_keys: vec![],
        };
        assert!(GsEvent::decode_json(&oversized.encode_json()).is_err());
    }

    #[test]
    fn malformed_binary_payloads_error_without_panicking() {
        // empty payload, unknown tag, truncated fields, trailing bytes,
        // out-of-range boolean, corrupt list count
        assert!(SlEvent::decode_binary(&[]).is_err());
        assert!(matches!(
            SlEvent::decode_binary(&[9]),
            Err(ProtocolError::UnknownTag(9))
        ));
        assert!(SlEvent::decode_binary(&[SL_DEPOSIT, 1, 2]).is_err());
        let mut ok = Vec::new();
        SlEvent::Deposit {
            account: 1,
            amount: 2,
        }
        .encode_binary(&mut ok);
        ok.push(0xFF);
        assert!(matches!(
            SlEvent::decode_binary(&ok),
            Err(ProtocolError::Malformed(_))
        ));

        let mut bad_bool = Vec::new();
        GsEvent::Update {
            target: 1,
            sources: vec![2],
            value: 3,
            inject_abort: false,
        }
        .encode_binary(&mut bad_bool);
        *bad_bool.last_mut().unwrap() = 7;
        assert!(matches!(
            GsEvent::decode_binary(&bad_bool),
            Err(ProtocolError::Malformed(_))
        ));

        let mut bad_count = vec![GS_NON_DET_SUM];
        bad_count.extend_from_slice(&0u64.to_le_bytes());
        bad_count.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            GsEvent::decode_binary(&bad_count),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn malformed_json_lines_error_without_panicking() {
        for bad in [
            "",
            "{}",
            r#"{"type":"teleport"}"#,
            r#"{"type":"deposit","account":-1,"amount":5}"#,
            r#"{"type":"deposit","account":1}"#,
            r#"{"type":"transfer","from":1,"to":2,"amount":"lots"}"#,
            r#"{"type":"update","target":1,"sources":[1.5],"value":2,"inject_abort":false}"#,
            r#"{"type":"update","target":1,"sources":[1],"value":2,"inject_abort":"yes"}"#,
            "not json",
        ] {
            assert!(SlEvent::decode_json(bad).is_err(), "SL accepted {bad:?}");
            assert!(GsEvent::decode_json(bad).is_err(), "GS accepted {bad:?}");
        }
    }
}
