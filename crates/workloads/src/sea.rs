//! Real-time Stock Exchange Analysis (SEA) — the second case study of
//! Section 8.6.
//!
//! Turnover-rate analysis joins a stream of quotes with a stream of trades
//! over the same stock id within a sliding window, implemented as a
//! hash-based window join: two shared hash tables (one per stream) are
//! maintained as shared mutable state; every arriving tuple inserts itself
//! into its own table and probes the opposite table for matches inside the
//! window. The original evaluation replays Shanghai Stock Exchange records;
//! this reproduction synthesises quote/trade streams with matched stock ids
//! so the expected number of matches can be computed exactly.

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome, UdfOutcome};
use morphstream_common::rng::DetRng;
use morphstream_common::{TableId, Timestamp, Value};

/// A stock exchange input tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeaEvent {
    /// A quote for `stock`.
    Quote {
        /// Stock id.
        stock: u64,
        /// Quoted price (scaled).
        price: Value,
    },
    /// A trade of `stock`.
    Trade {
        /// Stock id.
        stock: u64,
        /// Traded volume.
        volume: Value,
    },
}

impl SeaEvent {
    /// Stock id of the tuple.
    pub fn stock(&self) -> u64 {
        match self {
            SeaEvent::Quote { stock, .. } | SeaEvent::Trade { stock, .. } => *stock,
        }
    }
}

/// Synthetic quote/trade stream generator.
#[derive(Debug, Clone)]
pub struct SeaGenerator {
    /// Number of tuples to generate.
    pub events: usize,
    /// Number of distinct stocks.
    pub stocks: u64,
    /// Fraction of tuples that are trades (the rest are quotes).
    pub trade_ratio: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SeaGenerator {
    fn default() -> Self {
        Self {
            events: 10_000,
            stocks: 500,
            trade_ratio: 0.5,
            seed: 0x5EA,
        }
    }
}

impl SeaGenerator {
    /// Generate the tuple stream.
    pub fn generate(&self) -> Vec<SeaEvent> {
        let mut rng = DetRng::new(self.seed);
        (0..self.events)
            .map(|_| {
                let stock = rng.next_below(self.stocks);
                if rng.next_bool(self.trade_ratio) {
                    SeaEvent::Trade {
                        stock,
                        volume: rng.next_range(1, 1_000) as Value,
                    }
                } else {
                    SeaEvent::Quote {
                        stock,
                        price: rng.next_range(100, 10_000) as Value,
                    }
                }
            })
            .collect()
    }

    /// Expected number of join matches with an (event-time) window of
    /// `window` tuples: every trade matches the quotes of the same stock that
    /// arrived within the trailing window, and vice versa for quotes probing
    /// trades. Returns the accumulated expected matches after each tuple.
    pub fn expected_accumulated_matches(&self, events: &[SeaEvent], window: Timestamp) -> Vec<u64> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(events.len());
        for (i, event) in events.iter().enumerate() {
            let ts = i as u64 + 1;
            let lo = ts.saturating_sub(window);
            let matches = events[..i]
                .iter()
                .enumerate()
                .filter(|(j, other)| {
                    let other_ts = *j as u64 + 1;
                    other_ts >= lo
                        && other.stock() == event.stock()
                        && matches!(
                            (event, other),
                            (SeaEvent::Trade { .. }, SeaEvent::Quote { .. })
                                | (SeaEvent::Quote { .. }, SeaEvent::Trade { .. })
                        )
                })
                .count() as u64;
            acc += matches;
            out.push(acc);
        }
        out
    }
}

/// The SEA hash-based window-join application.
pub struct SeaApp {
    quotes: TableId,
    trades: TableId,
    /// Sliding window length in event-time units.
    pub window: Timestamp,
}

impl SeaApp {
    /// Create the application and its two hash-table-backed states.
    pub fn new(store: &StateStore, stocks: u64, window: Timestamp) -> Self {
        let quotes = store.create_table("quotes_index", 0, false);
        let trades = store.create_table("trades_index", 0, false);
        store
            .preallocate_range(quotes, stocks)
            .expect("quotes table");
        store
            .preallocate_range(trades, stocks)
            .expect("trades table");
        Self {
            quotes,
            trades,
            window,
        }
    }
}

impl StreamApp for SeaApp {
    type Event = SeaEvent;
    type Output = Value;

    fn state_access(&self, event: &SeaEvent, txn: &mut TxnBuilder) {
        let (own_table, other_table, stock) = match event {
            SeaEvent::Quote { stock, .. } => (self.quotes, self.trades, *stock),
            SeaEvent::Trade { stock, .. } => (self.trades, self.quotes, *stock),
        };
        // Probe the opposite index: how many tuples of this stock arrived in
        // the trailing window? Each arrival appends a version with a positive
        // running counter; the zero-valued seed version of the pre-allocated
        // key is not an arrival and is filtered out.
        txn.window_read(
            other_table,
            stock,
            self.window,
            Arc::new(|input: &morphstream::UdfInput| {
                Ok(UdfOutcome::Value(
                    input.window.iter().filter(|v| **v > 0).count() as Value,
                ))
            }),
        );
        // Insert ourselves into our own index.
        txn.write(own_table, stock, udfs::add_delta(1));
    }

    fn post_process(&self, _event: &SeaEvent, outcome: &TxnOutcome) -> Value {
        if outcome.committed {
            outcome.result(0).unwrap_or(0)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream};

    #[test]
    fn generator_mixes_quotes_and_trades_deterministically() {
        let generator = SeaGenerator {
            events: 1_000,
            ..SeaGenerator::default()
        };
        let a = generator.generate();
        let b = generator.generate();
        assert_eq!(a, b);
        let trades = a
            .iter()
            .filter(|e| matches!(e, SeaEvent::Trade { .. }))
            .count();
        assert!((350..650).contains(&trades));
    }

    #[test]
    fn join_matches_track_the_analytical_expectation() {
        let generator = SeaGenerator {
            events: 800,
            stocks: 40,
            ..SeaGenerator::default()
        };
        let events = generator.generate();
        let window: Timestamp = 100;
        let expected = generator.expected_accumulated_matches(&events, window);

        let store = StateStore::new();
        let app = SeaApp::new(&store, generator.stocks, window);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(4)
                .with_punctuation_interval(200)
                .with_reclaim_after_batch(false),
        );
        let report = engine.process(events);
        let actual_total: Value = report.outputs.iter().sum();
        let expected_total = *expected.last().unwrap() as Value;
        // The window in the engine is over event-time versions of the index
        // key; the analytical oracle counts the same pairs, so totals match.
        assert_eq!(actual_total, expected_total);
    }
}
