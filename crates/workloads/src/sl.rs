//! Streaming Ledger (SL): the running example of the paper.
//!
//! Accounts hold balances; deposit transactions credit one account, transfer
//! transactions debit a sender and credit a receiver, aborting when the
//! sender's balance is insufficient (the consistency rule used to tune the
//! abort ratio `a`). State access skew, transaction length, UDF cost, states
//! per operation and batch size follow the knobs of Table 6.

use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::rng::DetRng;
use morphstream_common::zipf::Zipf;
use morphstream_common::{StateRef, TableId, Value, WorkloadConfig};

/// Initial balance seeded into every account.
pub const INITIAL_BALANCE: Value = 1_000_000;

/// A Streaming Ledger input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlEvent {
    /// Credit `amount` to `account`.
    Deposit {
        /// Target account.
        account: u64,
        /// Amount to credit.
        amount: Value,
    },
    /// Move `amount` from `from` to `to`; aborts when `from` has insufficient
    /// funds.
    Transfer {
        /// Debited account.
        from: u64,
        /// Credited account.
        to: u64,
        /// Amount to move.
        amount: Value,
    },
}

/// The Streaming Ledger application.
pub struct StreamingLedgerApp {
    accounts: TableId,
    cost_us: u64,
    expected_abort_ratio: f64,
}

impl StreamingLedgerApp {
    /// Create the application and its `accounts` table on `store`, seeding
    /// `config.key_space` accounts with [`INITIAL_BALANCE`].
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let accounts = store.create_table("accounts", INITIAL_BALANCE, false);
        store
            .preallocate_range(accounts, config.key_space)
            .expect("accounts table exists");
        Self {
            accounts,
            cost_us: config.udf_complexity_us,
            expected_abort_ratio: config.abort_ratio,
        }
    }

    /// Table holding account balances.
    pub fn accounts_table(&self) -> TableId {
        self.accounts
    }

    /// Generate `count` events with `transfer_ratio` transfers (the rest are
    /// deposits) following `config`. Eager variant of
    /// [`StreamingLedgerApp::source`].
    pub fn generate(config: &WorkloadConfig, count: usize, transfer_ratio: f64) -> Vec<SlEvent> {
        Self::source(config, count, transfer_ratio).collect()
    }

    /// Lazily yield the same `count` events as
    /// [`StreamingLedgerApp::generate`], one at a time — suitable for
    /// feeding a pipeline without materialising the stream.
    pub fn source(config: &WorkloadConfig, count: usize, transfer_ratio: f64) -> SlSource {
        SlSource {
            zipf: Zipf::new(config.key_space, config.zipf_theta, config.seed),
            rng: DetRng::new(config.seed ^ 0x51ED_6E5A),
            key_space: config.key_space,
            abort_ratio: config.abort_ratio,
            transfer_ratio,
            remaining: count,
        }
    }

    /// Total money in the ledger.
    pub fn total_balance(&self, store: &StateStore) -> Value {
        store
            .snapshot_latest(self.accounts)
            .expect("accounts table exists")
            .values()
            .sum()
    }
}

/// Lazy, deterministic Streaming Ledger event source (see
/// [`StreamingLedgerApp::source`]).
pub struct SlSource {
    zipf: Zipf,
    rng: DetRng,
    key_space: u64,
    abort_ratio: f64,
    transfer_ratio: f64,
    remaining: usize,
}

impl Iterator for SlSource {
    type Item = SlEvent;

    fn next(&mut self) -> Option<SlEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(if self.rng.next_bool(self.transfer_ratio) {
            let from = self.zipf.sample(&mut self.rng);
            let mut to = self.zipf.sample(&mut self.rng);
            if to == from {
                to = (to + 1) % self.key_space;
            }
            // An aborting transaction asks for more money than any account
            // can hold, violating the non-negative balance rule.
            let amount = if self.rng.next_bool(self.abort_ratio) {
                INITIAL_BALANCE * 1_000
            } else {
                self.rng.next_range(1, 100) as Value
            };
            SlEvent::Transfer { from, to, amount }
        } else {
            SlEvent::Deposit {
                account: self.zipf.sample(&mut self.rng),
                amount: self.rng.next_range(1, 100) as Value,
            }
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl crate::Source for SlSource {}

impl morphstream::EventSource for SlSource {
    type Event = SlEvent;

    fn next_batch(&mut self, max: usize, out: &mut Vec<SlEvent>) -> usize {
        let mut pulled = 0;
        while pulled < max {
            match self.next() {
                Some(event) => {
                    out.push(event);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }

    fn remaining_events(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl StreamApp for StreamingLedgerApp {
    type Event = SlEvent;
    type Output = bool;

    fn state_access(&self, event: &SlEvent, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        match event {
            SlEvent::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            SlEvent::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, _event: &SlEvent, outcome: &TxnOutcome) -> bool {
        outcome.committed
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.expected_abort_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream};

    fn small_config() -> WorkloadConfig {
        WorkloadConfig::streaming_ledger()
            .with_key_space(256)
            .with_txns_per_batch(128)
            .with_udf_complexity_us(0)
    }

    #[test]
    fn generator_respects_transfer_ratio_and_determinism() {
        let config = small_config();
        let a = StreamingLedgerApp::generate(&config, 1000, 0.5);
        let b = StreamingLedgerApp::generate(&config, 1000, 0.5);
        assert_eq!(a, b, "same seed must produce the same events");
        let transfers = a
            .iter()
            .filter(|e| matches!(e, SlEvent::Transfer { .. }))
            .count();
        assert!((300..700).contains(&transfers));
    }

    #[test]
    fn money_is_conserved_under_morphstream() {
        let config = small_config();
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let accounts = app.accounts_table();
        let events = StreamingLedgerApp::generate(&config, 500, 0.6);
        let deposited: Value = events
            .iter()
            .filter_map(|e| match e {
                SlEvent::Deposit { amount, .. } => Some(*amount),
                _ => None,
            })
            .sum();
        let mut engine = MorphStream::new(
            app,
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(config.txns_per_batch),
        );
        let report = engine.process(events);
        assert_eq!(report.events(), 500);
        let total: Value = store.snapshot_latest(accounts).unwrap().values().sum();
        // Committed deposits add money, transfers conserve it. Deposits never
        // abort in SL, so the expected total is exact.
        assert_eq!(total, 256 * INITIAL_BALANCE + deposited);
    }

    #[test]
    fn abort_ratio_injects_failing_transfers() {
        let config = small_config().with_abort_ratio(0.5);
        let store = StateStore::new();
        let app = StreamingLedgerApp::new(&store, &config);
        let events = StreamingLedgerApp::generate(&config, 400, 1.0);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let report = engine.process(events);
        let ratio = report.aborted as f64 / 400.0;
        assert!(ratio > 0.3 && ratio < 0.7, "observed abort ratio {ratio}");
    }
}
