//! Benchmark workloads for transactional stream processing.
//!
//! The paper evaluates MorphStream with three micro-benchmark applications
//! taken from the TStream benchmark suite — Streaming Ledger ([`sl`]),
//! GrepSum ([`gs`]) and Toll Processing ([`tp`]) — a dynamically changing
//! 4-phase workload ([`dynamic`]), and two real-world case studies: Online
//! Social Event Detection ([`osed`]) and Stock Exchange Analysis ([`sea`]).
//!
//! All generators are deterministic functions of a [`WorkloadConfig`]
//! seed, so every figure can be regenerated bit-for-bit, and every
//! application implements [`morphstream::StreamApp`] so it can run unchanged
//! on MorphStream and on the reconstructed baselines. The SL and GS
//! generators additionally expose lazy [`Source`]s that yield events one at
//! a time for push-based ingestion with bounded memory.

#![warn(missing_docs)]

pub mod dynamic;
pub mod gs;
pub mod osed;
pub mod sea;
pub mod sl;
pub mod source;
pub mod tp;
pub mod wire;

pub use dynamic::{DynamicPhase, DynamicWorkload};
pub use gs::{GrepSumApp, GsEvent, GsSource};
pub use osed::{OsedApp, OsedReport, Tweet, TweetGenerator};
pub use sea::{SeaApp, SeaEvent, SeaGenerator};
pub use sl::{SlEvent, SlSource, StreamingLedgerApp};
pub use source::{from_iter, IterSource, MergeByTimestamp, Source};
pub use tp::{RoadStatsApp, TollChargeApp, TollProcessingApp, TpCharged, TpEvent};

// The conveyor-style source/sink traits live in the engine crate (the
// Pipeline is generic over them); re-exported here because workload sources
// are their canonical implementors.
pub use morphstream::{EventSink, EventSource, FnSink, OutputSink};
pub use morphstream_common::protocol::WireCodec;
pub use morphstream_common::WorkloadConfig;
