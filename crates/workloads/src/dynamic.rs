//! The dynamically changing 4-phase workload of Section 8.2.2.
//!
//! Phases (each built on Streaming Ledger):
//!
//! 1. scattered deposit transactions (many LDs/TDs, few PDs, uniform degree
//!    distribution);
//! 2. increasing key skewness over time;
//! 3. increasing ratio of transfer transactions over time;
//! 4. increasing ratio of aborting transactions over time.

use morphstream_common::WorkloadConfig;

use crate::sl::{SlEvent, StreamingLedgerApp};

/// One phase of the dynamic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPhase {
    /// Scattered deposits.
    Deposits,
    /// Skewness rising from the base θ to 0.9.
    RisingSkew,
    /// Transfer ratio rising from 0.2 to 0.9.
    RisingTransfers,
    /// Abort ratio rising from 0 to 0.6.
    RisingAborts,
}

impl DynamicPhase {
    /// All four phases in order.
    pub const ALL: [DynamicPhase; 4] = [
        DynamicPhase::Deposits,
        DynamicPhase::RisingSkew,
        DynamicPhase::RisingTransfers,
        DynamicPhase::RisingAborts,
    ];
}

/// Generator of the 4-phase dynamic workload.
#[derive(Debug, Clone)]
pub struct DynamicWorkload {
    /// Base configuration (key space, seeds, UDF cost).
    pub config: WorkloadConfig,
    /// Events per phase.
    pub events_per_phase: usize,
    /// Number of sub-steps within a phase over which the rising parameter is
    /// interpolated.
    pub steps_per_phase: usize,
}

impl DynamicWorkload {
    /// Dynamic workload over `config` with `events_per_phase` events in each
    /// of the four phases.
    pub fn new(config: WorkloadConfig, events_per_phase: usize) -> Self {
        Self {
            config,
            events_per_phase,
            steps_per_phase: 4,
        }
    }

    /// Generate the events of one phase.
    pub fn phase_events(&self, phase: DynamicPhase) -> Vec<SlEvent> {
        let steps = self.steps_per_phase.max(1);
        let per_step = (self.events_per_phase / steps).max(1);
        let mut events = Vec::with_capacity(self.events_per_phase);
        for step in 0..steps {
            let progress = step as f64 / steps as f64;
            let (theta, transfer_ratio, abort_ratio) = match phase {
                DynamicPhase::Deposits => (self.config.zipf_theta, 0.0, 0.0),
                DynamicPhase::RisingSkew => (
                    self.config.zipf_theta + progress * (0.9 - self.config.zipf_theta),
                    0.2,
                    0.0,
                ),
                DynamicPhase::RisingTransfers => {
                    (self.config.zipf_theta, 0.2 + progress * 0.7, 0.0)
                }
                DynamicPhase::RisingAborts => (self.config.zipf_theta, 0.9, progress * 0.6),
            };
            let step_config = self
                .config
                .with_zipf_theta(theta.min(1.0))
                .with_abort_ratio(abort_ratio)
                .with_seed(self.config.seed ^ ((phase as u64) << 32) ^ step as u64);
            events.extend(StreamingLedgerApp::generate(
                &step_config,
                per_step,
                transfer_ratio,
            ));
        }
        events
    }

    /// Generate all four phases back to back, returning `(phase, events)`
    /// pairs.
    pub fn all_phases(&self) -> Vec<(DynamicPhase, Vec<SlEvent>)> {
        DynamicPhase::ALL
            .into_iter()
            .map(|phase| (phase, self.phase_events(phase)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> DynamicWorkload {
        DynamicWorkload::new(
            WorkloadConfig::streaming_ledger()
                .with_key_space(512)
                .with_udf_complexity_us(0),
            400,
        )
    }

    #[test]
    fn phases_have_the_requested_size() {
        let w = workload();
        for phase in DynamicPhase::ALL {
            assert_eq!(w.phase_events(phase).len(), 400, "{phase:?}");
        }
        assert_eq!(w.all_phases().len(), 4);
    }

    #[test]
    fn deposit_phase_contains_only_deposits() {
        let events = workload().phase_events(DynamicPhase::Deposits);
        assert!(events.iter().all(|e| matches!(e, SlEvent::Deposit { .. })));
    }

    #[test]
    fn transfer_phase_transfer_ratio_rises() {
        let events = workload().phase_events(DynamicPhase::RisingTransfers);
        let half = events.len() / 2;
        let early = events[..half]
            .iter()
            .filter(|e| matches!(e, SlEvent::Transfer { .. }))
            .count();
        let late = events[half..]
            .iter()
            .filter(|e| matches!(e, SlEvent::Transfer { .. }))
            .count();
        assert!(late > early);
    }

    #[test]
    fn abort_phase_injects_large_transfers_late() {
        let events = workload().phase_events(DynamicPhase::RisingAborts);
        let huge = |e: &SlEvent| matches!(e, SlEvent::Transfer { amount, .. } if *amount > crate::sl::INITIAL_BALANCE);
        let half = events.len() / 2;
        let early = events[..half].iter().filter(|e| huge(e)).count();
        let late = events[half..].iter().filter(|e| huge(e)).count();
        assert!(late > early);
    }
}
