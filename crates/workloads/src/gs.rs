//! GrepSum (GS): read a set of states, aggregate them, and write the result.
//!
//! GS is the most tunable micro-benchmark of the suite: the number of states
//! read per operation (`r`), the UDF cost (`C`), the abort ratio (`a`) and
//! the access skew (`θ`) are all configurable. Two extended variants drive
//! the special-scenario experiments:
//!
//! * **windowed GrepSum** (Section 8.2.4) mixes write-only update events with
//!   periodic window-read events that aggregate the versions of a set of
//!   states over a trailing event-time window;
//! * **non-deterministic GrepSum** (Section 8.2.5) resolves the written key
//!   with a user-defined function at execution time.

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome};
use morphstream_common::rng::DetRng;
use morphstream_common::zipf::Zipf;
use morphstream_common::{StateRef, TableId, Timestamp, Value, WorkloadConfig};

/// A GrepSum input event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GsEvent {
    /// Write `value` into `target` after summing the current values of
    /// `sources` (a multi-state write with `r = sources.len()` accesses).
    Update {
        /// Key written.
        target: u64,
        /// Keys whose values are summed into the written value.
        sources: Vec<u64>,
        /// Extra constant added to the sum.
        value: Value,
        /// When true the transaction violates the consistency rule and
        /// aborts.
        inject_abort: bool,
    },
    /// Read every version of `keys` inside the trailing `window` and sum
    /// them (the windowed variant).
    WindowSum {
        /// Keys to aggregate.
        keys: Vec<u64>,
        /// Trailing window size in event-time units.
        window: Timestamp,
    },
    /// Write the sum of `read_keys` to a key chosen by a user-defined
    /// function of the timestamp (the non-deterministic variant).
    NonDetSum {
        /// Seed of the key-resolving UDF.
        seed: u64,
        /// Keys read to compute the sum.
        read_keys: Vec<u64>,
    },
}

/// The GrepSum application.
pub struct GrepSumApp {
    table: TableId,
    key_space: u64,
    cost_us: u64,
    expected_abort_ratio: f64,
}

impl GrepSumApp {
    /// Create the application and its state table, pre-allocating
    /// `config.key_space` keys initialised to 1.
    pub fn new(store: &StateStore, config: &WorkloadConfig) -> Self {
        let table = store.create_table("grepsum", 1, false);
        store
            .preallocate_range(table, config.key_space)
            .expect("grepsum table exists");
        Self {
            table,
            key_space: config.key_space,
            cost_us: config.udf_complexity_us,
            expected_abort_ratio: config.abort_ratio,
        }
    }

    /// The backing table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Generate plain GrepSum update events following `config`. Eager
    /// variant of [`GrepSumApp::source`].
    pub fn generate(config: &WorkloadConfig, count: usize) -> Vec<GsEvent> {
        Self::source(config, count).collect()
    }

    /// Lazily yield the same `count` update events as
    /// [`GrepSumApp::generate`], one at a time.
    pub fn source(config: &WorkloadConfig, count: usize) -> GsSource {
        GsSource {
            zipf: Zipf::new(config.key_space, config.zipf_theta, config.seed),
            rng: DetRng::new(config.seed ^ 0x6E50_5D11),
            states_per_op: config.states_per_op.max(1),
            abort_ratio: config.abort_ratio,
            remaining: count,
        }
    }

    /// Generate the windowed variant: `read_period` update events between two
    /// window reads, each window read touching `keys_per_read` random keys
    /// over `window` event-time units (Section 8.2.4).
    pub fn generate_windowed(
        config: &WorkloadConfig,
        count: usize,
        read_period: usize,
        keys_per_read: usize,
        window: Timestamp,
    ) -> Vec<GsEvent> {
        let zipf = Zipf::new(config.key_space, config.zipf_theta, config.seed);
        let mut rng = DetRng::new(config.seed ^ 0x57_1D00);
        (0..count)
            .map(|i| {
                if read_period > 0 && i % read_period == read_period - 1 {
                    GsEvent::WindowSum {
                        keys: zipf.sample_distinct(
                            &mut rng,
                            keys_per_read.min(config.key_space as usize),
                        ),
                        window,
                    }
                } else {
                    GsEvent::Update {
                        target: zipf.sample(&mut rng),
                        sources: vec![],
                        value: rng.next_range(1, 10) as Value,
                        inject_abort: false,
                    }
                }
            })
            .collect()
    }

    /// Generate the non-deterministic variant: `non_det` of the `count`
    /// events resolve their written key with a UDF (Section 8.2.5).
    pub fn generate_non_deterministic(
        config: &WorkloadConfig,
        count: usize,
        non_det: usize,
    ) -> Vec<GsEvent> {
        let zipf = Zipf::new(config.key_space, config.zipf_theta, config.seed);
        let mut rng = DetRng::new(config.seed ^ 0x0D01);
        let stride = if non_det == 0 {
            usize::MAX
        } else {
            count / non_det.max(1) + 1
        };
        (0..count)
            .map(|i| {
                if i % stride == stride - 1 {
                    GsEvent::NonDetSum {
                        seed: rng.next_u64(),
                        read_keys: zipf.sample_distinct(&mut rng, config.states_per_op.max(1)),
                    }
                } else {
                    GsEvent::Update {
                        target: zipf.sample(&mut rng),
                        sources: zipf.sample_distinct(&mut rng, config.states_per_op.max(1)),
                        value: rng.next_range(1, 10) as Value,
                        inject_abort: false,
                    }
                }
            })
            .collect()
    }
}

/// Lazy, deterministic GrepSum event source (see [`GrepSumApp::source`]).
pub struct GsSource {
    zipf: Zipf,
    rng: DetRng,
    states_per_op: usize,
    abort_ratio: f64,
    remaining: usize,
}

impl Iterator for GsSource {
    type Item = GsEvent;

    fn next(&mut self) -> Option<GsEvent> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(GsEvent::Update {
            target: self.zipf.sample(&mut self.rng),
            sources: self.zipf.sample_distinct(&mut self.rng, self.states_per_op),
            value: self.rng.next_range(1, 10) as Value,
            inject_abort: self.rng.next_bool(self.abort_ratio),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl crate::Source for GsSource {}

impl morphstream::EventSource for GsSource {
    type Event = GsEvent;

    fn next_batch(&mut self, max: usize, out: &mut Vec<GsEvent>) -> usize {
        let mut pulled = 0;
        while pulled < max {
            match self.next() {
                Some(event) => {
                    out.push(event);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }

    fn remaining_events(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl StreamApp for GrepSumApp {
    type Event = GsEvent;
    type Output = Option<Value>;

    fn state_access(&self, event: &GsEvent, txn: &mut TxnBuilder) {
        txn.set_cost_us(self.cost_us);
        match event {
            GsEvent::Update {
                target,
                sources,
                value,
                inject_abort,
            } => {
                if *inject_abort {
                    txn.write(self.table, *target, udfs::always_abort());
                } else if sources.is_empty() {
                    txn.write(self.table, *target, udfs::add_delta(*value));
                } else {
                    let params: Vec<StateRef> = sources
                        .iter()
                        .map(|k| StateRef::new(self.table, *k))
                        .collect();
                    let value = *value;
                    txn.write_with_params(
                        self.table,
                        *target,
                        params,
                        Arc::new(move |input: &morphstream::UdfInput| {
                            Ok(morphstream::UdfOutcome::Value(
                                input.params.iter().sum::<Value>() + value,
                            ))
                        }),
                    );
                }
            }
            GsEvent::WindowSum { keys, window } => {
                for key in keys {
                    txn.window_read(self.table, *key, *window, udfs::window_sum());
                }
            }
            GsEvent::NonDetSum { seed, read_keys } => {
                let key_space = self.key_space;
                let seed = *seed;
                let params: Vec<StateRef> = read_keys
                    .iter()
                    .map(|k| StateRef::new(self.table, *k))
                    .collect();
                txn.non_det_write(
                    self.table,
                    Arc::new(move |ts| (seed ^ ts.wrapping_mul(0x9E37_79B9)) % key_space),
                    params,
                    udfs::sum_params(),
                );
            }
        }
    }

    fn post_process(&self, _event: &GsEvent, outcome: &TxnOutcome) -> Option<Value> {
        if outcome.committed {
            outcome.result(0)
        } else {
            None
        }
    }

    fn expected_abort_ratio(&self) -> f64 {
        self.expected_abort_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream};

    fn config() -> WorkloadConfig {
        WorkloadConfig::grep_sum()
            .with_key_space(128)
            .with_udf_complexity_us(0)
            .with_txns_per_batch(64)
    }

    #[test]
    fn plain_grepsum_runs_and_commits() {
        let cfg = config();
        let store = StateStore::new();
        let app = GrepSumApp::new(&store, &cfg);
        let events = GrepSumApp::generate(&cfg.with_abort_ratio(0.0), 300);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(4).with_punctuation_interval(64),
        );
        let report = engine.process(events);
        assert_eq!(report.committed, 300);
        assert_eq!(report.aborted, 0);
    }

    #[test]
    fn injected_aborts_show_up_in_the_report() {
        let cfg = config().with_abort_ratio(0.4);
        let store = StateStore::new();
        let app = GrepSumApp::new(&store, &cfg);
        let events = GrepSumApp::generate(&cfg, 300);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let report = engine.process(events);
        let ratio = report.aborted as f64 / 300.0;
        assert!(ratio > 0.2 && ratio < 0.6, "abort ratio {ratio}");
    }

    #[test]
    fn windowed_variant_produces_window_reads() {
        let cfg = config();
        let events = GrepSumApp::generate_windowed(&cfg, 100, 10, 3, 50);
        let window_reads = events
            .iter()
            .filter(|e| matches!(e, GsEvent::WindowSum { .. }))
            .count();
        assert_eq!(window_reads, 10);
        let store = StateStore::new();
        let app = GrepSumApp::new(&store, &cfg);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(50),
        );
        let report = engine.process(events);
        assert_eq!(report.committed, 100);
    }

    #[test]
    fn non_deterministic_variant_runs_to_completion() {
        let cfg = config();
        let events = GrepSumApp::generate_non_deterministic(&cfg, 120, 12);
        let nondet = events
            .iter()
            .filter(|e| matches!(e, GsEvent::NonDetSum { .. }))
            .count();
        assert!(nondet >= 10);
        let store = StateStore::new();
        let app = GrepSumApp::new(&store, &cfg);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(4).with_punctuation_interval(60),
        );
        let report = engine.process(events);
        assert_eq!(report.committed, 120);
    }

    #[test]
    fn generators_are_deterministic() {
        let cfg = config();
        assert_eq!(
            GrepSumApp::generate(&cfg, 50),
            GrepSumApp::generate(&cfg, 50)
        );
        assert_eq!(
            GrepSumApp::generate_windowed(&cfg, 50, 5, 2, 10),
            GrepSumApp::generate_windowed(&cfg, 50, 5, 2, 10)
        );
        assert_eq!(
            GrepSumApp::generate_non_deterministic(&cfg, 50, 5),
            GrepSumApp::generate_non_deterministic(&cfg, 50, 5)
        );
    }
}
