//! Lazy event sources.
//!
//! A [`Source`] yields workload events one at a time instead of allocating
//! the whole stream as a `Vec` up front, so long-running scenarios can feed a
//! [`Pipeline`](morphstream::Pipeline) with bounded memory:
//!
//! ```
//! use morphstream::storage::StateStore;
//! use morphstream::{EngineConfig, MorphStream, TxnEngine};
//! use morphstream_workloads::{Source, StreamingLedgerApp, WorkloadConfig};
//!
//! let config = WorkloadConfig::streaming_ledger()
//!     .with_key_space(64)
//!     .with_udf_complexity_us(0);
//! let store = StateStore::new();
//! let app = StreamingLedgerApp::new(&store, &config);
//! let mut engine = MorphStream::new(
//!     app,
//!     store,
//!     EngineConfig::with_threads(2).with_punctuation_interval(32),
//! );
//!
//! let source = StreamingLedgerApp::source(&config, 100, 0.5);
//! assert_eq!(source.expected_events(), Some(100));
//! let mut pipeline = engine.pipeline();
//! pipeline.push_iter(source); // streams through, never materialised
//! assert_eq!(pipeline.finish().events(), 100);
//! ```
//!
//! Every source is a deterministic function of its [`WorkloadConfig`]
//! (`morphstream_common::WorkloadConfig`) seed: collecting a source yields
//! exactly the event sequence of the corresponding eager `generate` call,
//! which is itself implemented as `source(..).collect()`.

/// A lazy, deterministic stream of workload events.
///
/// `Source` is an [`Iterator`] with a size contract: bounded sources report
/// how many events remain through [`Iterator::size_hint`], which lets
/// harnesses pre-size result buffers and progress displays without consuming
/// the stream; an unbounded source (open-ended traffic) reports `None`.
pub trait Source: Iterator {
    /// Number of events this source will still yield, when known. Derived
    /// from the upper bound of [`Iterator::size_hint`].
    fn expected_events(&self) -> Option<usize> {
        self.size_hint().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GrepSumApp, StreamingLedgerApp};
    use morphstream_common::WorkloadConfig;

    #[test]
    fn sources_yield_exactly_the_generated_events() {
        let sl = WorkloadConfig::streaming_ledger().with_key_space(128);
        let lazy: Vec<_> = StreamingLedgerApp::source(&sl, 200, 0.6).collect();
        assert_eq!(lazy, StreamingLedgerApp::generate(&sl, 200, 0.6));

        let gs = WorkloadConfig::grep_sum().with_key_space(128);
        let lazy: Vec<_> = GrepSumApp::source(&gs, 200).collect();
        assert_eq!(lazy, GrepSumApp::generate(&gs, 200));
    }

    #[test]
    fn expected_events_tracks_consumption() {
        let config = WorkloadConfig::streaming_ledger().with_key_space(128);
        let mut source = StreamingLedgerApp::source(&config, 10, 0.5);
        assert_eq!(source.expected_events(), Some(10));
        assert_eq!(source.size_hint(), (10, Some(10)));
        source.next();
        assert_eq!(source.expected_events(), Some(9));
        assert_eq!(source.by_ref().count(), 9);
        assert_eq!(source.expected_events(), Some(0));
        assert!(source.next().is_none());
    }
}
