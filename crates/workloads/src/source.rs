//! Lazy event sources.
//!
//! A [`Source`] yields workload events one at a time instead of allocating
//! the whole stream as a `Vec` up front, so long-running scenarios can feed a
//! [`Pipeline`](morphstream::Pipeline) with bounded memory:
//!
//! ```
//! use morphstream::storage::StateStore;
//! use morphstream::{EngineConfig, MorphStream, TxnEngine};
//! use morphstream_workloads::{Source, StreamingLedgerApp, WorkloadConfig};
//!
//! let config = WorkloadConfig::streaming_ledger()
//!     .with_key_space(64)
//!     .with_udf_complexity_us(0);
//! let store = StateStore::new();
//! let app = StreamingLedgerApp::new(&store, &config);
//! let mut engine = MorphStream::new(
//!     app,
//!     store,
//!     EngineConfig::with_threads(2).with_punctuation_interval(32),
//! );
//!
//! let source = StreamingLedgerApp::source(&config, 100, 0.5);
//! assert_eq!(source.expected_events(), Some(100));
//! let mut pipeline = engine.pipeline();
//! pipeline.push_iter(source); // streams through, never materialised
//! assert_eq!(pipeline.finish().events(), 100);
//! ```
//!
//! Every source is a deterministic function of its [`WorkloadConfig`]
//! (`morphstream_common::WorkloadConfig`) seed: collecting a source yields
//! exactly the event sequence of the corresponding eager `generate` call,
//! which is itself implemented as `source(..).collect()`.

use morphstream::EventSource;
use morphstream_common::Timestamp;

/// Shared pull loop adapting an iterator-backed source to the conveyor-style
/// [`EventSource`] batch contract.
fn pull_batch<I: Iterator>(iter: &mut I, max: usize, out: &mut Vec<I::Item>) -> usize {
    let mut pulled = 0;
    while pulled < max {
        match iter.next() {
            Some(event) => {
                out.push(event);
                pulled += 1;
            }
            None => break,
        }
    }
    pulled
}

/// A lazy, deterministic stream of workload events.
///
/// `Source` is an [`Iterator`] with a size contract: bounded sources report
/// how many events remain through [`Iterator::size_hint`], which lets
/// harnesses pre-size result buffers and progress displays without consuming
/// the stream; an unbounded source (open-ended traffic) reports `None`.
pub trait Source: Iterator {
    /// Number of events this source will still yield, when known. Derived
    /// from the upper bound of [`Iterator::size_hint`].
    fn expected_events(&self) -> Option<usize> {
        self.size_hint().1
    }

    /// Interleave this source with `other` in timestamp order: at every step
    /// the event with the smaller `timestamp` is yielded. Ties break in
    /// deterministic *feed order* — on equal timestamps `self` is drained
    /// first, so a run of colliding timestamps yields all of the left feed's
    /// events (in their feed order) before the right feed's. Both inputs must
    /// themselves be timestamp-ordered — the merge preserves, not creates,
    /// order. This is how a topology is fed from several deterministic feeds
    /// as one stream.
    ///
    /// The merged source keeps the [`Source`] size contract: its
    /// [`Iterator::size_hint`] is the element-wise sum of the inputs' hints.
    fn merge_by_timestamp<S, F>(self, other: S, timestamp: F) -> MergeByTimestamp<Self, S, F>
    where
        Self: Sized,
        S: Iterator<Item = Self::Item>,
        F: Fn(&Self::Item) -> Timestamp,
    {
        MergeByTimestamp {
            left: self,
            right: other,
            peeked_left: None,
            peeked_right: None,
            timestamp,
        }
    }
}

/// Two timestamp-ordered sources merged into one ordered stream (see
/// [`Source::merge_by_timestamp`]).
pub struct MergeByTimestamp<A: Iterator, B: Iterator, F> {
    left: A,
    right: B,
    peeked_left: Option<A::Item>,
    peeked_right: Option<B::Item>,
    timestamp: F,
}

impl<A, B, F> Iterator for MergeByTimestamp<A, B, F>
where
    A: Iterator,
    B: Iterator<Item = A::Item>,
    F: Fn(&A::Item) -> Timestamp,
{
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        if self.peeked_left.is_none() {
            self.peeked_left = self.left.next();
        }
        if self.peeked_right.is_none() {
            self.peeked_right = self.right.next();
        }
        match (&self.peeked_left, &self.peeked_right) {
            (Some(l), Some(r)) => {
                // Ties go left for determinism.
                if (self.timestamp)(l) <= (self.timestamp)(r) {
                    self.peeked_left.take()
                } else {
                    self.peeked_right.take()
                }
            }
            (Some(_), None) => self.peeked_left.take(),
            (None, _) => self.peeked_right.take(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let peeked =
            usize::from(self.peeked_left.is_some()) + usize::from(self.peeked_right.is_some());
        let (left_lo, left_hi) = self.left.size_hint();
        let (right_lo, right_hi) = self.right.size_hint();
        let lo = left_lo.saturating_add(right_lo).saturating_add(peeked);
        let hi = match (left_hi, right_hi) {
            (Some(l), Some(r)) => l.checked_add(r).and_then(|s| s.checked_add(peeked)),
            _ => None,
        };
        (lo, hi)
    }
}

impl<A, B, F> Source for MergeByTimestamp<A, B, F>
where
    A: Iterator,
    B: Iterator<Item = A::Item>,
    F: Fn(&A::Item) -> Timestamp,
{
}

impl<A, B, F> EventSource for MergeByTimestamp<A, B, F>
where
    A: Iterator,
    B: Iterator<Item = A::Item>,
    F: Fn(&A::Item) -> Timestamp,
{
    type Event = A::Item;

    fn next_batch(&mut self, max: usize, out: &mut Vec<A::Item>) -> usize {
        pull_batch(self, max, out)
    }

    fn remaining_events(&self) -> Option<usize> {
        Source::expected_events(self)
    }
}

/// Any iterator viewed as a [`Source`] (see [`from_iter`]). The size contract
/// is inherited from the iterator's own [`Iterator::size_hint`].
pub struct IterSource<I>(I);

impl<I: Iterator> Iterator for IterSource<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Source for IterSource<I> {}

impl<I: Iterator> EventSource for IterSource<I> {
    type Event = I::Item;

    fn next_batch(&mut self, max: usize, out: &mut Vec<I::Item>) -> usize {
        pull_batch(self, max, out)
    }

    fn remaining_events(&self) -> Option<usize> {
        Source::expected_events(self)
    }
}

/// Adapt any iterator (or collection) into a [`Source`], so ad-hoc event
/// feeds compose with the source combinators like
/// [`Source::merge_by_timestamp`].
pub fn from_iter<I: IntoIterator>(events: I) -> IterSource<I::IntoIter> {
    IterSource(events.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GrepSumApp, StreamingLedgerApp};
    use morphstream_common::WorkloadConfig;

    #[test]
    fn sources_yield_exactly_the_generated_events() {
        let sl = WorkloadConfig::streaming_ledger().with_key_space(128);
        let lazy: Vec<_> = StreamingLedgerApp::source(&sl, 200, 0.6).collect();
        assert_eq!(lazy, StreamingLedgerApp::generate(&sl, 200, 0.6));

        let gs = WorkloadConfig::grep_sum().with_key_space(128);
        let lazy: Vec<_> = GrepSumApp::source(&gs, 200).collect();
        assert_eq!(lazy, GrepSumApp::generate(&gs, 200));
    }

    #[test]
    fn merge_by_timestamp_interleaves_in_order_with_left_winning_ties() {
        let odd = from_iter([(1u64, "a"), (3, "a"), (5, "a"), (9, "a")]);
        let even = from_iter([(2u64, "b"), (3, "b"), (6, "b")]);
        let mut merged = odd.merge_by_timestamp(even, |(ts, _)| *ts);
        assert_eq!(merged.expected_events(), Some(7));
        assert_eq!(merged.size_hint(), (7, Some(7)));

        let order: Vec<(u64, &str)> = merged.by_ref().collect();
        assert_eq!(
            order,
            vec![
                (1, "a"),
                (2, "b"),
                (3, "a"), // tie at ts=3: the left source wins
                (3, "b"),
                (5, "a"),
                (6, "b"),
                (9, "a"),
            ]
        );
        assert_eq!(merged.expected_events(), Some(0));
        assert!(merged.next().is_none());
    }

    #[test]
    fn merge_by_timestamp_breaks_colliding_runs_in_feed_order() {
        // Runs of identical timestamps on both feeds: every tie must resolve
        // to the left feed, and within one feed the original order must be
        // preserved — the interleaving is a pure function of the inputs, so
        // replays reproduce the exact event sequence.
        let left = from_iter([(7u64, "L0"), (7, "L1"), (7, "L2"), (9, "L3")]);
        let right = from_iter([(7u64, "R0"), (7, "R1"), (9, "R2"), (9, "R3")]);
        let merged: Vec<(u64, &str)> = left.merge_by_timestamp(right, |(ts, _)| *ts).collect();
        assert_eq!(
            merged,
            vec![
                // the whole left ts=7 run drains before the right one starts
                (7, "L0"),
                (7, "L1"),
                (7, "L2"),
                (7, "R0"),
                (7, "R1"),
                (9, "L3"), // the tie at ts=9 goes left again
                (9, "R2"),
                (9, "R3"),
            ]
        );
        // merging is deterministic: a second merge of the same feeds agrees
        let again: Vec<(u64, &str)> = from_iter([(7u64, "L0"), (7, "L1"), (7, "L2"), (9, "L3")])
            .merge_by_timestamp(
                from_iter([(7u64, "R0"), (7, "R1"), (9, "R2"), (9, "R3")]),
                |(ts, _)| *ts,
            )
            .collect();
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_by_timestamp_size_hint_tracks_peeked_lookahead() {
        let mut merged = from_iter([(5u64, ()), (7, ())])
            .merge_by_timestamp(from_iter([(1u64, ()), (2, ())]), |(ts, _)| *ts);
        // Consuming one event peeks ahead into both inputs; the hint must
        // still count the buffered lookahead.
        assert_eq!(merged.next(), Some((1, ())));
        assert_eq!(merged.size_hint(), (3, Some(3)));
        assert_eq!(merged.by_ref().count(), 3);
        assert_eq!(merged.size_hint(), (0, Some(0)));
    }

    #[test]
    fn merged_sl_sources_drain_both_feeds_completely() {
        let config = WorkloadConfig::streaming_ledger().with_key_space(128);
        let a = StreamingLedgerApp::source(&config, 40, 0.5);
        let b = StreamingLedgerApp::source(&config.with_seed(7), 25, 0.5);
        // SL events carry no timestamp of their own; a constant clock makes
        // every comparison a tie, draining the left feed first — still a
        // deterministic interleaving that exercises the combinator end to end.
        let merged = a.merge_by_timestamp(b, |_| 0);
        assert_eq!(merged.expected_events(), Some(65));
        let events: Vec<_> = merged.collect();
        assert_eq!(events.len(), 65);
        assert_eq!(
            events[..40],
            StreamingLedgerApp::generate(&config, 40, 0.5)[..]
        );
    }

    #[test]
    fn expected_events_tracks_consumption() {
        let config = WorkloadConfig::streaming_ledger().with_key_space(128);
        let mut source = StreamingLedgerApp::source(&config, 10, 0.5);
        assert_eq!(source.expected_events(), Some(10));
        assert_eq!(source.size_hint(), (10, Some(10)));
        source.next();
        assert_eq!(source.expected_events(), Some(9));
        assert_eq!(source.by_ref().count(), 9);
        assert_eq!(source.expected_events(), Some(0));
        assert!(source.next().is_none());
    }
}
