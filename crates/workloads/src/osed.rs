//! Online Social Event Detection (OSED) — the first case study of
//! Section 8.6.
//!
//! The real study processes the CrisisLexT6 tweet collection (five U.S.
//! crisis events, ~30 000 tweets). That dataset is not bundled with this
//! repository, so [`TweetGenerator`] synthesises an equivalent stream: five
//! overlapping "crisis events", each emitting a pulse of tweets whose
//! per-window popularity rises and falls like the pulses of Figure 23, plus
//! background noise tweets. Every tweet carries word tokens; tweets of a
//! crisis event always contain that event's burst keyword.
//!
//! The streaming application maintains three shared states — word
//! frequencies, tweet registrations, and per-event clusters — and answers
//! "how popular is each event in the current window" with windowed reads over
//! the cluster table, which is exactly the state-management pattern the paper
//! implements on MorphStream.

use std::sync::Arc;

use morphstream::storage::StateStore;
use morphstream::{udfs, StreamApp, TxnBuilder, TxnOutcome, UdfOutcome};
use morphstream_common::rng::DetRng;
use morphstream_common::{TableId, Timestamp, Value};

/// Number of synthetic crisis events (matches the five CrisisLexT6 events).
pub const NUM_EVENTS: usize = 5;

/// A tweet of the synthetic stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tweet {
    /// Monotonic tweet index.
    pub id: u64,
    /// Word tokens (word ids).
    pub words: Vec<u64>,
    /// The crisis event the tweet belongs to, if any (`None` = background
    /// noise). Used only to compute the *expected* popularity series.
    pub event: Option<usize>,
    /// Whether this tweet is a popularity probe: it triggers a windowed read
    /// of every event cluster instead of registering new content.
    pub window_probe: bool,
}

/// Synthetic CrisisLex-like tweet stream generator.
#[derive(Debug, Clone)]
pub struct TweetGenerator {
    /// Total number of content tweets to generate.
    pub tweets: usize,
    /// Tweets per detection window; a probe tweet is appended after each
    /// window.
    pub window: usize,
    /// Vocabulary size for background words.
    pub vocabulary: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for TweetGenerator {
    fn default() -> Self {
        Self {
            tweets: 3_000,
            window: 200,
            vocabulary: 5_000,
            seed: 0x05ED,
        }
    }
}

impl TweetGenerator {
    /// Generate the tweet stream plus the expected per-window popularity of
    /// every event (`expected[event][window]`).
    pub fn generate(&self) -> (Vec<Tweet>, Vec<Vec<usize>>) {
        let mut rng = DetRng::new(self.seed);
        let windows = self.tweets.div_ceil(self.window.max(1));
        let mut expected = vec![vec![0usize; windows]; NUM_EVENTS];
        let mut tweets = Vec::with_capacity(self.tweets + windows);
        // every crisis event peaks at a different window
        let peaks: Vec<f64> = (0..NUM_EVENTS)
            .map(|e| (e as f64 + 0.5) * windows as f64 / NUM_EVENTS as f64)
            .collect();
        let mut id = 0u64;
        // `window_idx` indexes the inner dimension of `expected` (outer is
        // the event id), so iterating `expected` directly would invert the
        // loop nest.
        #[allow(clippy::needless_range_loop)]
        for window_idx in 0..windows {
            let in_window = self.window.min(self.tweets - window_idx * self.window);
            for _ in 0..in_window {
                // pick the event with probability proportional to its pulse at
                // this window, or background noise.
                let weights: Vec<f64> = peaks
                    .iter()
                    .map(|peak| {
                        let d = (window_idx as f64 - peak) / (windows as f64 / 10.0);
                        (-d * d).exp()
                    })
                    .collect();
                let noise_weight = 0.4;
                let total: f64 = weights.iter().sum::<f64>() + noise_weight;
                let mut pick = rng.next_f64() * total;
                let mut event = None;
                for (e, w) in weights.iter().enumerate() {
                    if pick < *w {
                        event = Some(e);
                        break;
                    }
                    pick -= w;
                }
                let mut words: Vec<u64> = (0..4)
                    .map(|_| 100 + rng.next_below(self.vocabulary))
                    .collect();
                if let Some(e) = event {
                    // burst keyword of the event: word ids 0..NUM_EVENTS
                    words.push(e as u64);
                    expected[e][window_idx] += 1;
                }
                tweets.push(Tweet {
                    id,
                    words,
                    event,
                    window_probe: false,
                });
                id += 1;
            }
            // end-of-window probe
            tweets.push(Tweet {
                id,
                words: Vec::new(),
                event: None,
                window_probe: true,
            });
            id += 1;
        }
        (tweets, expected)
    }
}

/// Output of processing one tweet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsedOutput {
    /// The tweet was registered into the word/cluster state.
    Registered,
    /// A probe returned the detected popularity (new tweets in the trailing
    /// window) of every event cluster.
    Detected(Vec<Value>),
    /// The transaction aborted.
    Aborted,
}

/// The OSED streaming application.
pub struct OsedApp {
    words: TableId,
    tweets: TableId,
    clusters: TableId,
    /// Window length in event-time units used by popularity probes.
    pub window: Timestamp,
}

impl OsedApp {
    /// Create the application and its three shared-state tables.
    pub fn new(store: &StateStore, window: Timestamp) -> Self {
        let words = store.create_table("words", 0, true);
        let tweets = store.create_table("tweets", 0, true);
        let clusters = store.create_table("clusters", 0, false);
        store
            .preallocate_range(clusters, NUM_EVENTS as u64)
            .expect("clusters table exists");
        Self {
            words,
            tweets,
            clusters,
            window,
        }
    }

    /// Cluster table (per-event tweet counters).
    pub fn clusters_table(&self) -> TableId {
        self.clusters
    }
}

impl StreamApp for OsedApp {
    type Event = Tweet;
    type Output = OsedOutput;

    fn state_access(&self, tweet: &Tweet, txn: &mut TxnBuilder) {
        if tweet.window_probe {
            // Event selector: how many tweets joined each cluster within the
            // trailing window? Every join appends a version with a positive
            // running counter; the zero-valued seed version is not a tweet.
            for event in 0..NUM_EVENTS as u64 {
                txn.window_read(
                    self.clusters,
                    event,
                    self.window,
                    Arc::new(|input: &morphstream::UdfInput| {
                        Ok(UdfOutcome::Value(
                            input.window.iter().filter(|v| **v > 0).count() as Value,
                        ))
                    }),
                );
            }
            return;
        }
        // Tweet registrant: record the tweet.
        txn.write(self.tweets, tweet.id, udfs::set_value(1));
        // Word updater: bump the frequency of every token.
        for word in &tweet.words {
            txn.write(self.words, *word, udfs::add_delta(1));
        }
        // Similarity calculator + cluster updater: a tweet containing a burst
        // keyword (word id < NUM_EVENTS) joins that event's cluster.
        if let Some(keyword) = tweet.words.iter().find(|w| (**w as usize) < NUM_EVENTS) {
            txn.write(self.clusters, *keyword, udfs::add_delta(1));
        }
    }

    fn post_process(&self, tweet: &Tweet, outcome: &TxnOutcome) -> OsedOutput {
        if !outcome.committed {
            return OsedOutput::Aborted;
        }
        if tweet.window_probe {
            let detected = (0..NUM_EVENTS)
                .map(|e| outcome.result(e).unwrap_or(0))
                .collect();
            OsedOutput::Detected(detected)
        } else {
            OsedOutput::Registered
        }
    }
}

/// Result of an OSED run: expected vs detected per-window popularity.
#[derive(Debug, Clone)]
pub struct OsedReport {
    /// Expected popularity per event per window (from the generator labels).
    pub expected: Vec<Vec<usize>>,
    /// Detected popularity per event per window (from the windowed cluster
    /// reads).
    pub detected: Vec<Vec<usize>>,
}

impl OsedReport {
    /// Collect detected series from engine outputs.
    pub fn from_outputs(expected: Vec<Vec<usize>>, outputs: &[OsedOutput]) -> Self {
        let mut detected = vec![Vec::new(); NUM_EVENTS];
        for output in outputs {
            if let OsedOutput::Detected(popularities) = output {
                for (event, value) in popularities.iter().enumerate() {
                    detected[event].push(*value as usize);
                }
            }
        }
        Self { expected, detected }
    }

    /// Fraction of (event, window) cells where detected popularity is within
    /// `tolerance` tweets of the expected popularity — the "accurately
    /// detects the emergence of events" claim of Section 8.6.1.
    pub fn detection_accuracy(&self, tolerance: usize) -> f64 {
        let mut cells = 0usize;
        let mut close = 0usize;
        for event in 0..NUM_EVENTS {
            for (w, expected) in self.expected[event].iter().enumerate() {
                if let Some(detected) = self.detected[event].get(w) {
                    cells += 1;
                    if expected.abs_diff(*detected) <= tolerance {
                        close += 1;
                    }
                }
            }
        }
        if cells == 0 {
            0.0
        } else {
            close as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream::{EngineConfig, MorphStream};

    #[test]
    fn generator_produces_pulsed_events_and_probes() {
        let (tweets, expected) = TweetGenerator {
            tweets: 1_000,
            window: 100,
            ..TweetGenerator::default()
        }
        .generate();
        let probes = tweets.iter().filter(|t| t.window_probe).count();
        assert_eq!(probes, 10);
        assert_eq!(expected.len(), NUM_EVENTS);
        // each event has a nonzero peak somewhere
        for series in &expected {
            assert!(series.iter().any(|&c| c > 0));
        }
    }

    #[test]
    fn detected_popularity_tracks_expected_popularity() {
        let generator = TweetGenerator {
            tweets: 1_200,
            window: 150,
            ..TweetGenerator::default()
        };
        let (tweets, expected) = generator.generate();
        let store = StateStore::new();
        // window in event-time units: one event per tweet, so window = tweets
        // per window (+ probes).
        let app = OsedApp::new(&store, generator.window as Timestamp + 1);
        let mut engine = MorphStream::new(
            app,
            store,
            EngineConfig::with_threads(4)
                .with_punctuation_interval(generator.window + 1)
                .with_reclaim_after_batch(false),
        );
        let report = engine.process(tweets);
        let osed = OsedReport::from_outputs(expected, &report.outputs);
        // detection should closely track the generated popularity
        assert!(
            osed.detection_accuracy(10) > 0.8,
            "accuracy {}",
            osed.detection_accuracy(10)
        );
    }
}
