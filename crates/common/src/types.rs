//! Primitive identifier and value types shared across the workspace.

use std::fmt;

/// A state key. Shared mutable state is modelled as key/value entries inside
/// named tables; a key is a 64-bit integer (workloads map account numbers,
/// stock ids, words, etc. onto this space).
pub type Key = u64;

/// A state value. All workloads in the paper operate on numeric state
/// (account balances, counters, toll statistics), so values are signed 64-bit
/// integers.
pub type Value = i64;

/// Logical event time of an input event and of every state access operation
/// it triggers. Operations of the same state transaction share a timestamp
/// (Section 2.1.1 of the paper).
pub type Timestamp = u64;

/// Identifier of a state transaction within a batch. Equal to the position of
/// the transaction in timestamp order once the stream processing phase has
/// sorted the batch.
pub type TxnId = usize;

/// Identifier of a state access operation (a TPG vertex) within a batch.
pub type OpId = usize;

/// Identifier of a logical table inside the [`StateStore`].
///
/// Tables are created up front by the application (e.g. `accounts` and
/// `assets` for Streaming Ledger, one table per hash index for the stock
/// exchange join) and addressed by a dense index for cheap lookups.
///
/// [`StateStore`]: https://docs.rs/morphstream-storage
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl TableId {
    /// Table index as a usize, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

impl From<u32> for TableId {
    fn from(v: u32) -> Self {
        TableId(v)
    }
}

/// A fully qualified state reference: table plus key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateRef {
    /// Table holding the state entry.
    pub table: TableId,
    /// Key of the state entry inside the table.
    pub key: Key,
}

impl StateRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(table: TableId, key: Key) -> Self {
        Self { table, key }
    }
}

impl fmt::Display for StateRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.table, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_id_round_trips_through_index() {
        let t = TableId(7);
        assert_eq!(t.index(), 7);
        assert_eq!(TableId::from(7u32), t);
    }

    #[test]
    fn state_ref_display_is_readable() {
        let r = StateRef::new(TableId(1), 42);
        assert_eq!(r.to_string(), "table#1[42]");
    }

    #[test]
    fn state_refs_order_by_table_then_key() {
        let a = StateRef::new(TableId(0), 100);
        let b = StateRef::new(TableId(1), 0);
        let c = StateRef::new(TableId(1), 5);
        assert!(a < b);
        assert!(b < c);
    }
}
