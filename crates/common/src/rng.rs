//! Small deterministic pseudo-random number generators.
//!
//! The workload generators must be reproducible so that the benchmark figures
//! can be regenerated and compared run-to-run. Rather than threading a large
//! external RNG through every crate, this module provides a tiny
//! xoshiro256**-based generator seeded through splitmix64, which is both fast
//! and adequate for workload synthesis (it is not used for anything
//! cryptographic).

/// splitmix64 step, used to expand a single `u64` seed into generator state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free mapping is fine here because
        // workload synthesis does not need perfect uniformity for huge bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform floating point value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in the inclusive integer range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_produces_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should not track each other");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = DetRng::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_range_is_inclusive() {
        let mut rng = DetRng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.next_range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn bernoulli_probability_is_roughly_respected() {
        let mut rng = DetRng::new(11);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.25)).count();
        let ratio = hits as f64 / 100_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "ratio was {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
