//! Error and abort types.

use std::fmt;

use crate::types::{StateRef, Timestamp, TxnId};

/// Why a state access operation (and therefore its whole transaction, through
/// the logical dependency rule) aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// The user-defined function signalled a consistency violation, e.g. an
    /// account balance would become negative. This is the paper's mechanism
    /// for tuning the ratio of aborting transactions.
    ConsistencyViolation {
        /// The state the violating operation targeted.
        state: StateRef,
        /// Human-readable detail from the UDF.
        detail: String,
    },
    /// A logically dependent operation of the same transaction aborted, so
    /// this operation must abort as well (LD propagation).
    LogicalDependency {
        /// Transaction whose failure propagated here.
        txn: TxnId,
    },
    /// The workload injected an artificial failure (used by the abort-ratio
    /// sweeps in Figure 20).
    Injected,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::ConsistencyViolation { state, detail } => {
                write!(f, "consistency violation on {state}: {detail}")
            }
            AbortReason::LogicalDependency { txn } => {
                write!(f, "aborted because transaction {txn} aborted")
            }
            AbortReason::Injected => write!(f, "workload-injected abort"),
        }
    }
}

/// Top-level error type of the MorphStream reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MorphError {
    /// A table id was used that the state store does not know about.
    UnknownTable(u32),
    /// A key was accessed that was never pre-allocated and auto-expansion is
    /// disabled for the table.
    UnknownKey {
        /// Offending reference.
        state: StateRef,
    },
    /// A read targeted a timestamp for which no version exists yet.
    NoVisibleVersion {
        /// Offending reference.
        state: StateRef,
        /// Timestamp of the reader.
        at: Timestamp,
    },
    /// The engine was configured inconsistently (e.g. zero worker threads).
    InvalidConfig(String),
    /// An internal invariant was violated; indicates a bug rather than a user
    /// error.
    Internal(String),
}

impl fmt::Display for MorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorphError::UnknownTable(id) => write!(f, "unknown table id {id}"),
            MorphError::UnknownKey { state } => write!(f, "unknown key {state}"),
            MorphError::NoVisibleVersion { state, at } => {
                write!(f, "no version of {state} visible at timestamp {at}")
            }
            MorphError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MorphError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for MorphError {}

/// Result alias used across the workspace.
pub type Result<T, E = MorphError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TableId;

    #[test]
    fn abort_reasons_render_human_readable_text() {
        let r = AbortReason::ConsistencyViolation {
            state: StateRef::new(TableId(0), 3),
            detail: "balance below zero".into(),
        };
        assert!(r.to_string().contains("balance below zero"));
        assert!(AbortReason::LogicalDependency { txn: 9 }
            .to_string()
            .contains('9'));
        assert_eq!(AbortReason::Injected.to_string(), "workload-injected abort");
    }

    #[test]
    fn errors_render_offending_identifiers() {
        let e = MorphError::NoVisibleVersion {
            state: StateRef::new(TableId(2), 7),
            at: 11,
        };
        let msg = e.to_string();
        assert!(msg.contains("table#2[7]"));
        assert!(msg.contains("11"));
        assert!(MorphError::UnknownTable(5).to_string().contains('5'));
    }

    #[test]
    fn morph_error_implements_std_error() {
        fn takes_error(_e: &dyn std::error::Error) {}
        takes_error(&MorphError::Internal("x".into()));
    }
}
