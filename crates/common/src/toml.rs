//! A zero-dependency parser for the small TOML subset used by declarative
//! topology files (`scenarios/*.toml`).
//!
//! The workspace is offline and vendoring the full `toml` crate (and its
//! serde stack) for flat configuration files would be out of proportion, so
//! this module implements exactly what the dataflow loader needs:
//!
//! * top-level key/value pairs, `[table]` sections and `[[array-of-tables]]`
//!   entries (file order is preserved for both);
//! * basic strings with `\" \\ \n \t \r` escapes, integers (with `_`
//!   separators), floats, booleans, and single-line homogeneous arrays of
//!   those primitives;
//! * `#` comments and blank lines.
//!
//! Dotted keys, inline tables, multi-line strings, dates, and nested arrays
//! are *not* supported and fail with a line-numbered [`TomlError`] — the
//! loader surfaces that to the user with the file name attached. Malformed
//! input of any kind must produce an error, never a panic; the proptest
//! suite in `tests/` feeds this parser arbitrary byte soup to keep that
//! guarantee honest.

use std::fmt;

/// A parsed TOML value (the subset's scalar and array types).
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// A basic string (escapes already resolved).
    String(String),
    /// A 64-bit signed integer.
    Integer(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Boolean(bool),
    /// A single-line array of primitive values.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            TomlValue::Integer(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float; integers widen losslessly enough for config
    /// knobs (`theta = 0.6` and `theta = 1` both parse).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            TomlValue::Float(f) => Some(*f),
            TomlValue::Integer(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[TomlValue]> {
        match self {
            TomlValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Human name of the value's type, used in loader error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            TomlValue::String(_) => "string",
            TomlValue::Integer(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Boolean(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }
}

/// An insertion-ordered table of key/value pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlTable {
    entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate `(key, value)` pairs in file order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TomlValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a pair (test/serializer helper; the parser rejects duplicates).
    pub fn insert(&mut self, key: impl Into<String>, value: TomlValue) {
        self.entries.push((key.into(), value));
    }
}

/// A parsed document: the top-level table, named `[table]` sections, and
/// `[[name]]` array-of-tables entries, all in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TomlDocument {
    /// Key/value pairs appearing before any section header.
    pub root: TomlTable,
    /// `[name]` sections in file order.
    pub tables: Vec<(String, TomlTable)>,
    /// `[[name]]` entries in file order (one element per occurrence).
    pub arrays: Vec<(String, TomlTable)>,
}

impl TomlDocument {
    /// Parse `input`; on failure the error carries the 1-based line number.
    pub fn parse(input: &str) -> Result<TomlDocument, TomlError> {
        Parser::new(input).run()
    }

    /// The first `[name]` section, if present.
    pub fn table(&self, name: &str) -> Option<&TomlTable> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// All `[[name]]` entries, in file order.
    pub fn array_of(&self, name: &str) -> impl Iterator<Item = &TomlTable> {
        let name = name.to_string();
        self.arrays
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|(_, t)| t)
    }

    /// Serialize back to TOML text. Parsing the output reproduces the
    /// document (the round-trip property checked by the fuzz suite).
    pub fn to_toml_string(&self) -> String {
        let mut out = String::new();
        write_table_body(&mut out, &self.root);
        for (name, table) in &self.tables {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("[{name}]\n"));
            write_table_body(&mut out, table);
        }
        for (name, table) in &self.arrays {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("[[{name}]]\n"));
            write_table_body(&mut out, table);
        }
        out
    }
}

fn write_table_body(out: &mut String, table: &TomlTable) {
    for (key, value) in table.iter() {
        out.push_str(key);
        out.push_str(" = ");
        write_value(out, value);
        out.push('\n');
    }
}

fn write_value(out: &mut String, value: &TomlValue) {
    match value {
        TomlValue::String(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        TomlValue::Integer(n) => out.push_str(&n.to_string()),
        TomlValue::Float(f) => {
            // Keep a decimal point (or exponent) so the value re-parses as a
            // float rather than collapsing to an integer.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                out.push_str(&s);
            } else {
                out.push_str(&s);
                out.push_str(".0");
            }
        }
        TomlValue::Boolean(b) => out.push_str(if *b { "true" } else { "false" }),
        TomlValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
    }
}

/// A parse error with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// Where key/value pairs are currently being collected.
enum Section {
    Root,
    Table(usize),
    Array(usize),
}

struct Parser<'a> {
    input: &'a str,
    doc: TomlDocument,
    section: Section,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            doc: TomlDocument::default(),
            section: Section::Root,
        }
    }

    fn run(mut self) -> Result<TomlDocument, TomlError> {
        for (idx, raw) in self.input.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let name = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| err(line_no, "unterminated [[array-of-tables]] header"))?
                    .trim();
                check_name(name, line_no)?;
                self.doc
                    .arrays
                    .push((name.to_string(), TomlTable::default()));
                self.section = Section::Array(self.doc.arrays.len() - 1);
            } else if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(line_no, "unterminated [table] header"))?
                    .trim();
                check_name(name, line_no)?;
                if self.doc.tables.iter().any(|(n, _)| n == name) {
                    return Err(err(line_no, format!("duplicate table [{name}]")));
                }
                self.doc
                    .tables
                    .push((name.to_string(), TomlTable::default()));
                self.section = Section::Table(self.doc.tables.len() - 1);
            } else {
                let (key, value) = parse_key_value(line, line_no)?;
                let table = match self.section {
                    Section::Root => &mut self.doc.root,
                    Section::Table(i) => &mut self.doc.tables[i].1,
                    Section::Array(i) => &mut self.doc.arrays[i].1,
                };
                if table.contains(&key) {
                    return Err(err(line_no, format!("duplicate key {key:?}")));
                }
                table.insert(key, value);
            }
        }
        Ok(self.doc)
    }
}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Strip a `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn check_name(name: &str, line: usize) -> Result<(), TomlError> {
    if name.is_empty() {
        return Err(err(line, "empty table name"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
    {
        return Err(err(line, format!("invalid table name {name:?}")));
    }
    Ok(())
}

fn parse_key_value(line: &str, line_no: usize) -> Result<(String, TomlValue), TomlError> {
    let eq = line
        .find('=')
        .ok_or_else(|| err(line_no, format!("expected `key = value`, got {line:?}")))?;
    let key = line[..eq].trim();
    if key.is_empty() {
        return Err(err(line_no, "empty key"));
    }
    if !key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-'))
    {
        return Err(err(
            line_no,
            format!("invalid key {key:?} (bare keys only: [A-Za-z0-9_-])"),
        ));
    }
    let raw_value = line[eq + 1..].trim();
    let (value, rest) = parse_value(raw_value, line_no)?;
    if !rest.trim().is_empty() {
        return Err(err(
            line_no,
            format!("trailing characters after value: {:?}", rest.trim()),
        ));
    }
    Ok((key.to_string(), value))
}

/// Parse one value at the start of `input`; returns it plus the unconsumed
/// tail (used for array elements).
fn parse_value(input: &str, line_no: usize) -> Result<(TomlValue, &str), TomlError> {
    let input = input.trim_start();
    if input.is_empty() {
        return Err(err(line_no, "missing value"));
    }
    if let Some(rest) = input.strip_prefix('"') {
        return parse_string(rest, line_no);
    }
    if let Some(rest) = input.strip_prefix('[') {
        return parse_array(rest, line_no);
    }
    // Bare token: runs until a delimiter that can follow a value.
    let end = input
        .find(|c: char| c == ',' || c == ']' || c.is_whitespace())
        .unwrap_or(input.len());
    let (token, rest) = input.split_at(end);
    if token == "true" {
        return Ok((TomlValue::Boolean(true), rest));
    }
    if token == "false" {
        return Ok((TomlValue::Boolean(false), rest));
    }
    parse_number(token, line_no).map(|v| (v, rest))
}

fn parse_string(body: &str, line_no: usize) -> Result<(TomlValue, &str), TomlError> {
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((TomlValue::String(out), &body[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => {
                    return Err(err(line_no, format!("unsupported escape \\{other}")))
                }
                None => return Err(err(line_no, "unterminated escape")),
            },
            c => out.push(c),
        }
    }
    Err(err(line_no, "unterminated string"))
}

fn parse_array(body: &str, line_no: usize) -> Result<(TomlValue, &str), TomlError> {
    let mut items = Vec::new();
    let mut rest = body.trim_start();
    loop {
        if let Some(after) = rest.strip_prefix(']') {
            return Ok((TomlValue::Array(items), after));
        }
        if rest.is_empty() {
            return Err(err(line_no, "unterminated array"));
        }
        if rest.starts_with('[') {
            return Err(err(line_no, "nested arrays are not supported"));
        }
        let (value, after) = parse_value(rest, line_no)?;
        items.push(value);
        rest = after.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.starts_with(']') {
            return Err(err(line_no, "expected `,` or `]` in array"));
        }
    }
}

fn parse_number(token: &str, line_no: usize) -> Result<TomlValue, TomlError> {
    let cleaned: String = token.chars().filter(|&c| c != '_').collect();
    // Reject `_` in positions plain `parse` would accept after stripping
    // (leading/trailing/double separators are invalid TOML).
    if token.contains("__")
        || token.starts_with('_')
        || token.ends_with('_')
        || token.contains("_.")
        || token.contains("._")
    {
        return Err(err(line_no, format!("malformed number {token:?}")));
    }
    if let Ok(n) = cleaned.parse::<i64>() {
        return Ok(TomlValue::Integer(n));
    }
    if cleaned.contains(['.', 'e', 'E']) && !cleaned.contains("0x") {
        if let Ok(f) = cleaned.parse::<f64>() {
            if f.is_finite() {
                return Ok(TomlValue::Float(f));
            }
        }
    }
    Err(err(line_no, format!("unrecognised value {token:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_section_kinds() {
        let doc = TomlDocument::parse(
            r#"
            # a scenario
            title = "demo"

            [topology]
            name = "fraud"
            concurrent = false

            [[stages]]
            id = "enrich"
            parallelism = 1

            [[stages]]
            id = "score"
            inputs = ["enrich"]
            "#,
        )
        .unwrap();
        assert_eq!(doc.root.get("title").unwrap().as_str(), Some("demo"));
        let topo = doc.table("topology").unwrap();
        assert_eq!(topo.get("name").unwrap().as_str(), Some("fraud"));
        assert_eq!(topo.get("concurrent").unwrap().as_bool(), Some(false));
        let stages: Vec<_> = doc.array_of("stages").collect();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].get("id").unwrap().as_str(), Some("enrich"));
        let inputs = stages[1].get("inputs").unwrap().as_array().unwrap();
        assert_eq!(inputs[0].as_str(), Some("enrich"));
    }

    #[test]
    fn scalar_types_parse() {
        let doc = TomlDocument::parse(
            "i = 42\nneg = -7\nsep = 1_000_000\nf = 0.75\nexp = 1e3\nb = true\ns = \"a\\nb\"\narr = [1, 2, 3]\n",
        )
        .unwrap();
        assert_eq!(doc.root.get("i").unwrap().as_integer(), Some(42));
        assert_eq!(doc.root.get("neg").unwrap().as_integer(), Some(-7));
        assert_eq!(doc.root.get("sep").unwrap().as_integer(), Some(1_000_000));
        assert_eq!(doc.root.get("f").unwrap().as_float(), Some(0.75));
        assert_eq!(doc.root.get("exp").unwrap().as_float(), Some(1000.0));
        assert_eq!(doc.root.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(doc.root.get("s").unwrap().as_str(), Some("a\nb"));
        assert_eq!(doc.root.get("arr").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn comments_and_quoted_hashes() {
        let doc = TomlDocument::parse("s = \"a#b\" # trailing\n").unwrap();
        assert_eq!(doc.root.get("s").unwrap().as_str(), Some("a#b"));
    }

    #[test]
    fn integers_widen_to_float_on_demand() {
        let doc = TomlDocument::parse("theta = 1\n").unwrap();
        assert_eq!(doc.root.get("theta").unwrap().as_float(), Some(1.0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = TomlDocument::parse("ok = 1\nbad line\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = TomlDocument::parse("x = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = TomlDocument::parse("[broken\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = TomlDocument::parse("x = [1, 2\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicates_are_rejected() {
        assert!(TomlDocument::parse("a = 1\na = 2\n").is_err());
        assert!(TomlDocument::parse("[t]\n[t]\n").is_err());
        // Two [[t]] entries are fine — that is the point of arrays-of-tables.
        assert!(TomlDocument::parse("[[t]]\na = 1\n[[t]]\na = 2\n").is_ok());
    }

    #[test]
    fn unsupported_constructs_error_cleanly() {
        assert!(TomlDocument::parse("x = [[1]]\n").is_err());
        assert!(TomlDocument::parse("x = {a = 1}\n").is_err());
        assert!(TomlDocument::parse("x = 1979-05-27\n").is_err());
        assert!(TomlDocument::parse("x = 1 trailing\n").is_err());
        // Underscores are fine in keys, just not leading/trailing in numbers.
        assert!(TomlDocument::parse("_key = 1\n").is_ok());
        assert!(TomlDocument::parse("x = _1\n").is_err());
        assert!(TomlDocument::parse("x = 1_\n").is_err());
    }

    #[test]
    fn round_trips_through_the_serializer() {
        let text = "a = 1\ns = \"x\\\"y\"\n\n[t]\nf = 2.5\n\n[[arr]]\nb = true\nv = [1, 2]\n";
        let doc = TomlDocument::parse(text).unwrap();
        let rendered = doc.to_toml_string();
        let reparsed = TomlDocument::parse(&rendered).unwrap();
        assert_eq!(doc, reparsed);
    }
}
