//! Measurement infrastructure.
//!
//! The evaluation reports four kinds of measurements:
//! * throughput (events per second) — Figures 11–15, 17–21;
//! * end-to-end latency distributions (CDF / percentiles) — Figures 12b, 13b;
//! * a runtime breakdown into useful / sync / lock / construct / explore /
//!   abort time — Figure 16a and 21a;
//! * memory retained by auxiliary structures over time — Figures 16b, 17b.
//!
//! This module provides small, allocation-light recorders for all four.

use std::time::Duration;

/// Buckets of the Figure 16a runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BreakdownBucket {
    /// Time spent running user-defined functions and touching state.
    Useful,
    /// Blocking on barriers or waiting for other threads / mode switching.
    Sync,
    /// Waiting to acquire or inserting locks / latches.
    Lock,
    /// Building auxiliary structures (TPG, operation chains, partitions).
    Construct,
    /// Searching for ready work in the TPG / chains.
    Explore,
    /// Wasted computation due to aborts, rollbacks, and redos.
    Abort,
}

impl BreakdownBucket {
    /// All buckets in presentation order.
    pub const ALL: [BreakdownBucket; 6] = [
        BreakdownBucket::Useful,
        BreakdownBucket::Sync,
        BreakdownBucket::Lock,
        BreakdownBucket::Construct,
        BreakdownBucket::Explore,
        BreakdownBucket::Abort,
    ];

    /// Short label used by the bench harness output.
    pub fn label(self) -> &'static str {
        match self {
            BreakdownBucket::Useful => "useful",
            BreakdownBucket::Sync => "sync",
            BreakdownBucket::Lock => "lock",
            BreakdownBucket::Construct => "construct",
            BreakdownBucket::Explore => "explore",
            BreakdownBucket::Abort => "abort",
        }
    }
}

/// Accumulated per-bucket durations. Buckets accumulate across threads, so the
/// totals can exceed wall-clock time on a multicore run (as in the paper's
/// clock-tick accounting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    nanos: [u64; 6],
}

impl Breakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to `bucket`.
    #[inline]
    pub fn add(&mut self, bucket: BreakdownBucket, d: Duration) {
        self.nanos[bucket as usize] += d.as_nanos() as u64;
    }

    /// Add raw nanoseconds to `bucket`.
    #[inline]
    pub fn add_nanos(&mut self, bucket: BreakdownBucket, nanos: u64) {
        self.nanos[bucket as usize] += nanos;
    }

    /// Total time recorded in `bucket`.
    #[inline]
    pub fn get(&self, bucket: BreakdownBucket) -> Duration {
        Duration::from_nanos(self.nanos[bucket as usize])
    }

    /// Sum over all buckets.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().sum())
    }

    /// Fraction of the total attributed to `bucket` (0 if nothing recorded).
    pub fn fraction(&self, bucket: BreakdownBucket) -> f64 {
        let total = self.nanos.iter().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            self.nanos[bucket as usize] as f64 / total as f64
        }
    }

    /// Merge another breakdown into this one (e.g. per-thread partials).
    pub fn merge(&mut self, other: &Breakdown) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
        }
    }

    /// Per-bucket difference `self - earlier`, clamped at zero. Used to turn
    /// two cumulative snapshots into the breakdown of the interval between
    /// them (e.g. one topology propagation wave).
    pub fn saturating_sub(&self, earlier: &Breakdown) -> Breakdown {
        let mut delta = Breakdown::new();
        for i in 0..self.nanos.len() {
            delta.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        delta
    }
}

/// Wall-clock timings of the two pipeline stages a punctuation flows through
/// (construct = decompose + TPG build, execute = schedule + run + post), plus
/// how much of the construction ran *concurrently* with another batch's
/// execution. `overlap` is the Figure 16 "construction overhead hidden behind
/// execution" metric: in the serial engine it is zero; with pipelined
/// construction it approaches `min(construct, execute)` of adjacent batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Time spent decomposing events and building the TPG.
    pub construct: Duration,
    /// Time spent scheduling, executing and post-processing.
    pub execute: Duration,
    /// Portion of `construct` that ran while another batch was executing.
    pub overlap: Duration,
}

impl StageTimings {
    /// Zero timings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum another measurement into this one (per-batch → per-run folding).
    pub fn merge(&mut self, other: &StageTimings) {
        self.construct += other.construct;
        self.execute += other.execute;
        self.overlap += other.overlap;
    }

    /// Per-stage difference `self - earlier`, clamped at zero — the stage
    /// timings of the interval between two cumulative snapshots.
    pub fn saturating_sub(&self, earlier: &StageTimings) -> StageTimings {
        StageTimings {
            construct: self.construct.saturating_sub(earlier.construct),
            execute: self.execute.saturating_sub(earlier.execute),
            overlap: self.overlap.saturating_sub(earlier.overlap),
        }
    }

    /// Fraction of construction time hidden behind execution (0 when no
    /// construction time was recorded).
    pub fn overlap_fraction(&self) -> f64 {
        let construct = self.construct.as_secs_f64();
        if construct <= 0.0 {
            0.0
        } else {
            (self.overlap.as_secs_f64() / construct).min(1.0)
        }
    }
}

/// Records end-to-end latencies and produces percentiles / CDF points.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a latency sample.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_micros() as u64);
        self.sorted = false;
    }

    /// Record a latency already expressed in microseconds.
    #[inline]
    pub fn record_micros(&mut self, micros: u64) {
        self.samples_us.push(micros);
        self.sorted = false;
    }

    /// Number of recorded samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True when no samples were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Merge the samples of another recorder.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
    }

    /// Percentile in `[0, 100]` as a duration; `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<Duration> {
        if self.samples_us.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples_us.len() - 1) as f64).round() as usize;
        Some(Duration::from_micros(self.samples_us[rank]))
    }

    /// Mean latency; `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples_us.is_empty() {
            return None;
        }
        let sum: u64 = self.samples_us.iter().sum();
        Some(Duration::from_micros(sum / self.samples_us.len() as u64))
    }

    /// Bucket the recorded samples into a [`LatencyHistogram`] — the fixed
    /// cumulative-bucket form Prometheus scrapes want, computed on demand so
    /// the hot recording path stays a plain `Vec` push.
    pub fn histogram(&self) -> LatencyHistogram {
        let mut hist = LatencyHistogram::new();
        for &us in &self.samples_us {
            hist.observe_micros(us);
        }
        hist
    }

    /// CDF as `(latency, cumulative_percent)` pairs with `points` entries,
    /// matching the latency plots of Figures 12b and 13b.
    pub fn cdf(&mut self, points: usize) -> Vec<(Duration, f64)> {
        if self.samples_us.is_empty() || points == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples_us.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let rank = ((frac * (n - 1) as f64).round()) as usize;
                (Duration::from_micros(self.samples_us[rank]), frac * 100.0)
            })
            .collect()
    }
}

/// Upper bounds (milliseconds) of the latency histogram buckets, excluding
/// the implicit `+Inf` bucket. Spans sub-millisecond in-process latencies up
/// to seconds of queueing under back-pressure.
pub const LATENCY_BUCKET_BOUNDS_MS: [f64; 12] = [
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
];

/// A fixed-bucket latency histogram in the Prometheus `_bucket`/`_sum`/
/// `_count` shape: per-bucket counts (non-cumulative internally), total
/// observed milliseconds, and the sample count. Fold-able across sessions
/// and delta-able between scrapes, like the counter fields it travels with.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHistogram {
    /// Samples at or below each bound of [`LATENCY_BUCKET_BOUNDS_MS`], plus
    /// a final overflow (`+Inf`) slot.
    buckets: [u64; 13],
    /// Sum of all observed latencies, in milliseconds.
    pub sum_ms: f64,
    /// Number of observations.
    pub count: u64,
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency expressed in microseconds.
    pub fn observe_micros(&mut self, micros: u64) {
        let ms = micros as f64 / 1000.0;
        let slot = LATENCY_BUCKET_BOUNDS_MS
            .iter()
            .position(|&bound| ms <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_MS.len());
        self.buckets[slot] += 1;
        self.sum_ms += ms;
        self.count += 1;
    }

    /// Cumulative `(upper_bound_ms, count)` rows in exposition order; the
    /// final row is the `+Inf` bucket and always equals `count`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut rows = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            running += n;
            let bound = LATENCY_BUCKET_BOUNDS_MS
                .get(i)
                .copied()
                .unwrap_or(f64::INFINITY);
            rows.push((bound, running));
        }
        rows
    }

    /// Add another histogram's observations into this one.
    pub fn fold(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum_ms += other.sum_ms;
        self.count += other.count;
    }

    /// Per-bucket difference `self - earlier`, clamped at zero — the
    /// observations of the interval between two cumulative snapshots.
    pub fn saturating_delta(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut delta = LatencyHistogram::new();
        for (i, slot) in delta.buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        delta.sum_ms = (self.sum_ms - earlier.sum_ms).max(0.0);
        delta.count = self.count.saturating_sub(earlier.count);
        delta
    }
}

/// Throughput helper: events processed over elapsed wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Throughput {
    /// Number of input events processed (committed or aborted).
    pub events: u64,
    /// Wall-clock processing time.
    pub elapsed: Duration,
}

impl Throughput {
    /// Build from raw parts.
    pub fn new(events: u64, elapsed: Duration) -> Self {
        Self { events, elapsed }
    }

    /// Events per second; 0 when no time elapsed.
    pub fn events_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events as f64 / secs
        }
    }

    /// Thousands of events per second, the unit of the paper's plots.
    pub fn k_events_per_second(&self) -> f64 {
        self.events_per_second() / 1_000.0
    }

    /// Merge with another measurement (summing events and time).
    pub fn merge(&mut self, other: &Throughput) {
        self.events += other.events;
        self.elapsed += other.elapsed;
    }
}

/// Byte-accounting of auxiliary structures, standing in for the JVM memory
/// footprint plots (Figures 16b / 17b).
#[derive(Debug, Clone, Default)]
pub struct MemoryTimeline {
    points: Vec<(Duration, u64)>,
}

impl MemoryTimeline {
    /// Empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the bytes retained at elapsed time `at`.
    pub fn record(&mut self, at: Duration, bytes: u64) {
        self.points.push((at, bytes));
    }

    /// Recorded `(elapsed, bytes)` samples in insertion order.
    pub fn points(&self) -> &[(Duration, u64)] {
        &self.points
    }

    /// Largest recorded footprint.
    pub fn peak_bytes(&self) -> u64 {
        self.points.iter().map(|(_, b)| *b).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_reports_fractions() {
        let mut b = Breakdown::new();
        b.add(BreakdownBucket::Useful, Duration::from_millis(30));
        b.add(BreakdownBucket::Sync, Duration::from_millis(10));
        b.add_nanos(BreakdownBucket::Useful, 0);
        assert_eq!(b.get(BreakdownBucket::Useful), Duration::from_millis(30));
        assert_eq!(b.total(), Duration::from_millis(40));
        assert!((b.fraction(BreakdownBucket::Useful) - 0.75).abs() < 1e-9);
        assert_eq!(b.fraction(BreakdownBucket::Abort), 0.0);
    }

    #[test]
    fn breakdown_merge_sums_per_bucket() {
        let mut a = Breakdown::new();
        a.add(BreakdownBucket::Lock, Duration::from_millis(5));
        let mut b = Breakdown::new();
        b.add(BreakdownBucket::Lock, Duration::from_millis(7));
        b.add(BreakdownBucket::Explore, Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get(BreakdownBucket::Lock), Duration::from_millis(12));
        assert_eq!(a.get(BreakdownBucket::Explore), Duration::from_millis(3));
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = Breakdown::new();
        for bucket in BreakdownBucket::ALL {
            assert_eq!(b.fraction(bucket), 0.0);
            assert!(!bucket.label().is_empty());
        }
    }

    #[test]
    fn latency_percentiles_are_monotonic() {
        let mut rec = LatencyRecorder::new();
        for i in (1..=1000).rev() {
            rec.record(Duration::from_micros(i));
        }
        let p50 = rec.percentile(50.0).unwrap();
        let p99 = rec.percentile(99.0).unwrap();
        let p0 = rec.percentile(0.0).unwrap();
        let p100 = rec.percentile(100.0).unwrap();
        assert!(p0 <= p50 && p50 <= p99 && p99 <= p100);
        assert_eq!(p100, Duration::from_micros(1000));
    }

    #[test]
    fn latency_mean_and_empty_behaviour() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert!(rec.mean().is_none());
        assert!(rec.percentile(50.0).is_none());
        rec.record_micros(10);
        rec.record_micros(30);
        assert_eq!(rec.mean().unwrap(), Duration::from_micros(20));
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn latency_cdf_is_non_decreasing() {
        let mut rec = LatencyRecorder::new();
        for i in 0..500 {
            rec.record_micros(1000 - i);
        }
        let cdf = rec.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        a.record_micros(1);
        let mut b = LatencyRecorder::new();
        b.record_micros(100);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.percentile(100.0).unwrap(), Duration::from_micros(100));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_fold() {
        let mut rec = LatencyRecorder::new();
        rec.record_micros(400); // 0.4ms → first bucket
        rec.record_micros(3_000); // 3ms → ≤5 bucket
        rec.record_micros(10_000_000); // 10s → +Inf
        let hist = rec.histogram();
        assert_eq!(hist.count, 3);
        let rows = hist.cumulative_buckets();
        assert_eq!(rows.first().unwrap(), &(0.5, 1));
        // every row is non-decreasing and the +Inf row equals the count
        for w in rows.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let last = rows.last().unwrap();
        assert!(last.0.is_infinite());
        assert_eq!(last.1, 3);
        assert!((hist.sum_ms - (0.4 + 3.0 + 10_000.0)).abs() < 1e-6);

        let mut folded = LatencyHistogram::new();
        folded.fold(&hist);
        folded.fold(&hist);
        assert_eq!(folded.count, 6);
        let delta = folded.saturating_delta(&hist);
        assert_eq!(delta, hist);
        assert_eq!(hist.saturating_delta(&folded).count, 0);
    }

    #[test]
    fn throughput_units() {
        let t = Throughput::new(50_000, Duration::from_secs(2));
        assert!((t.events_per_second() - 25_000.0).abs() < 1e-6);
        assert!((t.k_events_per_second() - 25.0).abs() < 1e-6);
        let zero = Throughput::new(10, Duration::ZERO);
        assert_eq!(zero.events_per_second(), 0.0);
    }

    #[test]
    fn throughput_merge_sums_both_fields() {
        let mut a = Throughput::new(100, Duration::from_secs(1));
        a.merge(&Throughput::new(300, Duration::from_secs(3)));
        assert_eq!(a.events, 400);
        assert_eq!(a.elapsed, Duration::from_secs(4));
    }

    #[test]
    fn stage_timings_merge_and_overlap_fraction() {
        let mut a = StageTimings::new();
        assert_eq!(a.overlap_fraction(), 0.0);
        a.merge(&StageTimings {
            construct: Duration::from_millis(10),
            execute: Duration::from_millis(40),
            overlap: Duration::from_millis(5),
        });
        a.merge(&StageTimings {
            construct: Duration::from_millis(10),
            execute: Duration::from_millis(20),
            overlap: Duration::from_millis(10),
        });
        assert_eq!(a.construct, Duration::from_millis(20));
        assert_eq!(a.execute, Duration::from_millis(60));
        assert_eq!(a.overlap, Duration::from_millis(15));
        assert!((a.overlap_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn memory_timeline_tracks_peak() {
        let mut m = MemoryTimeline::new();
        assert_eq!(m.peak_bytes(), 0);
        m.record(Duration::from_secs(1), 100);
        m.record(Duration::from_secs(2), 500);
        m.record(Duration::from_secs(3), 200);
        assert_eq!(m.peak_bytes(), 500);
        assert_eq!(m.points().len(), 3);
    }
}
