//! Minimal hand-rolled JSON support shared across the workspace.
//!
//! The offline build environment has no registry access, so `serde` is
//! feature-gated off everywhere; this module is the single serialization
//! path used by the bench harness's `BENCH_*.json` artifacts, the engine's
//! report snapshots, and the server's wire protocol — instead of each crate
//! hand-formatting its own JSON.
//!
//! Two halves:
//!
//! * [`JsonObject`] — an ordered string/number field writer producing one
//!   compact JSON object (the only shape the workspace emits);
//! * [`parse_object`] — a strict parser for one *flat* JSON object (string,
//!   number, and boolean values; no nesting except arrays of numbers), which
//!   is exactly the shape the JSON-lines wire protocol accepts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one compact JSON object with ordered fields.
///
/// ```
/// use morphstream_common::json::JsonObject;
/// let row = JsonObject::new()
///     .string("system", "MorphStream")
///     .number("committed", 42)
///     .fixed("rate", 1.5, 3)
///     .build();
/// assert_eq!(row, r#"{"system":"MorphStream","committed":42,"rate":1.500}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a string field (escaped).
    #[must_use]
    pub fn string(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// Append an integer field.
    #[must_use]
    pub fn number(mut self, key: &str, value: impl Into<i128>) -> Self {
        self.fields
            .push((key.to_string(), value.into().to_string()));
        self
    }

    /// Append an unsigned integer field.
    #[must_use]
    pub fn unsigned(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a float field with `decimals` fractional digits. Non-finite
    /// values (not representable in JSON) are written as `null`.
    #[must_use]
    pub fn fixed(mut self, key: &str, value: f64, decimals: usize) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.decimals$}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Append a boolean field.
    #[must_use]
    pub fn boolean(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a pre-rendered JSON value (object, array, or `null`) verbatim.
    #[must_use]
    pub fn raw(mut self, key: &str, rendered: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), rendered.into()));
        self
    }

    /// Append an array of pre-rendered JSON values.
    #[must_use]
    pub fn array(self, key: &str, items: impl IntoIterator<Item = String>) -> Self {
        let body: Vec<String> = items.into_iter().collect();
        self.raw(key, format!("[{}]", body.join(",")))
    }

    /// Render the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(key), value);
        }
        out.push('}');
        out
    }
}

/// A value inside a flat JSON object (see [`parse_object`]).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    String(String),
    /// A number (parsed as f64; integral values round-trip exactly up to
    /// 2^53).
    Number(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
    /// An array of numbers (the only nested shape the wire protocol needs).
    Numbers(Vec<f64>),
}

impl JsonValue {
    /// The value as an unsigned integer, when it is a non-negative integral
    /// number that fits losslessly in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, when it is an integral number that fits
    /// losslessly in an `f64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array of unsigned integers.
    pub fn as_u64_array(&self) -> Option<Vec<u64>> {
        match self {
            JsonValue::Numbers(ns) => ns
                .iter()
                .map(|n| JsonValue::Number(*n).as_u64())
                .collect::<Option<Vec<u64>>>(),
            _ => None,
        }
    }
}

/// Why [`parse_object`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the first problem found.
    pub reason: String,
    /// Byte offset of the problem in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: impl Into<String>) -> JsonParseError {
        JsonParseError {
            reason: reason.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // resynchronising on char boundaries is safe.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("empty input"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if value.is_finite() {
            Ok(value)
        } else {
            Err(self.error("non-finite number"))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Numbers(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_number()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Numbers(items));
                        }
                        _ => return Err(self.error("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => Ok(JsonValue::Number(self.parse_number()?)),
            Some(b'{') => Err(self.error("nested objects are not supported")),
            _ => Err(self.error("expected a value")),
        }
    }

    fn parse_keyword(
        &mut self,
        keyword: &str,
        value: JsonValue,
    ) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {keyword:?}")))
        }
    }
}

/// Parse one flat JSON object (`{"key": value, ...}`) into a key → value map.
///
/// Values may be strings, numbers, booleans, `null`, or arrays of numbers;
/// nested objects are rejected. Trailing content after the closing brace is
/// rejected, so a JSON-lines frame cannot smuggle a second message.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, JsonValue>, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            let value = p.parse_value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(p.error("expected ',' or '}' in object")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after object"));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_renders_ordered_fields() {
        let row = JsonObject::new()
            .string("name", "a\"b")
            .number("n", -3)
            .unsigned("u", 7)
            .fixed("f", 0.125, 3)
            .boolean("ok", true)
            .raw("nested", "null")
            .array("xs", ["1".to_string(), "2".to_string()])
            .build();
        assert_eq!(
            row,
            r#"{"name":"a\"b","n":-3,"u":7,"f":0.125,"ok":true,"nested":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(
            JsonObject::new().fixed("x", f64::NAN, 2).build(),
            r#"{"x":null}"#
        );
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn parses_flat_objects() {
        let map = parse_object(
            r#" {"type":"transfer", "from": 1, "to": 2, "amount": -5, "keys": [1, 2, 3], "b": true, "z": null} "#,
        )
        .unwrap();
        assert_eq!(map["type"].as_str(), Some("transfer"));
        assert_eq!(map["from"].as_u64(), Some(1));
        assert_eq!(map["amount"].as_i64(), Some(-5));
        assert_eq!(map["keys"].as_u64_array(), Some(vec![1, 2, 3]));
        assert_eq!(map["b"], JsonValue::Bool(true));
        assert_eq!(map["z"], JsonValue::Null);
    }

    #[test]
    fn builder_output_round_trips_through_the_parser() {
        let rendered = JsonObject::new()
            .string("type", "deposit")
            .unsigned("account", 42)
            .number("amount", 17)
            .build();
        let map = parse_object(&rendered).unwrap();
        assert_eq!(map["type"].as_str(), Some("deposit"));
        assert_eq!(map["account"].as_u64(), Some(42));
        assert_eq!(map["amount"].as_i64(), Some(17));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{}}",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":{"b":1}}"#,
            r#"{"a":[1,"x"]}"#,
            r#"{"a":1}{"b":2}"#,
            r#"{"a":1e999}"#,
            r#"{"a":"unterminated}"#,
            "not json at all",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip_in_strings() {
        let map = parse_object(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(map["s"].as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn integer_extraction_guards_range_and_fraction() {
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(-1.0).as_i64(), Some(-1));
        assert_eq!(JsonValue::String("1".into()).as_u64(), None);
    }
}
