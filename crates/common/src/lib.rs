//! Shared foundation for the MorphStream reproduction.
//!
//! This crate contains the vocabulary types used across the workspace
//! (keys, values, timestamps, transaction identifiers), the workload
//! configuration knobs of the paper's Table 6, deterministic random number
//! generation and Zipfian sampling used by the workload generators, and the
//! measurement infrastructure (throughput, latency distributions, and the
//! runtime breakdown of Figure 16a).
//!
//! Nothing in this crate knows about transactions or scheduling; it exists so
//! that the planning, scheduling, execution, and benchmarking crates agree on
//! primitive representations without depending on each other.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod rng;
pub mod toml;
pub mod types;
pub mod zipf;

pub use config::{EngineConfig, TopologyConfig, WorkloadConfig};
pub use error::{AbortReason, MorphError};
pub use types::{Key, OpId, StateRef, TableId, Timestamp, TxnId, Value};
