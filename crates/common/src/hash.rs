//! Small deterministic hashing utilities shared by state digests and tests.

/// Incremental FNV-1a (64-bit). Deterministic across platforms and runs, so
/// digests can be compared between thread counts, pipeline modes, and CI
/// hosts. Not a cryptographic hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Hasher resumed from a previously [`finish`](Self::finish)ed state —
    /// lets a running digest survive a process restart (the recovery path
    /// checkpoints the state and keeps hashing where it left off).
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Mix `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.state ^= *b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The digest accumulated so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = Fnv1a::new();
        a.update(b"hello");
        a.update(b"world");
        let mut b = Fnv1a::new();
        b.update(b"helloworld");
        // chunking does not matter, only the byte stream
        assert_eq!(a.finish(), b.finish());

        let mut c = Fnv1a::new();
        c.update(b"worldhello");
        assert_ne!(a.finish(), c.finish());
        // empty hasher reports the offset basis
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn resumed_hasher_continues_the_same_stream() {
        let mut whole = Fnv1a::new();
        whole.update(b"helloworld");
        let mut first = Fnv1a::new();
        first.update(b"hello");
        let mut resumed = Fnv1a::from_state(first.finish());
        resumed.update(b"world");
        assert_eq!(resumed.finish(), whole.finish());
    }
}
