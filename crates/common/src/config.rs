//! Workload and engine configuration.
//!
//! [`WorkloadConfig`] mirrors Table 6 of the paper: the six workload
//! characteristics (θ, a, l, C, r, T) that every benchmark sweeps, plus the
//! size of the shared mutable state. [`EngineConfig`] carries the
//! system-level knobs (worker threads, punctuation interval, version
//! reclamation) shared by MorphStream and the baselines.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Workload characteristics of Table 6.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct WorkloadConfig {
    /// `θ` — Zipf skew of the state access distribution (0.0 = uniform).
    pub zipf_theta: f64,
    /// `a` — ratio of transactions that abort (0.0 – 0.9 in the sweeps).
    pub abort_ratio: f64,
    /// `l` — transaction length: number of atomic state access operations per
    /// transaction.
    pub txn_length: usize,
    /// `C` — complexity of a user-defined function, expressed as an emulated
    /// computation delay in microseconds.
    pub udf_complexity_us: u64,
    /// `r` — number of states accessed per (multi-state) operation.
    pub states_per_op: usize,
    /// `T` — number of transactions per punctuation (the punctuation
    /// interval).
    pub txns_per_batch: usize,
    /// Number of distinct keys of shared mutable state available to the
    /// workload.
    pub key_space: u64,
    /// Seed for deterministic workload generation.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Default configuration of the Streaming Ledger workload (Table 6,
    /// column SL): θ=0.2, a=1%, l=2 (deposit)/4 (transfer), C=10µs, r=1/2,
    /// T=10240.
    pub fn streaming_ledger() -> Self {
        Self {
            zipf_theta: 0.2,
            abort_ratio: 0.01,
            txn_length: 2,
            udf_complexity_us: 10,
            states_per_op: 2,
            txns_per_batch: 10_240,
            key_space: 100_000,
            seed: 0xD5EE_D001,
        }
    }

    /// Default configuration of the GrepSum workload (Table 6, column GS).
    pub fn grep_sum() -> Self {
        Self {
            zipf_theta: 0.2,
            abort_ratio: 0.01,
            txn_length: 1,
            udf_complexity_us: 10,
            states_per_op: 2,
            txns_per_batch: 10_240,
            key_space: 100_000,
            seed: 0xD5EE_D002,
        }
    }

    /// Default configuration of the Toll Processing workload (Table 6,
    /// column TP).
    pub fn toll_processing() -> Self {
        Self {
            zipf_theta: 0.2,
            abort_ratio: 0.01,
            txn_length: 2,
            udf_complexity_us: 10,
            states_per_op: 1,
            txns_per_batch: 40_960,
            key_space: 100_000,
            seed: 0xD5EE_D003,
        }
    }

    /// Builder-style update of the Zipf skew.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Builder-style update of the abort ratio.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_abort_ratio(mut self, ratio: f64) -> Self {
        self.abort_ratio = ratio;
        self
    }

    /// Builder-style update of the transaction length.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_txn_length(mut self, length: usize) -> Self {
        self.txn_length = length;
        self
    }

    /// Builder-style update of the UDF complexity in microseconds.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_udf_complexity_us(mut self, us: u64) -> Self {
        self.udf_complexity_us = us;
        self
    }

    /// Builder-style update of the states accessed per operation.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_states_per_op(mut self, r: usize) -> Self {
        self.states_per_op = r;
        self
    }

    /// Builder-style update of the punctuation interval.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_txns_per_batch(mut self, t: usize) -> Self {
        self.txns_per_batch = t;
        self
    }

    /// Builder-style update of the key space size.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_key_space(mut self, n: u64) -> Self {
        self.key_space = n;
        self
    }

    /// Builder-style update of the generator seed.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.zipf_theta) {
            return Err(format!(
                "zipf_theta must be in [0,1], got {}",
                self.zipf_theta
            ));
        }
        if !(0.0..=1.0).contains(&self.abort_ratio) {
            return Err(format!(
                "abort_ratio must be in [0,1], got {}",
                self.abort_ratio
            ));
        }
        if self.txn_length == 0 {
            return Err("txn_length must be at least 1".into());
        }
        if self.states_per_op == 0 {
            return Err("states_per_op must be at least 1".into());
        }
        if self.txns_per_batch == 0 {
            return Err("txns_per_batch must be at least 1".into());
        }
        if self.key_space < (self.txn_length * self.states_per_op) as u64 {
            return Err("key_space too small for the configured transaction shape".into());
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::streaming_ledger()
    }
}

/// System-level engine configuration shared by MorphStream and the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EngineConfig {
    /// Number of worker threads used by the execution stage.
    pub num_threads: usize,
    /// Number of worker threads used by TPG construction (both the sharded
    /// stream-processing phase and the per-list transaction-processing
    /// phase). `None` means "follow [`EngineConfig::num_threads`]" — or half
    /// of it when pipelined construction is on, since construction then runs
    /// *concurrently* with the execution worker pool and taking the full
    /// count would oversubscribe the machine. The one documented knob
    /// construction parallelism hangs off; read it through
    /// [`EngineConfig::construction_threads`].
    pub construction_threads: Option<usize>,
    /// Overlap TPG construction of punctuation `N+1` with execution of
    /// punctuation `N` on a dedicated construction thread (Section 4.2's
    /// "construction overlaps event arrival"). Off by default; final state
    /// and per-batch outputs are identical either way — only timing changes.
    pub pipelined_construction: bool,
    /// Number of input events between punctuations. `None` means "use the
    /// workload's `txns_per_batch`".
    pub punctuation_interval: Option<usize>,
    /// Reclaim multi-version state and processed TPGs after every batch
    /// (the analogue of the paper's "clear temporal objects" switch used in
    /// Figure 17).
    pub reclaim_after_batch: bool,
    /// Emulated per-state-access network round-trip in microseconds. Used
    /// only by the conventional-SPE baseline to stand in for the Flink+Redis
    /// deployment of Figure 11; engines ignore it.
    pub remote_state_latency_us: u64,
}

impl EngineConfig {
    /// Configuration with `num_threads` workers and defaults elsewhere.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_threads(num_threads: usize) -> Self {
        Self {
            num_threads,
            ..Self::default()
        }
    }

    /// Builder-style update of the punctuation interval.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_punctuation_interval(mut self, events: usize) -> Self {
        self.punctuation_interval = Some(events);
        self
    }

    /// Builder-style update of the construction thread count. Pass the number
    /// of workers the TPG builder may use; by default construction follows
    /// [`EngineConfig::num_threads`].
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_construction_threads(mut self, threads: usize) -> Self {
        self.construction_threads = Some(threads);
        self
    }

    /// Builder-style toggle of pipelined (double-buffered) TPG construction.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_pipelined_construction(mut self, pipelined: bool) -> Self {
        self.pipelined_construction = pipelined;
        self
    }

    /// Effective construction worker count: the explicit
    /// [`EngineConfig::construction_threads`] override when set, otherwise
    /// [`EngineConfig::num_threads`] — halved when pipelined construction is
    /// on, because construction then competes with the execution worker pool
    /// for the same cores. Never less than 1.
    pub fn construction_threads(&self) -> usize {
        let default = if self.pipelined_construction {
            self.num_threads / 2
        } else {
            self.num_threads
        };
        self.construction_threads.unwrap_or(default).max(1)
    }

    /// Builder-style toggle of after-batch reclamation.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_reclaim_after_batch(mut self, reclaim: bool) -> Self {
        self.reclaim_after_batch = reclaim;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_threads == 0 {
            return Err("num_threads must be at least 1".into());
        }
        if let Some(0) = self.punctuation_interval {
            return Err("punctuation_interval must be at least 1".into());
        }
        if let Some(0) = self.construction_threads {
            return Err("construction_threads must be at least 1 when set".into());
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            num_threads: default_parallelism(),
            construction_threads: None,
            pipelined_construction: false,
            punctuation_interval: None,
            reclaim_after_batch: true,
            remote_state_latency_us: 0,
        }
    }
}

/// Runtime configuration of an operator topology (a dataflow of
/// transactional operators driven as one engine).
///
/// The default is the *serial wave loop*: every punctuation propagates
/// through the whole dataflow on the caller thread, one operator at a time.
/// With [`TopologyConfig::concurrent`] each operator instance runs on its own
/// thread behind a bounded channel of event batches, so operators of one
/// dataflow execute concurrently on multicores; `channel_capacity` bounds how
/// many punctuation batches may queue on each edge, which is the
/// back-pressure knob — a slow downstream operator makes upstream sends (and
/// ultimately the caller's `push`) block instead of buffering the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TopologyConfig {
    /// Punctuation batches that may queue on each operator-to-operator edge
    /// before the sender blocks. Memory in flight between two operators is
    /// bounded by `channel_capacity × punctuation interval` events.
    pub channel_capacity: usize,
    /// Run every operator instance on its own thread (bounded channels,
    /// punctuation alignment) instead of the serial wave loop. Final state
    /// digests and outputs are identical either way — only timing changes.
    pub concurrent: bool,
}

impl TopologyConfig {
    /// Builder-style update of the per-edge channel capacity (in punctuation
    /// batches).
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_channel_capacity(mut self, batches: usize) -> Self {
        self.channel_capacity = batches;
        self
    }

    /// Builder-style toggle of the concurrent (threaded) runtime.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_concurrent(mut self, concurrent: bool) -> Self {
        self.concurrent = concurrent;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            channel_capacity: 2,
            concurrent: false,
        }
    }
}

/// Available hardware parallelism, defaulting to 4 when it cannot be queried.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Worker-thread count used by the integration tests: the `MORPH_TEST_THREADS`
/// environment variable when set to a positive integer, otherwise `default`.
/// CI runs the test suite under a small thread matrix through this knob.
pub fn test_threads(default: usize) -> usize {
    std::env::var("MORPH_TEST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_defaults_match_the_paper() {
        let sl = WorkloadConfig::streaming_ledger();
        assert_eq!(sl.zipf_theta, 0.2);
        assert_eq!(sl.abort_ratio, 0.01);
        assert_eq!(sl.udf_complexity_us, 10);
        assert_eq!(sl.txns_per_batch, 10_240);

        let gs = WorkloadConfig::grep_sum();
        assert_eq!(gs.txn_length, 1);
        assert_eq!(gs.states_per_op, 2);

        let tp = WorkloadConfig::toll_processing();
        assert_eq!(tp.txns_per_batch, 40_960);
        assert_eq!(tp.states_per_op, 1);
    }

    #[test]
    fn builders_update_single_fields() {
        let cfg = WorkloadConfig::grep_sum()
            .with_zipf_theta(0.8)
            .with_abort_ratio(0.3)
            .with_txn_length(5)
            .with_udf_complexity_us(50)
            .with_states_per_op(3)
            .with_txns_per_batch(512)
            .with_key_space(1_000)
            .with_seed(1);
        assert_eq!(cfg.zipf_theta, 0.8);
        assert_eq!(cfg.abort_ratio, 0.3);
        assert_eq!(cfg.txn_length, 5);
        assert_eq!(cfg.udf_complexity_us, 50);
        assert_eq!(cfg.states_per_op, 3);
        assert_eq!(cfg.txns_per_batch, 512);
        assert_eq!(cfg.key_space, 1_000);
        assert_eq!(cfg.seed, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_values() {
        assert!(WorkloadConfig::default()
            .with_zipf_theta(1.5)
            .validate()
            .is_err());
        assert!(WorkloadConfig::default()
            .with_abort_ratio(-0.1)
            .validate()
            .is_err());
        assert!(WorkloadConfig::default()
            .with_txn_length(0)
            .validate()
            .is_err());
        assert!(WorkloadConfig::default()
            .with_key_space(1)
            .validate()
            .is_err());
    }

    #[test]
    fn engine_config_validation() {
        assert!(EngineConfig::default().validate().is_ok());
        assert!(EngineConfig::with_threads(0).validate().is_err());
        let cfg = EngineConfig::with_threads(8)
            .with_punctuation_interval(1024)
            .with_reclaim_after_batch(false);
        assert_eq!(cfg.num_threads, 8);
        assert_eq!(cfg.punctuation_interval, Some(1024));
        assert!(!cfg.reclaim_after_batch);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn topology_config_defaults_and_validation() {
        let cfg = TopologyConfig::default();
        assert!(!cfg.concurrent);
        assert_eq!(cfg.channel_capacity, 2);
        assert!(cfg.validate().is_ok());
        let cfg = cfg.with_concurrent(true).with_channel_capacity(8);
        assert!(cfg.concurrent);
        assert_eq!(cfg.channel_capacity, 8);
        assert!(cfg.validate().is_ok());
        assert!(cfg.with_channel_capacity(0).validate().is_err());
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn construction_threads_follow_num_threads_unless_overridden() {
        let cfg = EngineConfig::with_threads(6);
        assert_eq!(cfg.construction_threads(), 6);
        let cfg = cfg.with_construction_threads(2);
        assert_eq!(cfg.construction_threads(), 2);
        assert!(cfg.validate().is_ok());
        assert!(EngineConfig::with_threads(2)
            .with_construction_threads(0)
            .validate()
            .is_err());
    }

    #[test]
    fn pipelined_construction_halves_the_default_construction_threads() {
        // Construction runs concurrently with the execution pool, so the
        // default splits the cores instead of oversubscribing them.
        let cfg = EngineConfig::with_threads(8).with_pipelined_construction(true);
        assert_eq!(cfg.construction_threads(), 4);
        let cfg = EngineConfig::with_threads(1).with_pipelined_construction(true);
        assert_eq!(cfg.construction_threads(), 1);
        // an explicit override still wins
        let cfg = EngineConfig::with_threads(8)
            .with_pipelined_construction(true)
            .with_construction_threads(8);
        assert_eq!(cfg.construction_threads(), 8);
    }

    #[test]
    fn pipelined_construction_is_opt_in() {
        assert!(!EngineConfig::default().pipelined_construction);
        let cfg = EngineConfig::with_threads(2).with_pipelined_construction(true);
        assert!(cfg.pipelined_construction);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn test_threads_falls_back_to_default() {
        // The variable is not set in unit-test runs unless CI exported it; in
        // either case the result is a positive thread count.
        assert!(test_threads(3) >= 1);
    }
}
