//! Network wire protocol: framing and event codecs for `morphstream serve`.
//!
//! Two self-describing wire formats carry events over a byte stream:
//!
//! * **length-prefixed binary** — the connection opens with the 4-byte magic
//!   [`BINARY_MAGIC`], followed by frames of a little-endian `u32` payload
//!   length and the payload itself. Payload layouts are defined per event
//!   type by a [`WireCodec`] implementation (fixed-width little-endian
//!   integers behind a one-byte variant tag, by convention).
//! * **JSON lines** — one flat JSON object per `\n`-terminated line (see
//!   [`crate::json::parse_object`]); the first byte of the connection is `{`,
//!   which is how the server tells the two formats apart without
//!   configuration.
//!
//! The framing layer is deliberately strict: oversized frames, truncated
//! payloads, unknown tags, and malformed JSON are all [`ProtocolError`]s —
//! never panics — so a misbehaving client cannot take the server down, and
//! never silently skipped, so a protocol bug cannot drop events.

use std::io::{self, Read, Write};

use crate::json::JsonParseError;

/// Magic bytes opening a binary-protocol connection ("MorphStream Binary 1").
pub const BINARY_MAGIC: [u8; 4] = *b"MSB1";

/// Hard upper bound on one frame's payload, protecting the server from a
/// hostile or corrupt length prefix. Large enough for any event the
/// workloads define (a GrepSum event with hundreds of keys is still < 4 KiB).
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Why a frame or event failed to decode.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying byte stream failed.
    Io(io::Error),
    /// A binary frame announced a payload larger than [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced payload length.
        len: usize,
    },
    /// The payload ended before the event was fully decoded.
    Truncated,
    /// The payload decoded but violates the event layout.
    Malformed(String),
    /// The payload's leading variant tag is not one the event type defines.
    UnknownTag(u8),
    /// A JSON-lines frame failed to parse.
    Json(JsonParseError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "wire i/o error: {e}"),
            ProtocolError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
                )
            }
            ProtocolError::Truncated => write!(f, "frame payload truncated"),
            ProtocolError::Malformed(reason) => write!(f, "malformed event: {reason}"),
            ProtocolError::UnknownTag(tag) => write!(f, "unknown event tag {tag:#04x}"),
            ProtocolError::Json(e) => write!(f, "malformed JSON event: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            ProtocolError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<JsonParseError> for ProtocolError {
    fn from(e: JsonParseError) -> Self {
        ProtocolError::Json(e)
    }
}

/// The two wire formats of the serve protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFormat {
    /// Length-prefixed binary frames behind the [`BINARY_MAGIC`] preamble.
    Binary,
    /// One flat JSON object per newline-terminated line.
    JsonLines,
}

impl WireFormat {
    /// Parse a command-line name (`binary` / `json`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "binary" => Some(WireFormat::Binary),
            "json" | "jsonl" | "json-lines" => Some(WireFormat::JsonLines),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Binary => "binary",
            WireFormat::JsonLines => "json",
        }
    }
}

/// Write one length-prefixed binary frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ProtocolError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len: payload.len() });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one length-prefixed binary frame into `buf` (cleared first).
///
/// Returns `Ok(false)` on a clean end of stream (EOF *between* frames);
/// EOF in the middle of a frame is [`ProtocolError::Truncated`].
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<bool, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    match read_exact_or_eof(r, &mut len_bytes)? {
        ReadOutcome::Eof => return Ok(false),
        ReadOutcome::Partial => return Err(ProtocolError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len });
    }
    buf.clear();
    buf.resize(len, 0);
    match read_exact_or_eof(r, buf)? {
        ReadOutcome::Full => Ok(true),
        _ => Err(ProtocolError::Truncated),
    }
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes "no bytes at all" (EOF between frames)
/// from "some bytes then EOF" (a truncated frame).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// An event type that can travel over both wire formats.
///
/// Implemented by the workload event types (`SlEvent`, `GsEvent`); the
/// server decodes whichever event type its configured application expects,
/// and the load generator encodes the same type — both through this one
/// trait, so a new workload only has to implement `WireCodec` to become
/// servable.
pub trait WireCodec: Sized {
    /// Append the binary payload of this event to `out` (no length prefix).
    fn encode_binary(&self, out: &mut Vec<u8>);

    /// Decode one event from a binary frame payload. Must consume the whole
    /// payload; trailing bytes are an error.
    fn decode_binary(payload: &[u8]) -> Result<Self, ProtocolError>;

    /// Render this event as one flat JSON object (no trailing newline).
    fn encode_json(&self) -> String;

    /// Decode one event from a JSON-lines frame.
    fn decode_json(line: &str) -> Result<Self, ProtocolError>;
}

/// Little-endian payload cursor used by [`WireCodec`] implementations.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Cursor over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Take the next `n` bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u32` count followed by that many `u64`s. The count is bounded
    /// by the remaining payload, so a corrupt count cannot trigger a huge
    /// allocation.
    pub fn u64_list(&mut self) -> Result<Vec<u64>, ProtocolError> {
        let count = self.u32()? as usize;
        if count > (self.bytes.len() - self.pos) / 8 {
            return Err(ProtocolError::Truncated);
        }
        (0..count).map(|_| self.u64()).collect()
    }

    /// Assert the payload is fully consumed (codecs call this last, so a
    /// frame cannot smuggle trailing bytes).
    pub fn finish(&self) -> Result<(), ProtocolError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after event",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Append a `u32` count and the listed `u64`s (inverse of
/// [`PayloadReader::u64_list`]).
pub fn put_u64_list(out: &mut Vec<u8>, items: &[u64]) {
    out.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for item in items {
        out.extend_from_slice(&item.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut cursor = io::Cursor::new(wire);
        let mut buf = Vec::new();
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(buf, b"world!");
        assert!(!read_frame(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &huge),
            Err(ProtocolError::Oversized { .. })
        ));
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut io::Cursor::new(wire), &mut Vec::new()),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_frames_error_instead_of_hanging() {
        // length says 10 bytes, stream carries 3
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut io::Cursor::new(wire), &mut Vec::new()),
            Err(ProtocolError::Truncated)
        ));
        // EOF inside the length prefix itself
        assert!(matches!(
            read_frame(&mut io::Cursor::new(vec![1u8, 0]), &mut Vec::new()),
            Err(ProtocolError::Truncated)
        ));
    }

    #[test]
    fn payload_reader_guards_counts_and_trailing_bytes() {
        let mut payload = Vec::new();
        payload.push(7u8);
        payload.extend_from_slice(&42u64.to_le_bytes());
        put_u64_list(&mut payload, &[1, 2, 3]);
        let mut r = PayloadReader::new(&payload);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.u64_list().unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();

        // a count larger than the remaining payload must not allocate
        let mut corrupt = Vec::new();
        corrupt.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            PayloadReader::new(&corrupt).u64_list(),
            Err(ProtocolError::Truncated)
        ));

        // trailing bytes are an error, not silently ignored
        let mut r = PayloadReader::new(&payload);
        let _ = r.u8().unwrap();
        assert!(matches!(r.finish(), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn wire_format_names_round_trip() {
        assert_eq!(WireFormat::from_name("binary"), Some(WireFormat::Binary));
        assert_eq!(WireFormat::from_name("json"), Some(WireFormat::JsonLines));
        assert_eq!(WireFormat::from_name("nope"), None);
        assert_eq!(WireFormat::Binary.name(), "binary");
        assert_eq!(WireFormat::JsonLines.name(), "json");
    }
}
