//! Zipfian key sampling.
//!
//! The paper models state-access skew as a Zipfian distribution over the key
//! space and sweeps the Zipf factor θ between 0.0 (uniform) and 1.0 (highly
//! skewed) — see Table 6 and Figures 18b. This module implements the standard
//! rejection-inversion-free CDF-table sampler: exact, deterministic, and fast
//! enough for workload generation of a few hundred thousand events.

use crate::rng::DetRng;

/// A Zipfian sampler over the key range `[0, n)`.
///
/// For θ = 0 the distribution degenerates to uniform; larger θ concentrates
/// probability mass on the low-numbered keys. The generator shuffles the rank
/// → key mapping so that "hot" keys are spread across the key space rather
/// than clustered at 0, mirroring how the original benchmark seeds hot
/// accounts.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    rank_to_key: Vec<u64>,
}

impl Zipf {
    /// Build a sampler over `n` keys with skew factor `theta`, using `seed`
    /// to derive the hot-key placement.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf requires a non-empty key space");
        assert!(theta >= 0.0, "Zipf skew must be non-negative");
        let n_usize = n as usize;
        let mut weights = Vec::with_capacity(n_usize);
        let mut total = 0.0f64;
        for rank in 1..=n_usize {
            let w = 1.0 / (rank as f64).powf(theta);
            total += w;
            weights.push(total);
        }
        let cdf: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let mut rank_to_key: Vec<u64> = (0..n).collect();
        let mut rng = DetRng::new(seed ^ ZIPF_SEED_MIX);
        rng.shuffle(&mut rank_to_key);
        Self { cdf, rank_to_key }
    }

    /// Number of keys in the sampled space.
    #[inline]
    pub fn key_space(&self) -> u64 {
        self.rank_to_key.len() as u64
    }

    /// Sample one key.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.next_f64();
        let rank = match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        };
        self.rank_to_key[rank]
    }

    /// Sample `count` distinct keys (used for multi-key transactions where the
    /// same transaction must not read and write the identical state twice).
    pub fn sample_distinct(&self, rng: &mut DetRng, count: usize) -> Vec<u64> {
        assert!(
            count as u64 <= self.key_space(),
            "cannot sample more distinct keys than the key space holds"
        );
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let k = self.sample(rng);
            if !out.contains(&k) {
                out.push(k);
            }
        }
        out
    }
}

/// Mixed into the caller-provided seed so the hot-key shuffle stream differs
/// from any stream the caller derives from the same seed.
const ZIPF_SEED_MIX: u64 = 0x5A1F_5EED_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_theta_spreads_mass_evenly() {
        let zipf = Zipf::new(100, 0.0, 1);
        let mut rng = DetRng::new(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.6,
            "uniform sampling should be flat: {min}..{max}"
        );
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let zipf = Zipf::new(1000, 0.99, 1);
        let mut rng = DetRng::new(3);
        let mut counts = std::collections::HashMap::new();
        let samples = 50_000;
        for _ in 0..samples {
            *counts.entry(zipf.sample(&mut rng)).or_insert(0usize) += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freq.iter().take(10).sum();
        assert!(
            top10 as f64 / samples as f64 > 0.3,
            "top-10 keys should dominate a skewed distribution, got {top10}"
        );
    }

    #[test]
    fn samples_stay_in_key_space() {
        let zipf = Zipf::new(37, 0.7, 5);
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 37);
        }
    }

    #[test]
    fn distinct_sampling_returns_unique_keys() {
        let zipf = Zipf::new(16, 0.9, 9);
        let mut rng = DetRng::new(11);
        let keys = zipf.sample_distinct(&mut rng, 10);
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    #[should_panic]
    fn empty_key_space_is_rejected() {
        let _ = Zipf::new(0, 0.5, 1);
    }
}
