//! State transactions and transaction batches.
//!
//! A state transaction is the set of state access operations triggered by one
//! input event (Section 2.1.1). The engine collects transactions between two
//! punctuations into a [`TransactionBatch`]; the batch is the unit the
//! planning stage builds one TPG for.

use morphstream_common::Timestamp;

use crate::operation::OperationSpec;

/// One state transaction: the operations triggered by one input event, plus
/// the event timestamp they all share.
#[derive(Debug, Clone)]
pub struct Transaction {
    /// Event timestamp (also the transaction's serialization position).
    pub ts: Timestamp,
    /// Operations in statement order.
    pub ops: Vec<OperationSpec>,
    /// Correlation id linking the transaction back to the input event that
    /// produced it (index into the engine's event buffer).
    pub event_index: usize,
}

impl Transaction {
    /// Create a transaction.
    pub fn new(ts: Timestamp, ops: Vec<OperationSpec>) -> Self {
        Self {
            ts,
            ops,
            event_index: 0,
        }
    }

    /// Attach the index of the originating input event.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_event_index(mut self, index: usize) -> Self {
        self.event_index = index;
        self
    }

    /// Number of operations (the paper's transaction length `l`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A batch of state transactions collected between two punctuations.
///
/// Transactions may be appended out of timestamp order (challenge C1 of the
/// paper); the planner sorts them before dependency tracking.
#[derive(Debug, Clone, Default)]
pub struct TransactionBatch {
    txns: Vec<Transaction>,
    /// Workload-provided estimate of the fraction of transactions that will
    /// abort; feeds the decision model's "ratio of aborting vertexes" input.
    pub expected_abort_ratio: f64,
}

impl TransactionBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Batch from a list of transactions.
    pub fn from_txns(txns: Vec<Transaction>) -> Self {
        Self {
            txns,
            expected_abort_ratio: 0.0,
        }
    }

    /// Set the workload's abort-ratio hint.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_expected_abort_ratio(mut self, ratio: f64) -> Self {
        self.expected_abort_ratio = ratio;
        self
    }

    /// Append one transaction (possibly out of order).
    pub fn push(&mut self, txn: Transaction) {
        self.txns.push(txn);
    }

    /// Number of transactions in the batch (the paper's `T`).
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transactions in arrival order.
    pub fn txns(&self) -> &[Transaction] {
        &self.txns
    }

    /// Total number of operations across all transactions.
    pub fn total_ops(&self) -> usize {
        self.txns.iter().map(Transaction::len).sum()
    }

    /// Consume the batch, returning transactions sorted by timestamp (ties
    /// broken by arrival order, which `sort_by_key` preserves because it is
    /// stable). This is the sorting step of the stream processing phase.
    pub fn into_sorted(mut self) -> Vec<Transaction> {
        self.txns.sort_by_key(|t| t.ts);
        self.txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::OperationSpec;
    use morphstream_common::TableId;

    fn txn(ts: Timestamp, n_ops: usize) -> Transaction {
        let ops = (0..n_ops)
            .map(|i| OperationSpec::read(TableId(0), i as u64))
            .collect();
        Transaction::new(ts, ops)
    }

    #[test]
    fn transaction_reports_its_length() {
        let t = txn(5, 3).with_event_index(9);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.event_index, 9);
        assert!(txn(1, 0).is_empty());
    }

    #[test]
    fn batch_counts_transactions_and_operations() {
        let mut batch = TransactionBatch::new();
        assert!(batch.is_empty());
        batch.push(txn(2, 2));
        batch.push(txn(1, 3));
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.total_ops(), 5);
        assert!(!batch.is_empty());
        assert_eq!(batch.txns()[0].ts, 2);
    }

    #[test]
    fn sorting_orders_by_timestamp_and_is_stable() {
        let mut batch = TransactionBatch::new();
        batch.push(txn(5, 1).with_event_index(0));
        batch.push(txn(1, 1).with_event_index(1));
        batch.push(txn(5, 1).with_event_index(2));
        batch.push(txn(3, 1).with_event_index(3));
        let sorted = batch.into_sorted();
        let ts: Vec<Timestamp> = sorted.iter().map(|t| t.ts).collect();
        assert_eq!(ts, vec![1, 3, 5, 5]);
        // stability: the two ts=5 transactions keep arrival order
        assert_eq!(sorted[2].event_index, 0);
        assert_eq!(sorted[3].event_index, 2);
    }

    #[test]
    fn abort_ratio_hint_round_trips() {
        let batch = TransactionBatch::from_txns(vec![txn(1, 1)]).with_expected_abort_ratio(0.25);
        assert_eq!(batch.expected_abort_ratio, 0.25);
        assert_eq!(batch.len(), 1);
    }
}
