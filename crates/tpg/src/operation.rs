//! State access operations — the vertices of the TPG.
//!
//! An operation is the atomic unit a state transaction decomposes into
//! (Section 2.1.1): a read or a write of one state entry, possibly windowed
//! (Section 4.3) or with a non-deterministically resolved key (Section 4.4).
//! The value written by a write operation is produced by a user-defined
//! function over the values of its *parameter* states — those parameters are
//! what parametric dependencies are tracked over.

use std::fmt;
use std::sync::Arc;

use morphstream_common::{AbortReason, Key, OpId, StateRef, TableId, Timestamp, TxnId, Value};

/// How an operation touches its target state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain read of the target state.
    Read,
    /// Plain write of the target state.
    Write,
    /// Read of every version of the target state inside the trailing window.
    WindowRead,
    /// Write of the target state computed from the windowed versions of the
    /// parameter states.
    WindowWrite,
    /// Read whose target key is resolved at execution time.
    NonDetRead,
    /// Write whose target key is resolved at execution time.
    NonDetWrite,
}

impl AccessKind {
    /// Whether the operation appends a version to the state table.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            AccessKind::Write | AccessKind::WindowWrite | AccessKind::NonDetWrite
        )
    }

    /// Whether the target key is only known at execution time.
    pub fn is_non_deterministic(self) -> bool {
        matches!(self, AccessKind::NonDetRead | AccessKind::NonDetWrite)
    }

    /// Whether the operation reads a window of versions.
    pub fn is_windowed(self) -> bool {
        matches!(self, AccessKind::WindowRead | AccessKind::WindowWrite)
    }
}

/// Resolves the key of a non-deterministic state access at execution time.
/// The resolver must be a pure function of the timestamp so that redoing the
/// operation after a rollback touches the same state again.
pub type KeyResolver = Arc<dyn Fn(Timestamp) -> Key + Send + Sync>;

/// The target key of an operation.
#[derive(Clone)]
pub enum KeySpec {
    /// Key known at planning time.
    Known(Key),
    /// Key resolved by a user-defined function at execution time
    /// (non-deterministic state access, Section 4.4).
    NonDeterministic(KeyResolver),
}

impl KeySpec {
    /// The planning-time key, if deterministic.
    pub fn known(&self) -> Option<Key> {
        match self {
            KeySpec::Known(k) => Some(*k),
            KeySpec::NonDeterministic(_) => None,
        }
    }

    /// Resolve the key for execution at timestamp `ts`.
    pub fn resolve(&self, ts: Timestamp) -> Key {
        match self {
            KeySpec::Known(k) => *k,
            KeySpec::NonDeterministic(f) => f(ts),
        }
    }
}

impl fmt::Debug for KeySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeySpec::Known(k) => write!(f, "Known({k})"),
            KeySpec::NonDeterministic(_) => write!(f, "NonDeterministic(..)"),
        }
    }
}

/// Inputs handed to a user-defined function when an operation executes.
#[derive(Debug, Clone, Default)]
pub struct UdfInput {
    /// Current value of the target state (latest version visible at the
    /// operation's timestamp). Zero for window writes whose target has no
    /// visible version requirement.
    pub target: Value,
    /// Values of the parameter states, in declaration order. For windowed
    /// writes these are per-parameter window aggregates are not pre-applied —
    /// the raw latest values are provided here and windowed versions in
    /// [`UdfInput::window`].
    pub params: Vec<Value>,
    /// Versions of the windowed state(s) inside the window range, in
    /// timestamp order. Empty for non-windowed operations.
    pub window: Vec<Value>,
    /// Timestamp of the executing operation.
    pub ts: Timestamp,
}

/// What a user-defined function decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdfOutcome {
    /// Write this value to the target state (for writes) or report it as the
    /// operation result (for reads with a derived result).
    Value(Value),
    /// Keep the target unchanged and report its current value (identity
    /// reads).
    Unchanged,
}

/// The user-defined function attached to an operation. Returning an error
/// aborts the operation — and, through logical dependencies, its whole
/// transaction.
pub type Udf = Arc<dyn Fn(&UdfInput) -> Result<UdfOutcome, AbortReason> + Send + Sync>;

/// A state access operation as specified by the application, before the
/// planner assigns batch-global identifiers.
#[derive(Clone)]
pub struct OperationSpec {
    /// Table holding the target state.
    pub table: TableId,
    /// Target key (possibly non-deterministic).
    pub target: KeySpec,
    /// Access kind.
    pub kind: AccessKind,
    /// Parameter states whose values feed the UDF (parametric dependencies).
    pub params: Vec<StateRef>,
    /// Trailing window length in event-time units for windowed accesses.
    pub window: Option<Timestamp>,
    /// User-defined function producing the written value / derived result.
    /// `None` means an identity read.
    pub udf: Option<Udf>,
    /// Emulated computation cost in microseconds (the paper's `C` knob).
    pub cost_us: u64,
}

impl OperationSpec {
    /// A plain read of `(table, key)`.
    pub fn read(table: TableId, key: Key) -> Self {
        Self {
            table,
            target: KeySpec::Known(key),
            kind: AccessKind::Read,
            params: Vec::new(),
            window: None,
            udf: None,
            cost_us: 0,
        }
    }

    /// A write of `(table, key)` computed by `udf` from the target's current
    /// value and the values of `params`.
    pub fn write(table: TableId, key: Key, params: Vec<StateRef>, udf: Udf) -> Self {
        Self {
            table,
            target: KeySpec::Known(key),
            kind: AccessKind::Write,
            params,
            window: None,
            udf: Some(udf),
            cost_us: 0,
        }
    }

    /// A windowed read of `(table, key)` over the trailing `window` range,
    /// aggregated by `udf`.
    pub fn window_read(table: TableId, key: Key, window: Timestamp, udf: Udf) -> Self {
        Self {
            table,
            target: KeySpec::Known(key),
            kind: AccessKind::WindowRead,
            params: Vec::new(),
            window: Some(window),
            udf: Some(udf),
            cost_us: 0,
        }
    }

    /// A windowed write: `(table, key)` is updated with `udf` applied to the
    /// versions of `params` inside the trailing `window` range.
    pub fn window_write(
        table: TableId,
        key: Key,
        params: Vec<StateRef>,
        window: Timestamp,
        udf: Udf,
    ) -> Self {
        Self {
            table,
            target: KeySpec::Known(key),
            kind: AccessKind::WindowWrite,
            params,
            window: Some(window),
            udf: Some(udf),
            cost_us: 0,
        }
    }

    /// A non-deterministic read: the key is resolved by `resolver` when the
    /// operation executes.
    pub fn non_det_read(table: TableId, resolver: KeyResolver, udf: Option<Udf>) -> Self {
        Self {
            table,
            target: KeySpec::NonDeterministic(resolver),
            kind: AccessKind::NonDetRead,
            params: Vec::new(),
            window: None,
            udf,
            cost_us: 0,
        }
    }

    /// A non-deterministic write: the key is resolved by `resolver` and the
    /// value computed by `udf` over `params`.
    pub fn non_det_write(
        table: TableId,
        resolver: KeyResolver,
        params: Vec<StateRef>,
        udf: Udf,
    ) -> Self {
        Self {
            table,
            target: KeySpec::NonDeterministic(resolver),
            kind: AccessKind::NonDetWrite,
            params,
            window: None,
            udf: Some(udf),
            cost_us: 0,
        }
    }

    /// Attach an emulated computation cost (microseconds).
    pub fn with_cost_us(mut self, cost_us: u64) -> Self {
        self.cost_us = cost_us;
        self
    }
}

impl fmt::Debug for OperationSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OperationSpec")
            .field("table", &self.table)
            .field("target", &self.target)
            .field("kind", &self.kind)
            .field("params", &self.params)
            .field("window", &self.window)
            .field("cost_us", &self.cost_us)
            .finish()
    }
}

/// A planned operation: an [`OperationSpec`] plus the identifiers assigned by
/// the planner (batch-global id, owning transaction, timestamp, statement
/// index).
#[derive(Clone)]
pub struct Operation {
    /// Batch-global operation id; doubles as the vertex id in the TPG and the
    /// writer id in the multi-version store.
    pub id: OpId,
    /// Owning state transaction (index into the batch).
    pub txn: TxnId,
    /// Timestamp shared by all operations of the transaction.
    pub ts: Timestamp,
    /// Statement index within the transaction (LD ordering).
    pub stmt: u32,
    /// The application-provided specification.
    pub spec: OperationSpec,
}

impl Operation {
    /// Planning-time target key, if deterministic.
    pub fn known_key(&self) -> Option<Key> {
        self.spec.target.known()
    }

    /// Whether this operation writes state.
    pub fn is_write(&self) -> bool {
        self.spec.kind.is_write()
    }

    /// Convenient handle of the target state when deterministic.
    pub fn target_ref(&self) -> Option<StateRef> {
        self.known_key().map(|k| StateRef::new(self.spec.table, k))
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Operation")
            .field("id", &self.id)
            .field("txn", &self.txn)
            .field("ts", &self.ts)
            .field("stmt", &self.stmt)
            .field("kind", &self.spec.kind)
            .field("table", &self.spec.table)
            .field("target", &self.spec.target)
            .finish()
    }
}

/// Helper constructors for common UDFs, shared by tests and workloads.
pub mod udfs {
    use super::*;

    /// UDF that adds `delta` to the target value.
    pub fn add_delta(delta: Value) -> Udf {
        Arc::new(move |input: &UdfInput| Ok(UdfOutcome::Value(input.target + delta)))
    }

    /// UDF that overwrites the target with a constant.
    pub fn set_value(value: Value) -> Udf {
        Arc::new(move |_input: &UdfInput| Ok(UdfOutcome::Value(value)))
    }

    /// UDF that subtracts `amount` from the target and aborts when the result
    /// would drop below zero (the Streaming Ledger consistency rule).
    pub fn withdraw(amount: Value) -> Udf {
        Arc::new(move |input: &UdfInput| {
            if input.target >= amount {
                Ok(UdfOutcome::Value(input.target - amount))
            } else {
                Err(AbortReason::ConsistencyViolation {
                    state: StateRef::new(TableId(u32::MAX), 0),
                    detail: format!("balance {} below withdrawal {}", input.target, amount),
                })
            }
        })
    }

    /// UDF that adds the first parameter value to the target (used by
    /// transfer credits: `recver += f(sender)`), aborting when the parameter
    /// is below `guard`.
    pub fn credit_if_param_at_least(amount: Value, guard: Value) -> Udf {
        Arc::new(move |input: &UdfInput| {
            let sender = input.params.first().copied().unwrap_or(0);
            if sender >= guard {
                Ok(UdfOutcome::Value(input.target + amount))
            } else {
                Err(AbortReason::ConsistencyViolation {
                    state: StateRef::new(TableId(u32::MAX), 0),
                    detail: format!("guard value {sender} below {guard}"),
                })
            }
        })
    }

    /// UDF that sums the windowed versions and writes the sum.
    pub fn window_sum() -> Udf {
        Arc::new(|input: &UdfInput| Ok(UdfOutcome::Value(input.window.iter().sum())))
    }

    /// UDF that writes the sum of its parameter values.
    pub fn sum_params() -> Udf {
        Arc::new(|input: &UdfInput| Ok(UdfOutcome::Value(input.params.iter().sum())))
    }

    /// UDF that always aborts (used to inject failures).
    pub fn always_abort() -> Udf {
        Arc::new(|_input: &UdfInput| Err(AbortReason::Injected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::WindowWrite.is_write());
        assert!(AccessKind::NonDetWrite.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::NonDetRead.is_non_deterministic());
        assert!(!AccessKind::Write.is_non_deterministic());
        assert!(AccessKind::WindowRead.is_windowed());
        assert!(!AccessKind::Read.is_windowed());
    }

    #[test]
    fn key_spec_resolution() {
        let known = KeySpec::Known(7);
        assert_eq!(known.known(), Some(7));
        assert_eq!(known.resolve(100), 7);

        let nd = KeySpec::NonDeterministic(Arc::new(|ts| ts % 13));
        assert_eq!(nd.known(), None);
        assert_eq!(nd.resolve(27), 1);
        // resolution must be deterministic in the timestamp
        assert_eq!(nd.resolve(27), nd.resolve(27));
    }

    #[test]
    fn spec_constructors_set_expected_kinds() {
        let t = TableId(0);
        assert_eq!(OperationSpec::read(t, 1).kind, AccessKind::Read);
        assert_eq!(
            OperationSpec::write(t, 1, vec![], udfs::set_value(1)).kind,
            AccessKind::Write
        );
        assert_eq!(
            OperationSpec::window_read(t, 1, 10, udfs::window_sum()).kind,
            AccessKind::WindowRead
        );
        assert_eq!(
            OperationSpec::window_write(t, 1, vec![], 10, udfs::window_sum()).kind,
            AccessKind::WindowWrite
        );
        let resolver: KeyResolver = Arc::new(|_| 0);
        assert_eq!(
            OperationSpec::non_det_read(t, resolver.clone(), None).kind,
            AccessKind::NonDetRead
        );
        assert_eq!(
            OperationSpec::non_det_write(t, resolver, vec![], udfs::sum_params()).kind,
            AccessKind::NonDetWrite
        );
        let costed = OperationSpec::read(t, 1).with_cost_us(25);
        assert_eq!(costed.cost_us, 25);
    }

    #[test]
    fn udf_helpers_behave_as_documented() {
        let input = UdfInput {
            target: 100,
            params: vec![40],
            window: vec![1, 2, 3],
            ts: 5,
        };
        assert_eq!(udfs::add_delta(5)(&input).unwrap(), UdfOutcome::Value(105));
        assert_eq!(udfs::set_value(9)(&input).unwrap(), UdfOutcome::Value(9));
        assert_eq!(udfs::withdraw(60)(&input).unwrap(), UdfOutcome::Value(40));
        assert!(udfs::withdraw(200)(&input).is_err());
        assert_eq!(
            udfs::credit_if_param_at_least(10, 30)(&input).unwrap(),
            UdfOutcome::Value(110)
        );
        assert!(udfs::credit_if_param_at_least(10, 50)(&input).is_err());
        assert_eq!(udfs::window_sum()(&input).unwrap(), UdfOutcome::Value(6));
        assert_eq!(udfs::sum_params()(&input).unwrap(), UdfOutcome::Value(40));
        assert!(udfs::always_abort()(&input).is_err());
    }

    #[test]
    fn operation_exposes_target_ref_for_known_keys() {
        let op = Operation {
            id: 3,
            txn: 1,
            ts: 10,
            stmt: 0,
            spec: OperationSpec::read(TableId(2), 5),
        };
        assert_eq!(op.target_ref(), Some(StateRef::new(TableId(2), 5)));
        assert!(!op.is_write());
        let nd = Operation {
            id: 4,
            txn: 1,
            ts: 10,
            stmt: 1,
            spec: OperationSpec::non_det_write(
                TableId(2),
                Arc::new(|_| 9),
                vec![],
                udfs::set_value(0),
            ),
        };
        assert_eq!(nd.target_ref(), None);
        assert!(nd.is_write());
    }
}
