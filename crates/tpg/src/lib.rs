//! Task Precedence Graph (TPG) construction — the *planning* stage of
//! MorphStream.
//!
//! A batch of state transactions is decomposed into atomic state access
//! operations; the operations become the vertices of the TPG and the three
//! dependency types of the paper become its edges:
//!
//! * **TD — temporal dependency**: two operations of different transactions
//!   access the same state and one has a later timestamp (Section 2.1.2);
//! * **PD — parametric dependency**: a write's value is a function of states
//!   written by an earlier operation (tracked through *virtual operations*);
//! * **LD — logical dependency**: operations of the same transaction must
//!   abort together (it does not constrain execution order).
//!
//! Construction follows the paper's two-phase process (Section 4.2): the
//! *stream processing phase* sorts the possibly out-of-order transactions and
//! fills per-key timestamp-sorted operation lists, and the *transaction
//! processing phase* derives TD/PD edges from those lists. Both phases are
//! shardable by state key ([`sorted_list::shard_of`]) and run on the
//! [`TpgBuilder`]'s configured worker count. Window operations (Section 4.3)
//! and non-deterministic state accesses (Section 4.4) are handled with the
//! generalized window rule and pessimistic virtual operations respectively.

#![warn(missing_docs)]

pub mod builder;
pub mod graph;
pub mod operation;
pub mod sorted_list;
pub mod txn;
pub mod units;

pub use builder::TpgBuilder;
pub use graph::{DepKind, Tpg, TpgStats};
pub use operation::udfs;
pub use operation::{
    AccessKind, KeyResolver, KeySpec, Operation, OperationSpec, Udf, UdfInput, UdfOutcome,
};
pub use txn::{Transaction, TransactionBatch};
pub use units::{SchedulingUnits, Unit};
