//! Two-phase TPG construction (Section 4.2).
//!
//! * **Stream processing phase** — transactions (possibly arriving out of
//!   order) are sorted by timestamp and decomposed into operations; logical
//!   dependencies are implied by the per-transaction operation lists; every
//!   operation is inserted into the sorted list of the state it targets, and
//!   virtual operations are inserted for parameter states, window sources,
//!   and (pessimistically, into every list) non-deterministic accesses.
//! * **Transaction processing phase** — each sorted list is scanned once to
//!   derive TD and PD edges.
//!
//! Both phases are sharded by state key: each worker owns the disjoint set of
//! sorted lists whose [`shard_of`] hash lands on it, fills them from the
//! decomposed operation array, and immediately derives their edges, so list
//! insertion *and* edge derivation scale with the configured worker count.
//! Non-deterministic operations pessimistically broadcast a placeholder into
//! every list of every shard. The serial and sharded paths produce identical
//! graphs — each list's contents (and therefore its derived edges) do not
//! depend on which worker owns it, and [`Tpg::assemble`] canonicalises edge
//! order.

use std::collections::HashMap;

use morphstream_common::{OpId, StateRef, Timestamp, TxnId};

use crate::graph::{DepKind, Tpg};
use crate::operation::Operation;
use crate::sorted_list::{derive_edges, shard_of, ListEntry, SortedList, VirtualRole};
use crate::txn::TransactionBatch;

/// Builds a [`Tpg`] from a [`TransactionBatch`].
#[derive(Debug, Clone)]
pub struct TpgBuilder {
    num_threads: usize,
}

impl Default for TpgBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TpgBuilder {
    /// Single-threaded builder: both construction phases run on the calling
    /// thread. Construction parallelism is opt-in through
    /// [`TpgBuilder::with_threads`]; the engine wires it to the one
    /// documented knob, `EngineConfig::construction_threads` (which follows
    /// `num_threads` unless overridden).
    pub fn new() -> Self {
        Self { num_threads: 1 }
    }

    /// Use `num_threads` workers for construction: the per-key sorted lists
    /// are sharded by state hash across the workers, and each worker fills
    /// and scans its own lists (stream + transaction processing phases).
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// The configured construction worker count.
    pub fn threads(&self) -> usize {
        self.num_threads
    }

    /// Build the TPG for one batch. The effective shard count is clamped by
    /// the batch size (see [`effective_shards`]): tiny batches run on the
    /// calling thread — spawning workers that each rescan the whole operation
    /// array to own one or zero lists would cost more than it saves.
    pub fn build(&self, batch: TransactionBatch) -> Tpg {
        self.build_with(batch, None)
    }

    /// `build` with an optional forced shard count, bypassing the batch-size
    /// clamp — used by the shard-equivalence tests to exercise the parallel
    /// path on deliberately tiny batches.
    fn build_with(&self, batch: TransactionBatch, forced_shards: Option<usize>) -> Tpg {
        let expected_abort_ratio = batch.expected_abort_ratio;
        let txns = batch.into_sorted();

        // ---- Decomposition (serial prelude of the stream phase) ----
        // Operation ids are assignment order, so this pass stays serial; it
        // is a cheap flat append compared to list insertion and edge
        // derivation, which are sharded below.
        let mut ops: Vec<Operation> = Vec::new();
        let mut txn_ops: Vec<Vec<OpId>> = Vec::with_capacity(txns.len());
        let mut txn_ts: Vec<Timestamp> = Vec::with_capacity(txns.len());
        // (op id, ts, stmt) of non-deterministic operations, in ts order.
        let mut non_det: Vec<(OpId, Timestamp, u32)> = Vec::new();

        for (txn_id, txn) in txns.into_iter().enumerate() {
            txn_ts.push(txn.ts);
            let mut ids = Vec::with_capacity(txn.ops.len());
            for (stmt_idx, spec) in txn.ops.into_iter().enumerate() {
                let id = ops.len();
                let stmt = stmt_idx as u32;
                if spec.target.known().is_none() {
                    non_det.push((id, txn.ts, stmt));
                }
                ops.push(Operation {
                    id,
                    txn: txn_id,
                    ts: txn.ts,
                    stmt,
                    spec,
                });
                ids.push(id);
            }
            txn_ops.push(ids);
        }

        // ---- Sharded stream + transaction processing phases ----
        let txn_of: Vec<TxnId> = ops.iter().map(|o| o.txn).collect();
        let shards = forced_shards.unwrap_or_else(|| effective_shards(self.num_threads, &ops));
        let mut edges: Vec<(OpId, OpId, DepKind)> = if shards <= 1 {
            shard_edges(&ops, &non_det, &txn_of, 0, 1)
        } else {
            let results: Vec<Vec<(OpId, OpId, DepKind)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|shard| {
                        let (ops, non_det, txn_of) = (&ops, &non_det, &txn_of);
                        scope.spawn(move || shard_edges(ops, non_det, txn_of, shard, shards))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("construction worker panicked"))
                    .collect()
            });
            results.into_iter().flatten().collect()
        };

        // Non-deterministic operations must also be ordered against each
        // other: chain them by timestamp so that two operations that might
        // both touch the same (unknown) state never run concurrently.
        let same_txn = |a: OpId, b: OpId| txn_of[a] == txn_of[b];
        non_det.sort_by_key(|(id, ts, stmt)| (*ts, *stmt, *id));
        for pair in non_det.windows(2) {
            let (from, _, _) = pair[0];
            let (to, _, _) = pair[1];
            if !same_txn(from, to) {
                edges.push((from, to, DepKind::Pd));
            }
        }

        Tpg::assemble(ops, edges, txn_ops, txn_ts, expected_abort_ratio)
    }
}

/// Roughly how many operations each construction shard should own before an
/// extra worker pays for its spawn and its full-batch filtering scan.
const MIN_OPS_PER_SHARD: usize = 128;

/// How many operations to sample when estimating the batch's state
/// cardinality.
const CARDINALITY_SAMPLE: usize = 128;

/// Effective shard count for a batch: never more than the configured
/// workers, never so many that a shard owns fewer than [`MIN_OPS_PER_SHARD`]
/// operations, and never more than the batch's estimated distinct-state
/// count (paper-scale punctuations of 10k+ transactions over a wide key
/// space use every worker; unit-test-sized or hot-key batches run serially
/// instead of spawning workers that would own zero lists).
fn effective_shards(num_threads: usize, ops: &[Operation]) -> usize {
    let by_size = num_threads.min(ops.len() / MIN_OPS_PER_SHARD);
    if by_size <= 1 {
        return 1;
    }
    // Distinct states touched by a prefix sample bound the useful shard
    // count: a hot-key batch has ~1 distinct state in any sample and gains
    // nothing from sharding, however many operations it holds.
    let mut sampled: std::collections::HashSet<StateRef> =
        std::collections::HashSet::with_capacity(CARDINALITY_SAMPLE * 2);
    for op in ops.iter().take(CARDINALITY_SAMPLE) {
        if let Some(key) = op.spec.target.known() {
            sampled.insert(StateRef::new(op.spec.table, key));
        }
        for param in &op.spec.params {
            sampled.insert(*param);
        }
    }
    by_size.min(sampled.len()).max(1)
}

/// Build the sorted lists owned by `shard` (out of `shards`) and derive their
/// TD/PD edges. With `shards == 1` this is the whole batch — the serial path
/// and every parallel shard run exactly this code, which is what keeps the
/// two modes structurally identical.
///
/// Insertion order within a list matches the serial builder: operations are
/// scanned in id (= decomposition) order, the target entry of an operation
/// precedes its parameter entries, and non-deterministic placeholders are
/// broadcast after all real/parameter entries — so ties in the `(ts, stmt,
/// op)` sort key resolve identically via the stable finalize sort.
fn shard_edges(
    ops: &[Operation],
    non_det: &[(OpId, Timestamp, u32)],
    txn_of: &[TxnId],
    shard: usize,
    shards: usize,
) -> Vec<(OpId, OpId, DepKind)> {
    let owned = |state: &StateRef| shards == 1 || shard_of(state.table, state.key, shards) == shard;

    // ---- Stream processing phase (this shard's lists) ----
    let mut lists: HashMap<StateRef, SortedList> = HashMap::new();
    for op in ops {
        if let Some(key) = op.spec.target.known() {
            let state = StateRef::new(op.spec.table, key);
            if owned(&state) {
                lists
                    .entry(state)
                    .or_insert_with(|| SortedList::new(state.table, state.key))
                    .push(ListEntry::Real {
                        op: op.id,
                        ts: op.ts,
                        stmt: op.stmt,
                        is_write: op.spec.kind.is_write(),
                    });
            }
        }
        for param in &op.spec.params {
            if owned(param) {
                lists
                    .entry(*param)
                    .or_insert_with(|| SortedList::new(param.table, param.key))
                    .push(ListEntry::Virtual {
                        op: op.id,
                        ts: op.ts,
                        stmt: op.stmt,
                        role: VirtualRole::ParamSource,
                    });
            }
        }
    }

    // Pessimistic handling of non-deterministic accesses: a placeholder in
    // every sorted list that exists in this batch (Section 4.4) — here,
    // every list this shard owns; the union over shards covers the batch.
    for (id, ts, stmt) in non_det {
        for list in lists.values_mut() {
            list.push(ListEntry::Virtual {
                op: *id,
                ts: *ts,
                stmt: *stmt,
                role: VirtualRole::NonDetPlaceholder,
            });
        }
    }

    // ---- Transaction processing phase (this shard's lists) ----
    let same_txn = |a: OpId, b: OpId| txn_of[a] == txn_of[b];
    let mut edges = Vec::new();
    let mut finalized: Vec<SortedList> = lists.into_values().collect();
    for list in &mut finalized {
        list.finalize();
        let derived = derive_edges(list, same_txn);
        edges.extend(derived.td.into_iter().map(|(f, t)| (f, t, DepKind::Td)));
        edges.extend(derived.pd.into_iter().map(|(f, t)| (f, t, DepKind::Pd)));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{udfs, KeySpec, OperationSpec};
    use crate::txn::Transaction;
    use morphstream_common::TableId;
    use std::sync::Arc;

    const T: TableId = TableId(0);

    /// The running example of Figure 3: a deposit transaction and two
    /// transfer transactions over accounts A (key 0) and B (key 1).
    fn figure3_batch() -> TransactionBatch {
        // txn1 (ts 1): O1 = Write(A)
        let txn1 = Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(10))],
        );
        // txn2 (ts 2): O2 = Write(A), O3 = Write(B, f(A))
        let txn2 = Transaction::new(
            2,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::withdraw(5)),
                OperationSpec::write(T, 1, vec![StateRef::new(T, 0)], udfs::sum_params()),
            ],
        );
        // txn3 (ts 3): O4 = Write(B), O5 = Write(A, f(B))
        let txn3 = Transaction::new(
            3,
            vec![
                OperationSpec::write(T, 1, vec![], udfs::withdraw(5)),
                OperationSpec::write(T, 0, vec![StateRef::new(T, 1)], udfs::sum_params()),
            ],
        );
        // Arrive out of order on purpose (challenge C1).
        let mut batch = TransactionBatch::new();
        batch.push(txn2);
        batch.push(txn1);
        batch.push(txn3);
        batch
    }

    #[test]
    fn figure3_dependencies_are_tracked() {
        let tpg = TpgBuilder::new().build(figure3_batch());
        tpg.validate().unwrap();
        assert_eq!(tpg.num_ops(), 5);
        assert_eq!(tpg.num_txns(), 3);
        // After sorting, ops are: 0=O1(A,ts1), 1=O2(A,ts2), 2=O3(B,ts2),
        // 3=O4(B,ts3), 4=O5(A,ts3).
        let s = tpg.stats();
        // TDs: A chain O1->O2->O5 gives 2, B chain O3->O4 gives 1.
        assert_eq!(s.td_edges, 3);
        // PDs: O1 -> O3 (param A) and O3 -> O5 (param B)? The paper derives
        // PD from the latest preceding *write* of the parameter key: for O3
        // that is O2... but O2 belongs to a different transaction, so the
        // closest earlier write of A before ts2 is O1. For O5 the closest
        // earlier write of B is O4 (same ts? no, ts3 same txn → skipped), so
        // O3 at ts2.
        assert_eq!(s.pd_edges, 2);
        assert!(tpg
            .parents(2)
            .iter()
            .any(|(p, k)| *k == DepKind::Pd && tpg.op(*p).ts == 1));
        assert!(tpg
            .parents(4)
            .iter()
            .any(|(p, k)| *k == DepKind::Pd && tpg.op(*p).ts == 2));
        // LDs: one per multi-op transaction.
        assert_eq!(s.ld_edges, 2);
    }

    #[test]
    fn out_of_order_arrival_matches_in_order_arrival() {
        let in_order = {
            let mut b = TransactionBatch::new();
            for t in figure3_batch().into_sorted() {
                b.push(t);
            }
            b
        };
        let a = TpgBuilder::new().build(figure3_batch());
        let b = TpgBuilder::new().build(in_order);
        assert_eq!(a.stats(), b.stats());
    }

    /// Assert that two TPGs have identical stats and identical (already
    /// canonically ordered) adjacency — the "identical graphs" contract
    /// between the serial and sharded builders.
    fn assert_same_graph(a: &Tpg, b: &Tpg) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.num_ops(), b.num_ops());
        for id in 0..a.num_ops() {
            assert_eq!(a.parents(id), b.parents(id), "parents of op {id} differ");
            assert_eq!(a.children(id), b.children(id), "children of op {id} differ");
        }
    }

    #[test]
    fn parallel_and_serial_construction_agree() {
        let serial = TpgBuilder::new().build(figure3_batch());
        // tiny batch: force the parallel path past the batch-size clamp
        let parallel = TpgBuilder::new()
            .with_threads(4)
            .build_with(figure3_batch(), Some(4));
        assert_same_graph(&serial, &parallel);
    }

    /// `count` single-op transactions cycling over `keys` distinct keys.
    fn dummy_ops(count: usize, keys: u64) -> Vec<Operation> {
        (0..count)
            .map(|i| Operation {
                id: i,
                txn: i,
                ts: i as u64 + 1,
                stmt: 0,
                spec: OperationSpec::write(T, i as u64 % keys, vec![], udfs::add_delta(1)),
            })
            .collect()
    }

    #[test]
    fn effective_shards_clamp_by_batch_size_and_cardinality() {
        assert_eq!(effective_shards(8, &dummy_ops(5, 5)), 1); // tiny: serial
        assert_eq!(effective_shards(8, &dummy_ops(128, 128)), 1);
        assert_eq!(effective_shards(8, &dummy_ops(256, 256)), 2);
        // paper-scale over a wide key space: all workers
        assert_eq!(effective_shards(8, &dummy_ops(10_240, 1_024)), 8);
        assert_eq!(effective_shards(1, &dummy_ops(10_240, 1_024)), 1);
        // hot-key batches gain nothing from sharding, however large
        assert_eq!(effective_shards(8, &dummy_ops(10_240, 1)), 1);
        assert_eq!(effective_shards(8, &dummy_ops(10_240, 3)), 3);
    }

    #[test]
    fn large_batches_shard_through_the_public_path() {
        // Enough operations (600 txns x 2 ops) that build() itself picks a
        // multi-shard construction; the graph must match the serial build.
        let batch = || {
            let mut b = TransactionBatch::new();
            for ts in 1..=600u64 {
                b.push(Transaction::new(
                    ts,
                    vec![
                        OperationSpec::write(T, ts % 64, vec![], udfs::add_delta(1)),
                        OperationSpec::write(
                            T,
                            (ts * 13 + 7) % 64,
                            vec![StateRef::new(T, ts % 64)],
                            udfs::sum_params(),
                        ),
                    ],
                ));
            }
            b
        };
        assert!(effective_shards(4, &dummy_ops(1_200, 64)) > 1);
        let serial = TpgBuilder::new().build(batch());
        let sharded = TpgBuilder::new().with_threads(4).build(batch());
        sharded.validate().unwrap();
        assert_same_graph(&serial, &sharded);
    }

    #[test]
    fn default_builder_is_single_threaded() {
        assert_eq!(TpgBuilder::new().threads(), 1);
        assert_eq!(TpgBuilder::default().threads(), 1);
        assert_eq!(TpgBuilder::new().with_threads(0).threads(), 1);
        assert_eq!(TpgBuilder::new().with_threads(6).threads(), 6);
    }

    #[test]
    fn sharded_construction_with_more_threads_than_states_leaves_shards_empty() {
        // Figure 3 touches exactly two states (A and B); with 8 workers at
        // least six shards own no list at all and must contribute no edges.
        let serial = TpgBuilder::new().build(figure3_batch());
        for threads in [2, 3, 8, 16] {
            let sharded = TpgBuilder::new()
                .with_threads(threads)
                .build_with(figure3_batch(), Some(threads));
            sharded.validate().unwrap();
            assert_same_graph(&serial, &sharded);
        }
    }

    #[test]
    fn sharded_construction_handles_all_non_deterministic_batches() {
        // Every operation resolves its key at execution time: there are no
        // sorted lists anywhere, only the cross-shard non-det chain.
        let batch = || {
            let mut b = TransactionBatch::new();
            for ts in 1..=6u64 {
                b.push(Transaction::new(
                    ts,
                    vec![OperationSpec::non_det_write(
                        T,
                        Arc::new(|ts| ts % 3),
                        vec![],
                        udfs::set_value(1),
                    )],
                ));
            }
            b
        };
        let serial = TpgBuilder::new().build(batch());
        let sharded = TpgBuilder::new()
            .with_threads(4)
            .build_with(batch(), Some(4));
        serial.validate().unwrap();
        sharded.validate().unwrap();
        assert_same_graph(&serial, &sharded);
        // the chain orders all six ops pairwise-adjacently
        assert_eq!(serial.stats().pd_edges, 5);
    }

    #[test]
    fn sharded_construction_orders_timestamp_ties_like_the_serial_builder() {
        // Several transactions share timestamps, and one operation both
        // targets and references the same key (a Real and a Virtual entry
        // with an identical (ts, stmt, op) sort key) — tie order inside each
        // sorted list must match the serial builder exactly.
        let batch = || {
            let mut b = TransactionBatch::new();
            for ts in [2u64, 1, 2, 1, 3] {
                b.push(Transaction::new(
                    ts,
                    vec![
                        OperationSpec::write(T, ts % 3, vec![], udfs::add_delta(1)),
                        OperationSpec::write(
                            T,
                            (ts + 1) % 3,
                            vec![StateRef::new(T, (ts + 1) % 3), StateRef::new(T, ts % 3)],
                            udfs::sum_params(),
                        ),
                    ],
                ));
            }
            // one non-det op in the middle of the tied timestamps
            b.push(Transaction::new(
                2,
                vec![OperationSpec::non_det_write(
                    T,
                    Arc::new(|ts| ts),
                    vec![],
                    udfs::set_value(9),
                )],
            ));
            b
        };
        let serial = TpgBuilder::new().build(batch());
        for threads in [2, 4, 8] {
            let sharded = TpgBuilder::new()
                .with_threads(threads)
                .build_with(batch(), Some(threads));
            sharded.validate().unwrap();
            assert_same_graph(&serial, &sharded);
        }
    }

    #[test]
    fn window_write_gains_pd_from_window_source_and_td_on_target() {
        // Figure 4a: O6 = Write(A, window(C, 10s)).
        let c_key = StateRef::new(T, 2);
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 2, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            3,
            vec![OperationSpec::window_write(
                T,
                0,
                vec![c_key],
                10,
                udfs::window_sum(),
            )],
        ));
        let tpg = TpgBuilder::new().build(batch);
        tpg.validate().unwrap();
        // op2 (the window write) has a TD parent on A (op0) and a PD parent on
        // C (op1).
        let kinds: Vec<DepKind> = tpg.parents(2).iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&DepKind::Td));
        assert!(kinds.contains(&DepKind::Pd));
    }

    #[test]
    fn non_deterministic_ops_are_ordered_against_every_list() {
        // Figure 4b: O6 writes a UDF-resolved key; it must depend on the
        // latest earlier operation of every sorted list.
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 1, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            3,
            vec![OperationSpec::non_det_write(
                T,
                Arc::new(|ts| ts % 2),
                vec![],
                udfs::set_value(7),
            )],
        ));
        batch.push(Transaction::new(
            4,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        let tpg = TpgBuilder::new().build(batch);
        tpg.validate().unwrap();
        // op2 is the non-det write; it depends on both earlier writes.
        let parents: Vec<OpId> = tpg.parents(2).iter().map(|(p, _)| *p).collect();
        assert!(parents.contains(&0));
        assert!(parents.contains(&1));
        // and the later write on key 0 depends on it.
        let parents3: Vec<OpId> = tpg.parents(3).iter().map(|(p, _)| *p).collect();
        assert!(parents3.contains(&2));
        // the non-det op's key spec stays unresolved at planning time.
        assert!(matches!(
            tpg.op(2).spec.target,
            KeySpec::NonDeterministic(_)
        ));
    }

    #[test]
    fn consecutive_non_det_ops_are_chained() {
        let mut batch = TransactionBatch::new();
        for ts in 1..=3u64 {
            batch.push(Transaction::new(
                ts,
                vec![OperationSpec::non_det_write(
                    T,
                    Arc::new(|ts| ts),
                    vec![],
                    udfs::set_value(1),
                )],
            ));
        }
        let tpg = TpgBuilder::new().build(batch);
        assert!(tpg.parents(1).iter().any(|(p, _)| *p == 0));
        assert!(tpg.parents(2).iter().any(|(p, _)| *p == 1));
    }

    #[test]
    fn empty_batch_builds_empty_tpg() {
        let tpg = TpgBuilder::new().build(TransactionBatch::new());
        assert_eq!(tpg.num_ops(), 0);
        assert_eq!(tpg.num_txns(), 0);
    }

    #[test]
    fn stats_reflect_special_operation_counts() {
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::window_read(T, 0, 100, udfs::window_sum()).with_cost_us(20),
                OperationSpec::non_det_write(T, Arc::new(|_| 3), vec![], udfs::set_value(1)),
                OperationSpec::write(
                    T,
                    1,
                    vec![StateRef::new(T, 0), StateRef::new(T, 2)],
                    udfs::sum_params(),
                ),
            ],
        ));
        let tpg = TpgBuilder::new().build(batch.clone().with_expected_abort_ratio(0.5));
        let s = tpg.stats();
        assert_eq!(s.window_ops, 1);
        assert_eq!(s.non_det_ops, 1);
        assert_eq!(s.multi_param_ops, 1);
        assert!(s.mean_cost_us > 0.0);
        assert_eq!(s.expected_abort_ratio, 0.5);
    }
}
