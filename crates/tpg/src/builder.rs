//! Two-phase TPG construction (Section 4.2).
//!
//! * **Stream processing phase** — transactions (possibly arriving out of
//!   order) are sorted by timestamp and decomposed into operations; logical
//!   dependencies are implied by the per-transaction operation lists; every
//!   operation is inserted into the sorted list of the state it targets, and
//!   virtual operations are inserted for parameter states, window sources,
//!   and (pessimistically, into every list) non-deterministic accesses.
//! * **Transaction processing phase** — each sorted list is scanned once to
//!   derive TD and PD edges; this phase is embarrassingly parallel across
//!   lists and is sharded over the configured number of threads.

use std::collections::HashMap;

use morphstream_common::{OpId, StateRef, Timestamp, TxnId};

use crate::graph::{DepKind, Tpg};
use crate::operation::Operation;
use crate::sorted_list::{derive_edges, ListEntry, SortedList, VirtualRole};
use crate::txn::TransactionBatch;

/// Builds a [`Tpg`] from a [`TransactionBatch`].
#[derive(Debug, Clone)]
pub struct TpgBuilder {
    num_threads: usize,
}

impl Default for TpgBuilder {
    fn default() -> Self {
        Self { num_threads: 1 }
    }
}

impl TpgBuilder {
    /// Builder that runs the transaction processing phase on a single thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Use `num_threads` workers for the transaction processing phase.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads.max(1);
        self
    }

    /// Build the TPG for one batch.
    pub fn build(&self, batch: TransactionBatch) -> Tpg {
        let expected_abort_ratio = batch.expected_abort_ratio;
        let txns = batch.into_sorted();

        // ---- Stream processing phase ----
        let mut ops: Vec<Operation> = Vec::new();
        let mut txn_ops: Vec<Vec<OpId>> = Vec::with_capacity(txns.len());
        let mut txn_ts: Vec<Timestamp> = Vec::with_capacity(txns.len());
        let mut lists: HashMap<StateRef, SortedList> = HashMap::new();
        // (op id, ts, stmt) of non-deterministic operations, in ts order.
        let mut non_det: Vec<(OpId, Timestamp, u32)> = Vec::new();

        for (txn_id, txn) in txns.into_iter().enumerate() {
            txn_ts.push(txn.ts);
            let mut ids = Vec::with_capacity(txn.ops.len());
            for (stmt_idx, spec) in txn.ops.into_iter().enumerate() {
                let id = ops.len();
                let stmt = stmt_idx as u32;
                let is_write = spec.kind.is_write();
                match spec.target.known() {
                    Some(key) => {
                        lists
                            .entry(StateRef::new(spec.table, key))
                            .or_insert_with(|| SortedList::new(spec.table, key))
                            .push(ListEntry::Real {
                                op: id,
                                ts: txn.ts,
                                stmt,
                                is_write,
                            });
                    }
                    None => non_det.push((id, txn.ts, stmt)),
                }
                for param in &spec.params {
                    lists
                        .entry(*param)
                        .or_insert_with(|| SortedList::new(param.table, param.key))
                        .push(ListEntry::Virtual {
                            op: id,
                            ts: txn.ts,
                            stmt,
                            role: VirtualRole::ParamSource,
                        });
                }
                ops.push(Operation {
                    id,
                    txn: txn_id,
                    ts: txn.ts,
                    stmt,
                    spec,
                });
                ids.push(id);
            }
            txn_ops.push(ids);
        }

        // Pessimistic handling of non-deterministic accesses: a placeholder in
        // every sorted list that exists in this batch (Section 4.4).
        for (id, ts, stmt) in &non_det {
            for list in lists.values_mut() {
                list.push(ListEntry::Virtual {
                    op: *id,
                    ts: *ts,
                    stmt: *stmt,
                    role: VirtualRole::NonDetPlaceholder,
                });
            }
        }

        // ---- Transaction processing phase ----
        let txn_of: Vec<TxnId> = ops.iter().map(|o| o.txn).collect();
        let same_txn = |a: OpId, b: OpId| txn_of[a] == txn_of[b];

        let mut finalized: Vec<SortedList> = lists.into_values().collect();
        for list in &mut finalized {
            list.finalize();
        }

        let mut edges: Vec<(OpId, OpId, DepKind)> = Vec::new();
        if self.num_threads <= 1 || finalized.len() < 2 {
            for list in &finalized {
                let derived = derive_edges(list, same_txn);
                edges.extend(derived.td.into_iter().map(|(f, t)| (f, t, DepKind::Td)));
                edges.extend(derived.pd.into_iter().map(|(f, t)| (f, t, DepKind::Pd)));
            }
        } else {
            let shards = self.num_threads.min(finalized.len());
            let chunk = finalized.len().div_ceil(shards);
            let results: Vec<Vec<(OpId, OpId, DepKind)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = finalized
                    .chunks(chunk)
                    .map(|chunk_lists| {
                        let txn_of = &txn_of;
                        scope.spawn(move || {
                            let same_txn = |a: OpId, b: OpId| txn_of[a] == txn_of[b];
                            let mut local = Vec::new();
                            for list in chunk_lists {
                                let derived = derive_edges(list, same_txn);
                                local.extend(
                                    derived.td.into_iter().map(|(f, t)| (f, t, DepKind::Td)),
                                );
                                local.extend(
                                    derived.pd.into_iter().map(|(f, t)| (f, t, DepKind::Pd)),
                                );
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("phase-2 worker panicked"))
                    .collect()
            });
            for mut part in results {
                edges.append(&mut part);
            }
        }

        // Non-deterministic operations must also be ordered against each
        // other: chain them by timestamp so that two operations that might
        // both touch the same (unknown) state never run concurrently.
        non_det.sort_by_key(|(id, ts, stmt)| (*ts, *stmt, *id));
        for pair in non_det.windows(2) {
            let (from, _, _) = pair[0];
            let (to, _, _) = pair[1];
            if !same_txn(from, to) {
                edges.push((from, to, DepKind::Pd));
            }
        }

        Tpg::assemble(ops, edges, txn_ops, txn_ts, expected_abort_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{udfs, KeySpec, OperationSpec};
    use crate::txn::Transaction;
    use morphstream_common::TableId;
    use std::sync::Arc;

    const T: TableId = TableId(0);

    /// The running example of Figure 3: a deposit transaction and two
    /// transfer transactions over accounts A (key 0) and B (key 1).
    fn figure3_batch() -> TransactionBatch {
        // txn1 (ts 1): O1 = Write(A)
        let txn1 = Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(10))],
        );
        // txn2 (ts 2): O2 = Write(A), O3 = Write(B, f(A))
        let txn2 = Transaction::new(
            2,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::withdraw(5)),
                OperationSpec::write(T, 1, vec![StateRef::new(T, 0)], udfs::sum_params()),
            ],
        );
        // txn3 (ts 3): O4 = Write(B), O5 = Write(A, f(B))
        let txn3 = Transaction::new(
            3,
            vec![
                OperationSpec::write(T, 1, vec![], udfs::withdraw(5)),
                OperationSpec::write(T, 0, vec![StateRef::new(T, 1)], udfs::sum_params()),
            ],
        );
        // Arrive out of order on purpose (challenge C1).
        let mut batch = TransactionBatch::new();
        batch.push(txn2);
        batch.push(txn1);
        batch.push(txn3);
        batch
    }

    #[test]
    fn figure3_dependencies_are_tracked() {
        let tpg = TpgBuilder::new().build(figure3_batch());
        tpg.validate().unwrap();
        assert_eq!(tpg.num_ops(), 5);
        assert_eq!(tpg.num_txns(), 3);
        // After sorting, ops are: 0=O1(A,ts1), 1=O2(A,ts2), 2=O3(B,ts2),
        // 3=O4(B,ts3), 4=O5(A,ts3).
        let s = tpg.stats();
        // TDs: A chain O1->O2->O5 gives 2, B chain O3->O4 gives 1.
        assert_eq!(s.td_edges, 3);
        // PDs: O1 -> O3 (param A) and O3 -> O5 (param B)? The paper derives
        // PD from the latest preceding *write* of the parameter key: for O3
        // that is O2... but O2 belongs to a different transaction, so the
        // closest earlier write of A before ts2 is O1. For O5 the closest
        // earlier write of B is O4 (same ts? no, ts3 same txn → skipped), so
        // O3 at ts2.
        assert_eq!(s.pd_edges, 2);
        assert!(tpg
            .parents(2)
            .iter()
            .any(|(p, k)| *k == DepKind::Pd && tpg.op(*p).ts == 1));
        assert!(tpg
            .parents(4)
            .iter()
            .any(|(p, k)| *k == DepKind::Pd && tpg.op(*p).ts == 2));
        // LDs: one per multi-op transaction.
        assert_eq!(s.ld_edges, 2);
    }

    #[test]
    fn out_of_order_arrival_matches_in_order_arrival() {
        let in_order = {
            let mut b = TransactionBatch::new();
            for t in figure3_batch().into_sorted() {
                b.push(t);
            }
            b
        };
        let a = TpgBuilder::new().build(figure3_batch());
        let b = TpgBuilder::new().build(in_order);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn parallel_and_serial_construction_agree() {
        let serial = TpgBuilder::new().build(figure3_batch());
        let parallel = TpgBuilder::new().with_threads(4).build(figure3_batch());
        assert_eq!(serial.stats(), parallel.stats());
        for id in 0..serial.num_ops() {
            let mut a: Vec<_> = serial.parents(id).to_vec();
            let mut b: Vec<_> = parallel.parents(id).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn window_write_gains_pd_from_window_source_and_td_on_target() {
        // Figure 4a: O6 = Write(A, window(C, 10s)).
        let c_key = StateRef::new(T, 2);
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 2, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            3,
            vec![OperationSpec::window_write(
                T,
                0,
                vec![c_key],
                10,
                udfs::window_sum(),
            )],
        ));
        let tpg = TpgBuilder::new().build(batch);
        tpg.validate().unwrap();
        // op2 (the window write) has a TD parent on A (op0) and a PD parent on
        // C (op1).
        let kinds: Vec<DepKind> = tpg.parents(2).iter().map(|(_, k)| *k).collect();
        assert!(kinds.contains(&DepKind::Td));
        assert!(kinds.contains(&DepKind::Pd));
    }

    #[test]
    fn non_deterministic_ops_are_ordered_against_every_list() {
        // Figure 4b: O6 writes a UDF-resolved key; it must depend on the
        // latest earlier operation of every sorted list.
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 1, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            3,
            vec![OperationSpec::non_det_write(
                T,
                Arc::new(|ts| ts % 2),
                vec![],
                udfs::set_value(7),
            )],
        ));
        batch.push(Transaction::new(
            4,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        let tpg = TpgBuilder::new().build(batch);
        tpg.validate().unwrap();
        // op2 is the non-det write; it depends on both earlier writes.
        let parents: Vec<OpId> = tpg.parents(2).iter().map(|(p, _)| *p).collect();
        assert!(parents.contains(&0));
        assert!(parents.contains(&1));
        // and the later write on key 0 depends on it.
        let parents3: Vec<OpId> = tpg.parents(3).iter().map(|(p, _)| *p).collect();
        assert!(parents3.contains(&2));
        // the non-det op's key spec stays unresolved at planning time.
        assert!(matches!(
            tpg.op(2).spec.target,
            KeySpec::NonDeterministic(_)
        ));
    }

    #[test]
    fn consecutive_non_det_ops_are_chained() {
        let mut batch = TransactionBatch::new();
        for ts in 1..=3u64 {
            batch.push(Transaction::new(
                ts,
                vec![OperationSpec::non_det_write(
                    T,
                    Arc::new(|ts| ts),
                    vec![],
                    udfs::set_value(1),
                )],
            ));
        }
        let tpg = TpgBuilder::new().build(batch);
        assert!(tpg.parents(1).iter().any(|(p, _)| *p == 0));
        assert!(tpg.parents(2).iter().any(|(p, _)| *p == 1));
    }

    #[test]
    fn empty_batch_builds_empty_tpg() {
        let tpg = TpgBuilder::new().build(TransactionBatch::new());
        assert_eq!(tpg.num_ops(), 0);
        assert_eq!(tpg.num_txns(), 0);
    }

    #[test]
    fn stats_reflect_special_operation_counts() {
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::window_read(T, 0, 100, udfs::window_sum()).with_cost_us(20),
                OperationSpec::non_det_write(T, Arc::new(|_| 3), vec![], udfs::set_value(1)),
                OperationSpec::write(
                    T,
                    1,
                    vec![StateRef::new(T, 0), StateRef::new(T, 2)],
                    udfs::sum_params(),
                ),
            ],
        ));
        let tpg = TpgBuilder::new().build(batch.clone().with_expected_abort_ratio(0.5));
        let s = tpg.stats();
        assert_eq!(s.window_ops, 1);
        assert_eq!(s.non_det_ops, 1);
        assert_eq!(s.multi_param_ops, 1);
        assert!(s.mean_cost_us > 0.0);
        assert_eq!(s.expected_abort_ratio, 0.5);
    }
}
