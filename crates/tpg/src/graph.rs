//! The Task Precedence Graph.

use std::collections::HashMap;

use morphstream_common::{OpId, Timestamp, TxnId};

use crate::operation::Operation;

/// Kind of a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DepKind {
    /// Temporal dependency — same state, later timestamp, different
    /// transactions.
    Td,
    /// Parametric dependency — the write value is a function of a state
    /// written by the source operation.
    Pd,
    /// Logical dependency — same transaction; constrains abort propagation
    /// but not execution order.
    Ld,
}

/// Aggregate properties of a TPG (Table 2 of the paper); these are the inputs
/// of the heuristic decision model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TpgStats {
    /// Number of operations (vertices).
    pub num_ops: usize,
    /// Number of state transactions.
    pub num_txns: usize,
    /// Number of logical dependency edges.
    pub ld_edges: usize,
    /// Number of temporal dependency edges.
    pub td_edges: usize,
    /// Number of parametric dependency edges.
    pub pd_edges: usize,
    /// Largest execution-constraining (TD+PD) out-degree of any vertex.
    pub max_out_degree: usize,
    /// Mean execution-constraining out-degree.
    pub mean_out_degree: f64,
    /// Degree-distribution skew: max degree divided by mean degree. 1.0 means
    /// perfectly balanced; large values mean a few states are hot.
    pub degree_skew: f64,
    /// Workload-provided estimate of the fraction of aborting transactions.
    pub expected_abort_ratio: f64,
    /// Mean emulated UDF cost in microseconds (vertex computation
    /// complexity).
    pub mean_cost_us: f64,
    /// Number of non-deterministic operations.
    pub non_det_ops: usize,
    /// Number of windowed operations.
    pub window_ops: usize,
    /// Number of operations with more than one parameter state (the `r`
    /// knob).
    pub multi_param_ops: usize,
}

/// The stateful-to-be task precedence graph: operations plus dependency
/// edges. Execution state (the FSM of Section 6.1) is layered on top by the
/// executor crate, keeping this structure immutable after planning.
#[derive(Debug, Default)]
pub struct Tpg {
    ops: Vec<Operation>,
    /// Incoming execution-constraining edges (TD/PD) per op.
    parents: Vec<Vec<(OpId, DepKind)>>,
    /// Outgoing execution-constraining edges (TD/PD) per op.
    children: Vec<Vec<(OpId, DepKind)>>,
    /// Operations of each transaction, in statement order (LD groups).
    txn_ops: Vec<Vec<OpId>>,
    /// Timestamp of each transaction.
    txn_ts: Vec<Timestamp>,
    stats: TpgStats,
}

impl Tpg {
    /// Assemble a TPG from planner output. `edges` must only contain TD and
    /// PD edges; LD grouping is given through `txn_ops`.
    pub(crate) fn assemble(
        ops: Vec<Operation>,
        edges: Vec<(OpId, OpId, DepKind)>,
        txn_ops: Vec<Vec<OpId>>,
        txn_ts: Vec<Timestamp>,
        expected_abort_ratio: f64,
    ) -> Self {
        let n = ops.len();
        let mut parents: Vec<Vec<(OpId, DepKind)>> = vec![Vec::new(); n];
        let mut children: Vec<Vec<(OpId, DepKind)>> = vec![Vec::new(); n];
        let mut td_edges = 0usize;
        let mut pd_edges = 0usize;

        // Deduplicate (from, to) pairs: an operation pair may be linked by
        // both a TD and a PD; the executor needs exactly one constraint per
        // pair so that dependency counting matches notifications.
        let mut seen: HashMap<(OpId, OpId), DepKind> = HashMap::with_capacity(edges.len());
        for (from, to, kind) in edges {
            debug_assert!(from < n && to < n, "edge endpoints must be valid ops");
            debug_assert_ne!(from, to, "self edges are not allowed");
            match kind {
                DepKind::Td => td_edges += 1,
                DepKind::Pd => pd_edges += 1,
                DepKind::Ld => unreachable!("LD edges are tracked via txn_ops"),
            }
            // PD wins over TD for reporting purposes when both exist.
            seen.entry((from, to))
                .and_modify(|k| {
                    if kind == DepKind::Pd {
                        *k = DepKind::Pd;
                    }
                })
                .or_insert(kind);
        }
        let mut dedup: Vec<((OpId, OpId), DepKind)> = seen.into_iter().collect();
        dedup.sort_by_key(|((from, to), _)| (*from, *to));
        for ((from, to), kind) in dedup {
            children[from].push((to, kind));
            parents[to].push((from, kind));
        }

        let ld_edges = txn_ops.iter().map(|ops| ops.len().saturating_sub(1)).sum();

        let mut stats = TpgStats {
            num_ops: n,
            num_txns: txn_ops.len(),
            ld_edges,
            td_edges,
            pd_edges,
            expected_abort_ratio,
            ..TpgStats::default()
        };

        let mut degree_sum = 0usize;
        for c in &children {
            stats.max_out_degree = stats.max_out_degree.max(c.len());
            degree_sum += c.len();
        }
        stats.mean_out_degree = if n == 0 {
            0.0
        } else {
            degree_sum as f64 / n as f64
        };
        stats.degree_skew = if stats.mean_out_degree > 0.0 {
            stats.max_out_degree as f64 / stats.mean_out_degree
        } else {
            1.0
        };
        let mut cost_sum = 0u64;
        for op in &ops {
            cost_sum += op.spec.cost_us;
            if op.spec.kind.is_non_deterministic() {
                stats.non_det_ops += 1;
            }
            if op.spec.kind.is_windowed() {
                stats.window_ops += 1;
            }
            if op.spec.params.len() > 1 {
                stats.multi_param_ops += 1;
            }
        }
        stats.mean_cost_us = if n == 0 {
            0.0
        } else {
            cost_sum as f64 / n as f64
        };

        Self {
            ops,
            parents,
            children,
            txn_ops,
            txn_ts,
            stats,
        }
    }

    /// Number of operations (vertices).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of transactions.
    pub fn num_txns(&self) -> usize {
        self.txn_ops.len()
    }

    /// Operation by id.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id]
    }

    /// All operations.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Incoming TD/PD edges of `id`.
    pub fn parents(&self, id: OpId) -> &[(OpId, DepKind)] {
        &self.parents[id]
    }

    /// Outgoing TD/PD edges of `id`.
    pub fn children(&self, id: OpId) -> &[(OpId, DepKind)] {
        &self.children[id]
    }

    /// Operations of transaction `txn` in statement order.
    pub fn txn_ops(&self, txn: TxnId) -> &[OpId] {
        &self.txn_ops[txn]
    }

    /// Timestamp of transaction `txn`.
    pub fn txn_ts(&self, txn: TxnId) -> Timestamp {
        self.txn_ts[txn]
    }

    /// Aggregate graph properties.
    pub fn stats(&self) -> &TpgStats {
        &self.stats
    }

    /// Stratification for structured exploration: `rank[op]` is the length of
    /// the longest TD/PD path ending at `op`; all operations of a stratum can
    /// run once the previous strata finished. Returns `(ranks, num_strata)`.
    ///
    /// The TPG over TD/PD edges is a DAG by construction (edges always point
    /// from a smaller to a larger timestamp), so a single pass over the
    /// operations in timestamp order suffices.
    pub fn strata(&self) -> (Vec<usize>, usize) {
        let n = self.ops.len();
        let mut order: Vec<OpId> = (0..n).collect();
        order.sort_by_key(|&id| (self.ops[id].ts, self.ops[id].stmt, id));
        let mut rank = vec![0usize; n];
        let mut max_rank = 0usize;
        for id in order {
            let r = self.parents[id]
                .iter()
                .map(|(p, _)| rank[*p] + 1)
                .max()
                .unwrap_or(0);
            rank[id] = r;
            max_rank = max_rank.max(r);
        }
        let num_strata = if n == 0 { 0 } else { max_rank + 1 };
        (rank, num_strata)
    }

    /// Check the structural invariants the executor relies on. Used by tests
    /// and debug assertions, not on the hot path.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.ops.len();
        for (id, parents) in self.parents.iter().enumerate() {
            for (p, kind) in parents {
                if *p >= n {
                    return Err(format!("op {id} has out-of-range parent {p}"));
                }
                if self.ops[*p].ts > self.ops[id].ts {
                    return Err(format!(
                        "edge {p} -> {id} ({kind:?}) goes backwards in time"
                    ));
                }
                if !self.children[*p].iter().any(|(c, _)| *c == id) {
                    return Err(format!("edge {p} -> {id} missing from children list"));
                }
            }
        }
        for (txn, ops) in self.txn_ops.iter().enumerate() {
            for op in ops {
                if self.ops[*op].txn != txn {
                    return Err(format!("op {op} listed under wrong transaction {txn}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operation::{udfs, OperationSpec};
    use morphstream_common::TableId;

    fn op(id: OpId, txn: TxnId, ts: Timestamp, stmt: u32, key: u64, write: bool) -> Operation {
        let spec = if write {
            OperationSpec::write(TableId(0), key, vec![], udfs::add_delta(1))
        } else {
            OperationSpec::read(TableId(0), key)
        };
        Operation {
            id,
            txn,
            ts,
            stmt,
            spec,
        }
    }

    fn sample_tpg() -> Tpg {
        // txn0: op0 (ts 1); txn1: op1, op2 (ts 2); txn2: op3 (ts 3)
        let ops = vec![
            op(0, 0, 1, 0, 10, true),
            op(1, 1, 2, 0, 10, true),
            op(2, 1, 2, 1, 20, true),
            op(3, 2, 3, 0, 20, false),
        ];
        let edges = vec![
            (0, 1, DepKind::Td),
            (0, 1, DepKind::Pd), // duplicate pair with a different kind
            (2, 3, DepKind::Td),
        ];
        Tpg::assemble(
            ops,
            edges,
            vec![vec![0], vec![1, 2], vec![3]],
            vec![1, 2, 3],
            0.05,
        )
    }

    #[test]
    fn assembly_builds_consistent_adjacency() {
        let tpg = sample_tpg();
        assert_eq!(tpg.num_ops(), 4);
        assert_eq!(tpg.num_txns(), 3);
        tpg.validate().unwrap();
        // duplicate (0,1) edge collapsed to one adjacency entry, PD wins
        assert_eq!(tpg.parents(1).len(), 1);
        assert_eq!(tpg.parents(1)[0], (0, DepKind::Pd));
        assert_eq!(tpg.children(0).len(), 1);
        assert_eq!(tpg.parents(3), &[(2, DepKind::Td)]);
        assert!(tpg.parents(0).is_empty());
    }

    #[test]
    fn stats_count_edges_and_structure() {
        let tpg = sample_tpg();
        let s = tpg.stats();
        assert_eq!(s.num_ops, 4);
        assert_eq!(s.num_txns, 3);
        assert_eq!(s.td_edges, 2);
        assert_eq!(s.pd_edges, 1);
        assert_eq!(s.ld_edges, 1); // txn1 has two ops
        assert_eq!(s.expected_abort_ratio, 0.05);
        assert!(s.max_out_degree >= 1);
        assert!(s.degree_skew >= 1.0);
    }

    #[test]
    fn strata_follow_longest_dependency_paths() {
        let tpg = sample_tpg();
        let (rank, num_strata) = tpg.strata();
        assert_eq!(num_strata, 2);
        assert_eq!(rank[0], 0);
        assert_eq!(rank[1], 1);
        assert_eq!(rank[2], 0);
        assert_eq!(rank[3], 1);
    }

    #[test]
    fn txn_accessors_round_trip() {
        let tpg = sample_tpg();
        assert_eq!(tpg.txn_ops(1), &[1, 2]);
        assert_eq!(tpg.txn_ts(1), 2);
        assert_eq!(tpg.op(2).stmt, 1);
        assert_eq!(tpg.ops().len(), 4);
    }

    #[test]
    fn empty_tpg_is_valid() {
        let tpg = Tpg::assemble(vec![], vec![], vec![], vec![], 0.0);
        assert_eq!(tpg.num_ops(), 0);
        let (ranks, strata) = tpg.strata();
        assert!(ranks.is_empty());
        assert_eq!(strata, 0);
        tpg.validate().unwrap();
    }
}
