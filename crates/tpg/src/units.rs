//! Scheduling units: the granularity dimension of the scheduling decision.
//!
//! Fine-grained scheduling (`f-schedule`) treats every operation as its own
//! unit; coarse-grained scheduling (`c-schedule`) groups the operations that
//! target the same state into one unit (an *operation chain*), which
//! amortises context switching but can create circular dependencies between
//! units (Figure 6). When cycles appear, the involved units are merged into a
//! single unit, as the paper prescribes.

use std::collections::HashMap;

use morphstream_common::OpId;

use crate::graph::Tpg;

/// Grouping key used by the unit constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GroupKey {
    /// Group by target state (operation chains).
    State(u32, u64),
    /// Group by owning transaction (S-Store-style whole-transaction units).
    Txn(usize),
}

/// One scheduling unit: a set of operations scheduled and dispatched
/// together, in timestamp order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unit {
    /// Unit index.
    pub id: usize,
    /// Operations of the unit in execution (timestamp) order.
    pub ops: Vec<OpId>,
}

/// The partition of a TPG into scheduling units plus the unit-level
/// dependency graph.
#[derive(Debug, Clone)]
pub struct SchedulingUnits {
    units: Vec<Unit>,
    unit_of: Vec<usize>,
    parents: Vec<Vec<usize>>,
    children: Vec<Vec<usize>>,
    /// Whether coarse grouping produced circular dependencies that had to be
    /// merged away. This feeds the decision model's `Cyclic Dependency`
    /// input.
    pub had_cycles: bool,
}

impl SchedulingUnits {
    /// Fine-grained units: one operation per unit.
    pub fn fine(tpg: &Tpg) -> Self {
        let n = tpg.num_ops();
        let units = (0..n)
            .map(|id| Unit { id, ops: vec![id] })
            .collect::<Vec<_>>();
        let unit_of = (0..n).collect::<Vec<_>>();
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for (op, op_parents) in parents.iter_mut().enumerate() {
            for (p, _) in tpg.parents(op) {
                op_parents.push(*p);
                children[*p].push(op);
            }
        }
        Self {
            units,
            unit_of,
            parents,
            children,
            had_cycles: false,
        }
    }

    /// Coarse-grained units: group operations by target state (operation
    /// chains); operations without a planning-time key (non-deterministic
    /// accesses) form singleton units. Units participating in a dependency
    /// cycle are merged.
    pub fn coarse(tpg: &Tpg) -> Self {
        Self::grouped(tpg, |tpg, op| {
            let operation = tpg.op(op);
            operation
                .known_key()
                .map(|key| GroupKey::State(operation.spec.table.0, key))
        })
    }

    /// Transaction-granularity units: every state transaction is one unit, the
    /// scheduling model of S-Store (whole transactions are the unit of
    /// scheduling, executed serially when they conflict).
    pub fn by_transaction(tpg: &Tpg) -> Self {
        Self::grouped(tpg, |tpg, op| Some(GroupKey::Txn(tpg.op(op).txn)))
    }

    /// Partition-granularity transaction units: every transaction is one unit
    /// and, in addition, transactions are conflict-checked at the granularity
    /// of `num_partitions` key partitions rather than individual keys. This
    /// models S-Store's partitioned stores: two transactions touching the
    /// same partition are ordered even when they touch different keys.
    pub fn by_partitioned_transaction(tpg: &Tpg, num_partitions: usize) -> Self {
        let num_partitions = num_partitions.max(1);
        let mut units = Self::grouped(tpg, |tpg, op| Some(GroupKey::Txn(tpg.op(op).txn)));
        // Add partition-conflict edges between transaction units.
        let mut last_unit_of_partition: HashMap<u64, usize> = HashMap::new();
        // Iterate units in timestamp order of their first op.
        let mut order: Vec<usize> = (0..units.units.len()).collect();
        order.sort_by_key(|&u| {
            let first = units.units[u].ops[0];
            (tpg.op(first).ts, first)
        });
        for &unit in &order {
            let mut partitions: Vec<u64> = units.units[unit]
                .ops
                .iter()
                .filter_map(|&op| tpg.op(op).known_key())
                .map(|key| key % num_partitions as u64)
                .collect();
            partitions.sort_unstable();
            partitions.dedup();
            for p in partitions {
                if let Some(&prev) = last_unit_of_partition.get(&p) {
                    if prev != unit && !units.children[prev].contains(&unit) {
                        units.children[prev].push(unit);
                        units.parents[unit].push(prev);
                    }
                }
                last_unit_of_partition.insert(p, unit);
            }
        }
        units
    }

    fn grouped(tpg: &Tpg, group_key: impl Fn(&Tpg, OpId) -> Option<GroupKey>) -> Self {
        let n = tpg.num_ops();
        // --- initial grouping ---
        let mut group_of = vec![usize::MAX; n];
        let mut groups: Vec<Vec<OpId>> = Vec::new();
        let mut by_target: HashMap<GroupKey, usize> = HashMap::new();
        for (op, slot) in group_of.iter_mut().enumerate() {
            let group = match group_key(tpg, op) {
                Some(key) => *by_target.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                }),
                None => {
                    groups.push(Vec::new());
                    groups.len() - 1
                }
            };
            *slot = group;
            groups[group].push(op);
        }

        // --- unit-level edges ---
        let g = groups.len();
        let mut edge_set: Vec<Vec<usize>> = vec![Vec::new(); g];
        for op in 0..n {
            for (p, _) in tpg.parents(op) {
                let (from, to) = (group_of[*p], group_of[op]);
                if from != to && !edge_set[from].contains(&to) {
                    edge_set[from].push(to);
                }
            }
        }

        // --- strongly connected components (iterative Kosaraju) ---
        let sccs = strongly_connected_components(g, &edge_set);
        let had_cycles = sccs.iter().any(|scc| scc.len() > 1);

        // --- merge SCCs into final units ---
        let mut scc_of_group = vec![0usize; g];
        for (scc_idx, scc) in sccs.iter().enumerate() {
            for &grp in scc {
                scc_of_group[grp] = scc_idx;
            }
        }
        let mut units: Vec<Unit> = sccs
            .iter()
            .enumerate()
            .map(|(id, scc)| {
                let mut ops: Vec<OpId> = scc.iter().flat_map(|&grp| groups[grp].clone()).collect();
                ops.sort_by_key(|&op| (tpg.op(op).ts, tpg.op(op).stmt, op));
                Unit { id, ops }
            })
            .collect();
        // Drop empty units (possible when the TPG is empty).
        units.retain(|u| !u.ops.is_empty());
        for (idx, unit) in units.iter_mut().enumerate() {
            unit.id = idx;
        }

        let mut unit_of = vec![usize::MAX; n];
        for unit in &units {
            for &op in &unit.ops {
                unit_of[op] = unit.id;
            }
        }
        // Recompute unit-level adjacency after merging.
        let u = units.len();
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); u];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); u];
        for op in 0..n {
            for (p, _) in tpg.parents(op) {
                let (from, to) = (unit_of[*p], unit_of[op]);
                if from != to {
                    if !children[from].contains(&to) {
                        children[from].push(to);
                    }
                    if !parents[to].contains(&from) {
                        parents[to].push(from);
                    }
                }
            }
        }
        // keep scc_of_group alive for clarity of the algorithm above
        let _ = scc_of_group;

        Self {
            units,
            unit_of,
            parents,
            children,
            had_cycles,
        }
    }

    /// Number of units.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// All units.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// The unit an operation belongs to.
    pub fn unit_of(&self, op: OpId) -> usize {
        self.unit_of[op]
    }

    /// Units that must complete before `unit` can be dispatched.
    pub fn parents(&self, unit: usize) -> &[usize] {
        &self.parents[unit]
    }

    /// Units that wait for `unit`.
    pub fn children(&self, unit: usize) -> &[usize] {
        &self.children[unit]
    }

    /// Check that the unit graph (after merging) is acyclic; returns an error
    /// message when it is not. Used by tests.
    pub fn validate_acyclic(&self) -> Result<(), String> {
        // Kahn's algorithm: if we cannot pop every unit the graph has a cycle.
        let n = self.units.len();
        let mut indegree: Vec<usize> = (0..n).map(|u| self.parents[u].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&u| indegree[u] == 0).collect();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &c in &self.children[u] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if visited == n {
            Ok(())
        } else {
            Err(format!("unit graph has a cycle: visited {visited} of {n}"))
        }
    }
}

/// Iterative Kosaraju SCC over an adjacency-list graph.
fn strongly_connected_components(n: usize, children: &[Vec<usize>]) -> Vec<Vec<usize>> {
    // reverse graph
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, tos) in children.iter().enumerate() {
        for &to in tos {
            reverse[to].push(from);
        }
    }
    // first pass: finish order on the forward graph
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // iterative DFS with an explicit "exit" marker
        let mut stack = vec![(start, false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                order.push(node);
                continue;
            }
            if visited[node] {
                continue;
            }
            visited[node] = true;
            stack.push((node, true));
            for &next in &children[node] {
                if !visited[next] {
                    stack.push((next, false));
                }
            }
        }
    }
    // second pass: components on the reverse graph, in reverse finish order
    let mut component = vec![usize::MAX; n];
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if component[start] != usize::MAX {
            continue;
        }
        let id = sccs.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        component[start] = id;
        while let Some(node) = stack.pop() {
            members.push(node);
            for &next in &reverse[node] {
                if component[next] == usize::MAX {
                    component[next] = id;
                    stack.push(next);
                }
            }
        }
        sccs.push(members);
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TpgBuilder;
    use crate::operation::{udfs, OperationSpec};
    use crate::txn::{Transaction, TransactionBatch};
    use morphstream_common::{StateRef, TableId};

    const T: TableId = TableId(0);

    fn chain_batch() -> TransactionBatch {
        // Three transactions all writing key 0, plus one writing key 1.
        let mut batch = TransactionBatch::new();
        for ts in 1..=3u64 {
            batch.push(Transaction::new(
                ts,
                vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
            ));
        }
        batch.push(Transaction::new(
            4,
            vec![OperationSpec::write(T, 1, vec![], udfs::add_delta(1))],
        ));
        batch
    }

    #[test]
    fn fine_units_are_one_op_each() {
        let tpg = TpgBuilder::new().build(chain_batch());
        let units = SchedulingUnits::fine(&tpg);
        assert_eq!(units.num_units(), tpg.num_ops());
        assert!(!units.had_cycles);
        units.validate_acyclic().unwrap();
        for op in 0..tpg.num_ops() {
            assert_eq!(units.units()[units.unit_of(op)].ops, vec![op]);
        }
    }

    #[test]
    fn coarse_units_group_by_target_key() {
        let tpg = TpgBuilder::new().build(chain_batch());
        let units = SchedulingUnits::coarse(&tpg);
        assert_eq!(units.num_units(), 2);
        assert!(!units.had_cycles);
        units.validate_acyclic().unwrap();
        let key0_unit = units.unit_of(0);
        assert_eq!(units.units()[key0_unit].ops.len(), 3);
        // ops inside a unit are ordered by timestamp
        let ts: Vec<_> = units.units()[key0_unit]
            .ops
            .iter()
            .map(|&op| tpg.op(op).ts)
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn circular_unit_dependencies_are_merged() {
        // Build the Figure 6 situation: unit A (key 0) and unit B (key 1)
        // depend on each other through interleaved parametric dependencies.
        //   ts1: write k0
        //   ts2: write k1 = f(k0)   (B depends on A)
        //   ts3: write k0 = f(k1)   (A depends on B)
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(
                T,
                1,
                vec![StateRef::new(T, 0)],
                udfs::sum_params(),
            )],
        ));
        batch.push(Transaction::new(
            3,
            vec![OperationSpec::write(
                T,
                0,
                vec![StateRef::new(T, 1)],
                udfs::sum_params(),
            )],
        ));
        let tpg = TpgBuilder::new().build(batch);
        let units = SchedulingUnits::coarse(&tpg);
        assert!(
            units.had_cycles,
            "interleaved chains must be detected as a cycle"
        );
        units.validate_acyclic().unwrap();
        // all three ops end up in one merged unit
        assert_eq!(units.num_units(), 1);
        assert_eq!(units.units()[0].ops.len(), 3);
    }

    #[test]
    fn unit_adjacency_mirrors_op_dependencies() {
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(
                T,
                1,
                vec![StateRef::new(T, 0)],
                udfs::sum_params(),
            )],
        ));
        let tpg = TpgBuilder::new().build(batch);
        let units = SchedulingUnits::coarse(&tpg);
        assert_eq!(units.num_units(), 2);
        let u0 = units.unit_of(0);
        let u1 = units.unit_of(1);
        assert_eq!(units.children(u0), &[u1]);
        assert_eq!(units.parents(u1), &[u0]);
        assert!(units.parents(u0).is_empty());
    }

    #[test]
    fn scc_handles_disconnected_graphs() {
        let sccs = strongly_connected_components(4, &[vec![1], vec![0], vec![], vec![]]);
        assert_eq!(sccs.iter().filter(|s| s.len() == 2).count(), 1);
        assert_eq!(sccs.iter().filter(|s| s.len() == 1).count(), 2);
    }

    #[test]
    fn transaction_units_group_whole_transactions() {
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![
                OperationSpec::write(T, 0, vec![], udfs::add_delta(1)),
                OperationSpec::write(T, 1, vec![], udfs::add_delta(1)),
            ],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        let tpg = TpgBuilder::new().build(batch);
        let units = SchedulingUnits::by_transaction(&tpg);
        assert_eq!(units.num_units(), 2);
        units.validate_acyclic().unwrap();
        // the second transaction's unit depends on the first (shared key 0)
        let u0 = units.unit_of(0);
        let u2 = units.unit_of(2);
        assert_ne!(u0, u2);
        assert!(units.parents(u2).contains(&u0));
        assert_eq!(units.units()[u0].ops.len(), 2);
    }

    #[test]
    fn partitioned_transactions_add_partition_conflict_edges() {
        // keys 0 and 4 collide in a 4-partition layout even though they are
        // different keys, so the two transactions become ordered.
        let mut batch = TransactionBatch::new();
        batch.push(Transaction::new(
            1,
            vec![OperationSpec::write(T, 0, vec![], udfs::add_delta(1))],
        ));
        batch.push(Transaction::new(
            2,
            vec![OperationSpec::write(T, 4, vec![], udfs::add_delta(1))],
        ));
        let tpg = TpgBuilder::new().build(batch);
        let plain = SchedulingUnits::by_transaction(&tpg);
        assert!(plain.parents(plain.unit_of(1)).is_empty());
        let partitioned = SchedulingUnits::by_partitioned_transaction(&tpg, 4);
        let u1 = partitioned.unit_of(1);
        assert_eq!(partitioned.parents(u1).len(), 1);
        partitioned.validate_acyclic().unwrap();
    }

    #[test]
    fn empty_tpg_has_no_units() {
        let tpg = TpgBuilder::new().build(TransactionBatch::new());
        let fine = SchedulingUnits::fine(&tpg);
        let coarse = SchedulingUnits::coarse(&tpg);
        assert_eq!(fine.num_units(), 0);
        assert_eq!(coarse.num_units(), 0);
        fine.validate_acyclic().unwrap();
        coarse.validate_acyclic().unwrap();
    }
}
