//! Per-key timestamp-sorted operation lists used during TPG construction.
//!
//! During the stream processing phase every operation is inserted into the
//! sorted list of the state it targets; operations that *reference* other
//! states (multi-state writes, window sources, non-deterministic accesses)
//! additionally insert *virtual operations* into the lists of those states
//! (Sections 4.2–4.4). The transaction processing phase then scans each list
//! once to derive temporal and parametric dependency edges.

use morphstream_common::{Key, OpId, TableId, Timestamp};

/// Deterministic shard assignment for a state key: which of `shards` workers
/// owns the sorted list of `(table, key)` during the parallel stream
/// processing phase. A 64-bit finalizer-style mix keeps consecutive keys from
/// landing on the same shard, so uniform key ranges spread evenly.
#[inline]
pub fn shard_of(table: TableId, key: Key, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    let mut h = key ^ ((table.0 as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    (h % shards as u64) as usize
}

/// Why a virtual operation was inserted into a list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtualRole {
    /// The owning operation's write value is a function of this state
    /// (a parameter of a multi-state write or windowed write).
    ParamSource,
    /// The owning operation accesses a non-deterministically resolved state,
    /// so it must pessimistically be ordered against this list as well.
    NonDetPlaceholder,
}

/// An entry of a per-key sorted list: either the operation itself (it targets
/// this key) or a virtual operation standing in for a reference to this key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListEntry {
    /// The operation targets this key.
    Real {
        /// Operation id.
        op: OpId,
        /// Operation timestamp.
        ts: Timestamp,
        /// Statement index (orders same-timestamp entries deterministically).
        stmt: u32,
        /// Whether the operation writes the key.
        is_write: bool,
    },
    /// A virtual operation owned by `op`.
    Virtual {
        /// Owning operation id.
        op: OpId,
        /// Owning operation timestamp.
        ts: Timestamp,
        /// Statement index of the owning operation.
        stmt: u32,
        /// Why the virtual operation exists.
        role: VirtualRole,
    },
}

impl ListEntry {
    /// Operation that owns the entry.
    pub fn op(&self) -> OpId {
        match self {
            ListEntry::Real { op, .. } | ListEntry::Virtual { op, .. } => *op,
        }
    }

    /// Timestamp of the owning operation.
    pub fn ts(&self) -> Timestamp {
        match self {
            ListEntry::Real { ts, .. } | ListEntry::Virtual { ts, .. } => *ts,
        }
    }

    /// Statement index of the owning operation.
    pub fn stmt(&self) -> u32 {
        match self {
            ListEntry::Real { stmt, .. } | ListEntry::Virtual { stmt, .. } => *stmt,
        }
    }

    /// Sort key: timestamp, then statement, then op id for determinism.
    fn order_key(&self) -> (Timestamp, u32, OpId) {
        (self.ts(), self.stmt(), self.op())
    }

    /// Whether this entry is a real operation targeting the key.
    pub fn is_real(&self) -> bool {
        matches!(self, ListEntry::Real { .. })
    }

    /// Whether this entry writes the key (only real writes do).
    pub fn is_write(&self) -> bool {
        matches!(self, ListEntry::Real { is_write: true, .. })
    }

    /// Whether this is a non-deterministic placeholder.
    pub fn is_non_det(&self) -> bool {
        matches!(
            self,
            ListEntry::Virtual {
                role: VirtualRole::NonDetPlaceholder,
                ..
            }
        )
    }
}

/// The sorted list of one key.
#[derive(Debug, Clone, Default)]
pub struct SortedList {
    /// Key the list belongs to.
    pub table: Option<TableId>,
    /// Key the list belongs to.
    pub key: Key,
    entries: Vec<ListEntry>,
    sorted: bool,
}

impl SortedList {
    /// Empty list for `(table, key)`.
    pub fn new(table: TableId, key: Key) -> Self {
        Self {
            table: Some(table),
            key,
            entries: Vec::new(),
            sorted: true,
        }
    }

    /// Append an entry (sorting is deferred to [`SortedList::finalize`]).
    pub fn push(&mut self, entry: ListEntry) {
        if let Some(last) = self.entries.last() {
            if last.order_key() > entry.order_key() {
                self.sorted = false;
            }
        }
        self.entries.push(entry);
    }

    /// Sort the entries by `(ts, stmt, op)` — idempotent.
    pub fn finalize(&mut self) {
        if !self.sorted {
            self.entries.sort_by_key(|e| e.order_key());
            self.sorted = true;
        }
    }

    /// Entries in timestamp order (call [`SortedList::finalize`] first).
    pub fn entries(&self) -> &[ListEntry] {
        debug_assert!(self.sorted, "finalize() must be called before reading");
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of real entries (operations that actually target the key).
    pub fn real_len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_real()).count()
    }
}

/// Dependency edges derived from one sorted list by the transaction
/// processing phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DerivedEdges {
    /// Temporal dependency edges `(from, to)`.
    pub td: Vec<(OpId, OpId)>,
    /// Parametric dependency edges `(from, to)`.
    pub pd: Vec<(OpId, OpId)>,
}

/// Scan a finalized list and derive its TD/PD edges.
///
/// Rules (Sections 4.2–4.4):
/// * consecutive *real* entries of different transactions produce a TD edge
///   from the earlier to the later operation;
/// * a `ParamSource` virtual entry produces a PD edge from the latest earlier
///   *write* of this key to the owning operation;
/// * a `NonDetPlaceholder` participates in the ordering chain in both
///   directions: it gains a PD edge from the latest earlier real entry and
///   the next later real entry gains a PD edge from it (the pessimistic
///   assumption that the non-deterministic operation may read or write this
///   key).
///
/// Only the nearest neighbour is linked in each case; farther ordering is
/// implied transitively by the per-key TD chain.
pub fn derive_edges(list: &SortedList, same_txn: impl Fn(OpId, OpId) -> bool) -> DerivedEdges {
    let mut edges = DerivedEdges::default();
    let entries = list.entries();

    // --- TD chain over real entries ---
    let mut prev_real: Option<&ListEntry> = None;
    for entry in entries.iter().filter(|e| e.is_real()) {
        if let Some(prev) = prev_real {
            if !same_txn(prev.op(), entry.op()) && prev.op() != entry.op() {
                edges.td.push((prev.op(), entry.op()));
            }
        }
        prev_real = Some(entry);
    }

    // --- PD edges from virtual entries ---
    for (idx, entry) in entries.iter().enumerate() {
        match entry {
            ListEntry::Virtual {
                op,
                role: VirtualRole::ParamSource,
                ..
            } => {
                // latest earlier write of this key
                if let Some(writer) = entries[..idx]
                    .iter()
                    .rev()
                    .find(|e| e.is_write() && !same_txn(e.op(), *op) && e.op() != *op)
                {
                    edges.pd.push((writer.op(), *op));
                }
            }
            ListEntry::Virtual {
                op,
                role: VirtualRole::NonDetPlaceholder,
                ..
            } => {
                // incoming: latest earlier real entry
                if let Some(prev) = entries[..idx]
                    .iter()
                    .rev()
                    .find(|e| e.is_real() && !same_txn(e.op(), *op) && e.op() != *op)
                {
                    edges.pd.push((prev.op(), *op));
                }
                // outgoing: next later real entry pessimistically depends on us
                if let Some(next) = entries[idx + 1..]
                    .iter()
                    .find(|e| e.is_real() && !same_txn(e.op(), *op) && e.op() != *op)
                {
                    edges.pd.push((*op, next.op()));
                }
            }
            ListEntry::Real { .. } => {}
        }
    }

    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(op: OpId, ts: Timestamp, is_write: bool) -> ListEntry {
        ListEntry::Real {
            op,
            ts,
            stmt: 0,
            is_write,
        }
    }

    fn virt(op: OpId, ts: Timestamp, role: VirtualRole) -> ListEntry {
        ListEntry::Virtual {
            op,
            ts,
            stmt: 0,
            role,
        }
    }

    #[test]
    fn entries_sort_by_timestamp_on_finalize() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(real(2, 20, true));
        list.push(real(1, 10, true));
        list.push(real(3, 30, false));
        list.finalize();
        let ids: Vec<OpId> = list.entries().iter().map(ListEntry::op).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(list.len(), 3);
        assert_eq!(list.real_len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn td_edges_chain_consecutive_real_entries_across_txns() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(real(0, 10, true));
        list.push(real(1, 20, false));
        list.push(real(2, 30, true));
        list.finalize();
        let edges = derive_edges(&list, |_, _| false);
        assert_eq!(edges.td, vec![(0, 1), (1, 2)]);
        assert!(edges.pd.is_empty());
    }

    #[test]
    fn same_transaction_entries_do_not_create_td_edges() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(real(0, 10, true));
        list.push(real(1, 10, true));
        list.finalize();
        let edges = derive_edges(&list, |a, b| (a, b) == (0, 1) || (a, b) == (1, 0));
        assert!(edges.td.is_empty());
    }

    #[test]
    fn param_source_links_to_latest_earlier_write() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(real(0, 10, true));
        list.push(real(1, 20, false)); // read, must be skipped
        list.push(virt(5, 30, VirtualRole::ParamSource));
        list.finalize();
        let edges = derive_edges(&list, |_, _| false);
        assert_eq!(edges.pd, vec![(0, 5)]);
    }

    #[test]
    fn param_source_with_no_earlier_write_produces_no_edge() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(virt(5, 5, VirtualRole::ParamSource));
        list.push(real(0, 10, true));
        list.finalize();
        let edges = derive_edges(&list, |_, _| false);
        assert!(edges.pd.is_empty());
        assert!(edges.td.is_empty());
    }

    #[test]
    fn non_det_placeholder_is_ordered_in_both_directions() {
        let mut list = SortedList::new(TableId(0), 1);
        list.push(real(0, 10, true));
        list.push(virt(7, 15, VirtualRole::NonDetPlaceholder));
        list.push(real(1, 20, true));
        list.finalize();
        let edges = derive_edges(&list, |_, _| false);
        assert!(edges.pd.contains(&(0, 7)));
        assert!(edges.pd.contains(&(7, 1)));
        // the TD chain between the two real ops still exists
        assert_eq!(edges.td, vec![(0, 1)]);
    }

    #[test]
    fn shard_assignment_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for key in 0..256u64 {
                let s = shard_of(TableId(1), key, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(TableId(1), key, shards));
            }
        }
        // one shard owns everything
        assert_eq!(shard_of(TableId(3), 12345, 1), 0);
        // the mix spreads a contiguous key range over all shards
        let hit: std::collections::HashSet<usize> =
            (0..64u64).map(|k| shard_of(TableId(0), k, 4)).collect();
        assert_eq!(hit.len(), 4);
    }

    #[test]
    fn entry_accessors_expose_owner_and_flags() {
        let r = real(3, 12, true);
        assert_eq!(r.op(), 3);
        assert_eq!(r.ts(), 12);
        assert!(r.is_real());
        assert!(r.is_write());
        assert!(!r.is_non_det());
        let v = virt(4, 9, VirtualRole::NonDetPlaceholder);
        assert!(!v.is_real());
        assert!(!v.is_write());
        assert!(v.is_non_det());
        assert_eq!(v.stmt(), 0);
    }
}
