//! The failover matrix: kill the primary and promote the standby, and the
//! completed stream must be digest-identical to a run that never failed
//! over — across {serial, concurrent} topologies × {sync, async} acks, with
//! the kill landing both on a punctuation boundary and mid-batch.
//!
//! Each cell runs a real [`StandbyServer`] on localhost and a real
//! [`ReplicationSender`] tailing the primary's WAL files, so the whole
//! `MSR1` path is exercised: handshake, live tailing, punctuation frames,
//! acks, and (in the bootstrap test) checkpoint-chain transfer to a fresh
//! standby whose position the primary's truncated WAL can no longer serve.
//!
//! The primary side is simulated in-process the way the recovery matrix
//! simulates crashes: WAL-append + push a prefix, checkpoint part-way
//! (rotating and truncating the WAL, as `serve` does), then vanish without
//! `finish` — exactly what `kill -9` leaves behind.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use morphstream::storage::StateStore;
use morphstream::{
    udfs, EngineConfig, FnSink, Pipeline, Route, StreamApp, Topology, TopologyBuilder,
    TopologyConfig, TxnBuilder, TxnEngine, TxnOutcome,
};
use morphstream_common::hash::Fnv1a;
use morphstream_common::{StateRef, TableId, WorkloadConfig};
use morphstream_durability::{CheckpointBuilder, CheckpointStore, FsyncPolicy, WalLog};
use morphstream_replication::{
    AckMode, Promoted, ReplicaEngine, ReplicationSender, SenderOptions, StandbyOptions,
    StandbyServer,
};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

/// These tests run real senders that retry fixed localhost ports with
/// backoff; run them one at a time so a retrying sender from one scenario
/// can never reach an ephemeral listener of another.
static SERIAL: Mutex<()> = Mutex::new(());

const PUNCTUATION: usize = 50;
const EVENTS: usize = 600;
/// Mid-batch: not a multiple of the punctuation interval, so the primary's
/// checkpoint cuts a partial batch (and truncation moves the WAL start to a
/// mid-batch index).
const CHECKPOINT_AT: usize = 230;
const DEADLINE: Duration = Duration::from_secs(30);

/// The entry operator: Streaming Ledger semantics, output carries the
/// primary account key so the downstream edge can partition by it.
struct LedgerApp {
    accounts: TableId,
}

impl StreamApp for LedgerApp {
    type Event = SlEvent;
    /// `account << 1 | committed`.
    type Output = u64;

    fn state_access(&self, event: &SlEvent, txn: &mut TxnBuilder) {
        match event {
            SlEvent::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            SlEvent::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, event: &SlEvent, outcome: &TxnOutcome) -> u64 {
        let account = match event {
            SlEvent::Deposit { account, .. } => *account,
            SlEvent::Transfer { from, .. } => *from,
        };
        (account << 1) | outcome.committed as u64
    }
}

/// The downstream operator: per-account tally, keyed like the route.
struct TallyApp {
    tallies: TableId,
}

impl StreamApp for TallyApp {
    type Event = u64;
    type Output = u64;

    fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
        txn.write(self.tallies, event >> 1, udfs::add_delta(1));
    }

    fn post_process(&self, event: &u64, _outcome: &TxnOutcome) -> u64 {
        *event
    }
}

fn build_engine(concurrent: bool) -> ReplicaEngine {
    let ledger_store = StateStore::new();
    let tally_store = StateStore::new();
    let config = EngineConfig::with_threads(2).with_punctuation_interval(PUNCTUATION);
    let mut builder = TopologyBuilder::new();
    let ledger = builder.add_operator(
        "ledger",
        LedgerApp {
            accounts: ledger_store.create_table("accounts", 0, true),
        },
        ledger_store.clone(),
        config,
    );
    let tally = builder
        .add_operator(
            "tally",
            TallyApp {
                tallies: tally_store.create_table("tallies", 0, true),
            },
            tally_store.clone(),
            config,
        )
        .with_parallelism(2);
    builder.connect(
        ledger,
        tally,
        Route::keyed(|routed: &u64| routed >> 1, |out: &u64| Some(*out)),
    );
    let engine = builder
        .build(
            ledger,
            tally,
            TopologyConfig::default().with_concurrent(concurrent),
        )
        .expect("ledger -> tally is a valid dataflow");
    ReplicaEngine {
        engine,
        stores: vec![ledger_store, tally_store],
    }
}

#[derive(Debug, PartialEq)]
struct Digests {
    ledger: u64,
    tally: u64,
    outputs: u64,
}

fn digest_sink(engine: &mut Topology<SlEvent, u64>) -> Arc<Mutex<Fnv1a>> {
    let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
    let digest = Arc::clone(&output_digest);
    engine.set_output_sink(Some(Box::new(FnSink(move |out: u64| {
        digest.lock().unwrap().update(&out.to_le_bytes());
    }))));
    output_digest
}

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-repl-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference: one uninterrupted local run of the whole stream.
fn reference(concurrent: bool, events: &[SlEvent]) -> Digests {
    let ReplicaEngine { mut engine, stores } = build_engine(concurrent);
    let output_digest = digest_sink(&mut engine);
    {
        let mut pipeline = Pipeline::new(&mut engine);
        for event in events {
            pipeline.push(event.clone());
        }
    }
    engine.flush();
    engine.finish();
    let outputs = output_digest.lock().unwrap().finish();
    Digests {
        ledger: stores[0].state_digest(),
        tally: stores[1].state_digest(),
        outputs,
    }
}

/// A simulated primary: engine + WAL + checkpoints + live sender.
struct Primary {
    engine: Topology<SlEvent, u64>,
    output_digest: Arc<Mutex<Fnv1a>>,
    wal: WalLog,
    checkpoints: CheckpointStore,
    sender: ReplicationSender,
    events_since_marker: usize,
}

impl Primary {
    fn start(dir: &Path, concurrent: bool, target: String, ack: AckMode) -> Primary {
        let ReplicaEngine { mut engine, .. } = build_engine(concurrent);
        let output_digest = digest_sink(&mut engine);
        let wal = WalLog::open(dir.join("wal"), FsyncPolicy::Never, 0).expect("open WAL");
        let checkpoints = CheckpointStore::open(dir.join("checkpoints")).expect("open store");
        let sender = ReplicationSender::start(
            SenderOptions {
                target,
                wal_dir: dir.join("wal"),
                checkpoint_dir: dir.join("checkpoints"),
                punctuation: PUNCTUATION as u64,
                ack,
            },
            0,
        );
        Primary {
            engine,
            output_digest,
            wal,
            checkpoints,
            sender,
            events_since_marker: 0,
        }
    }

    /// WAL-append + push `slice`, marking punctuations like `serve` does;
    /// in sync mode, wait for the standby's ack at every marker.
    fn push_replicated(&mut self, slice: &[SlEvent]) {
        for event in slice {
            self.wal.append_event(event).expect("append");
            {
                let mut pipeline = Pipeline::new(&mut self.engine);
                pipeline.push(event.clone());
            }
            self.events_since_marker += 1;
            if self.events_since_marker == PUNCTUATION {
                self.events_since_marker = 0;
                self.wal.mark_punctuation().expect("marker");
            }
            self.sender.notify(self.wal.next_index());
            if self.sender.ack_mode() == AckMode::Sync && self.events_since_marker == 0 {
                self.wait_acked(self.wal.next_index());
            }
        }
    }

    fn wait_acked(&self, index: u64) {
        let deadline = Instant::now() + DEADLINE;
        let acked = self
            .sender
            .wait_for_ack(index, &|| Instant::now() > deadline);
        assert!(acked, "standby never acknowledged index {index}");
    }

    /// Checkpoint + rotate + truncate, the way the serving primary does.
    fn checkpoint(&mut self) {
        let mut builder = CheckpointBuilder::new();
        TxnEngine::checkpoint(&mut self.engine, &mut builder);
        let events_applied = self.wal.next_index();
        let checkpoint = builder.build(
            self.checkpoints.next_id(),
            events_applied,
            self.output_digest.lock().unwrap().finish(),
        );
        self.checkpoints.save(&checkpoint).expect("save checkpoint");
        self.wal.rotate().expect("rotate");
        self.wal.truncate_before(events_applied).expect("truncate");
    }

    /// `kill -9`: the engine, log handles, and sender vanish; nothing is
    /// flushed or finished.
    fn kill(self) {
        self.sender.shutdown();
    }
}

fn standby_options(dir: &Path) -> StandbyOptions {
    StandbyOptions {
        listen: "127.0.0.1:0".into(),
        data_dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Never,
        checkpoint_interval: 200,
        checkpoint_retain: 1,
    }
}

/// Finish the stream on the promoted engine and digest everything.
fn finish_promoted(mut promoted: Promoted, rest: &[SlEvent]) -> Digests {
    {
        let mut pipeline = Pipeline::new(&mut promoted.engine);
        for event in rest {
            pipeline.push(event.clone());
        }
    }
    promoted.engine.flush();
    promoted.engine.finish();
    Digests {
        ledger: promoted.stores[0].state_digest(),
        tally: promoted.stores[1].state_digest(),
        outputs: promoted.output_digest.lock().unwrap().finish(),
    }
}

#[test]
fn killed_primary_and_promoted_standby_match_the_uninterrupted_reference() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let workload = WorkloadConfig::streaming_ledger()
        .with_key_space(64)
        .with_txns_per_batch(PUNCTUATION);
    let events = StreamingLedgerApp::generate(&workload, EVENTS, 0.5);

    for concurrent in [false, true] {
        let expected = reference(concurrent, &events);
        for ack in [AckMode::Sync, AckMode::Async] {
            // 300 = a punctuation boundary; 323 = mid-batch.
            for kill_at in [300usize, 323] {
                let primary_dir = test_dir("primary");
                let standby_dir = test_dir("standby");
                let standby = StandbyServer::start(
                    standby_options(&standby_dir),
                    Box::new(move || Ok(build_engine(concurrent))),
                )
                .expect("standby starts");
                let mut primary = Primary::start(
                    &primary_dir,
                    concurrent,
                    standby.listen_addr().to_string(),
                    ack,
                );
                primary.push_replicated(&events[..CHECKPOINT_AT]);
                primary.checkpoint();
                primary.push_replicated(&events[CHECKPOINT_AT..kill_at]);
                if ack == AckMode::Sync {
                    // Sync acks: everything ingested before the kill is
                    // durable on the standby — the failover loses nothing.
                    primary.wait_acked(kill_at as u64);
                }
                primary.kill();

                let promoted = standby.promote().expect("standby promotes");
                if ack == AckMode::Sync {
                    assert_eq!(
                        promoted.durable_index, kill_at as u64,
                        "sync acks guarantee durability to the kill point"
                    );
                }
                let durable = promoted.durable_index as usize;
                assert!(durable <= kill_at, "standby cannot be ahead of the primary");
                let recovered = finish_promoted(promoted, &events[durable..]);
                assert_eq!(
                    recovered,
                    expected,
                    "digests diverged: concurrent={concurrent} ack={} kill_at={kill_at}",
                    ack.name()
                );
                let _ = std::fs::remove_dir_all(&primary_dir);
                let _ = std::fs::remove_dir_all(&standby_dir);
            }
        }
    }
}

#[test]
fn fresh_standby_bootstraps_from_the_checkpoint_chain_over_the_wire() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let workload = WorkloadConfig::streaming_ledger()
        .with_key_space(64)
        .with_txns_per_batch(PUNCTUATION);
    let events = StreamingLedgerApp::generate(&workload, EVENTS, 0.5);
    let concurrent = false;
    let expected = reference(concurrent, &events);

    let primary_dir = test_dir("boot-primary");
    let standby_dir = test_dir("boot-standby");

    // Build primary history *before* any standby exists: two checkpoints
    // (a full one and an incremental on top), with the WAL truncated to
    // start at the newest — a fresh standby's position 0 is unservable.
    let mut primary = Primary::start(
        &primary_dir,
        concurrent,
        // Nothing listens yet; the sender retries with backoff until the
        // standby comes up, which is itself part of the scenario.
        "127.0.0.1:1".into(),
        AckMode::Async,
    );
    primary.push_replicated(&events[..100]);
    primary.checkpoint();
    primary.push_replicated(&events[100..CHECKPOINT_AT]);
    primary.checkpoint();
    primary.kill();
    assert!(
        primary_dir.join("checkpoints").exists(),
        "primary history exists"
    );

    // Now the standby comes up, and a new sender (same primary state)
    // connects to it: position 0 is below the truncated WAL's start, so the
    // chain must ship over the wire before live tailing begins.
    let standby = StandbyServer::start(
        standby_options(&standby_dir),
        Box::new(move || Ok(build_engine(concurrent))),
    )
    .expect("standby starts");
    assert_eq!(standby.durable_index(), 0, "fresh standby starts empty");
    let ReplicaEngine { mut engine, .. } = build_engine(concurrent);
    let output_digest = digest_sink(&mut engine);
    let checkpoints = CheckpointStore::open(primary_dir.join("checkpoints")).expect("reopen");
    let mut loaded = checkpoints
        .load_chain()
        .expect("chain loads")
        .expect("chain");
    TxnEngine::restore(&mut engine, &mut loaded.restore);
    *output_digest.lock().unwrap() = Fnv1a::from_state(loaded.output_digest);
    drop(checkpoints);
    let mut primary = Primary {
        engine,
        output_digest,
        wal: WalLog::open(
            primary_dir.join("wal"),
            FsyncPolicy::Never,
            CHECKPOINT_AT as u64,
        )
        .expect("reopen WAL"),
        checkpoints: CheckpointStore::open(primary_dir.join("checkpoints")).expect("reopen"),
        sender: ReplicationSender::start(
            SenderOptions {
                target: standby.listen_addr().to_string(),
                wal_dir: primary_dir.join("wal"),
                checkpoint_dir: primary_dir.join("checkpoints"),
                punctuation: PUNCTUATION as u64,
                ack: AckMode::Sync,
            },
            CHECKPOINT_AT as u64,
        ),
        events_since_marker: CHECKPOINT_AT % PUNCTUATION,
    };
    primary.push_replicated(&events[CHECKPOINT_AT..]);
    primary.wait_acked(EVENTS as u64);

    // The standby was served the chain, not WAL-from-zero: the sender only
    // ever shipped the live tail.
    let sender_stats = primary.sender.stats();
    assert_eq!(
        sender_stats.shipped_records(),
        (EVENTS - CHECKPOINT_AT) as u64,
        "bootstrap covered the checkpointed prefix"
    );
    assert_eq!(sender_stats.lag_records(), 0, "standby fully caught up");
    assert_eq!(standby.durable_index(), EVENTS as u64);
    primary.kill();

    let promoted = standby.promote().expect("standby promotes");
    assert_eq!(promoted.durable_index, EVENTS as u64);
    let recovered = finish_promoted(promoted, &[]);
    assert_eq!(recovered, expected, "bootstrapped standby diverged");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}

#[test]
fn standby_recovers_its_own_directory_across_restarts() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let workload = WorkloadConfig::streaming_ledger()
        .with_key_space(64)
        .with_txns_per_batch(PUNCTUATION);
    let events = StreamingLedgerApp::generate(&workload, EVENTS, 0.5);
    let concurrent = false;
    let expected = reference(concurrent, &events);

    let primary_dir = test_dir("restart-primary");
    let standby_dir = test_dir("restart-standby");

    // First standby lifetime replicates a prefix, then stops (not promoted):
    // its WAL + checkpoints stay on disk.
    let standby = StandbyServer::start(
        standby_options(&standby_dir),
        Box::new(move || Ok(build_engine(concurrent))),
    )
    .expect("standby starts");
    let mut primary = Primary::start(
        &primary_dir,
        concurrent,
        standby.listen_addr().to_string(),
        AckMode::Sync,
    );
    primary.push_replicated(&events[..300]);
    primary.wait_acked(300);
    let standby_addr = standby.listen_addr().to_string();
    standby.shutdown();

    // Second lifetime recovers locally and resumes from index 300 — the
    // primary's sender reconnects on its own (same address, so the restart
    // rebinds the first lifetime's port) and ships only the rest.
    let mut restart_options = standby_options(&standby_dir);
    restart_options.listen = standby_addr;
    let standby = StandbyServer::start(
        restart_options,
        Box::new(move || Ok(build_engine(concurrent))),
    )
    .expect("standby restarts");
    assert_eq!(
        standby.durable_index(),
        300,
        "local recovery lands on the replicated prefix"
    );
    assert!(standby.recovery().is_some(), "recovery report present");
    primary.push_replicated(&events[300..]);
    primary.wait_acked(EVENTS as u64);
    primary.kill();

    let promoted = standby.promote().expect("standby promotes");
    let recovered = finish_promoted(promoted, &[]);
    assert_eq!(recovered, expected, "restarted standby diverged");

    let _ = std::fs::remove_dir_all(&primary_dir);
    let _ = std::fs::remove_dir_all(&standby_dir);
}
