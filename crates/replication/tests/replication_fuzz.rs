//! Property tests of the `MSR1` replication wire protocol (vendored
//! proptest shim): frames round-trip bit-exactly through the codec and the
//! incremental [`FrameReader`], truncation reads as "incomplete" (never an
//! error, never a frame), and arbitrary corruption — bit flips, byte soup —
//! errors or stays incomplete instead of panicking or fabricating frames.
//! The replication-layer sibling of `crates/server/tests/protocol_fuzz.rs`
//! and `crates/durability/tests/durability_fuzz.rs`.

use proptest::prelude::*;

use morphstream_replication::{Frame, FrameReader, MAX_REPL_FRAME, REPL_VERSION};

fn any_byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

fn bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any_byte(), 0..max_len)
}

fn payloads(max_len: usize, max_count: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(bytes(max_len), 0..max_count)
}

fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0u32..4, 0..u64::MAX, 0..u64::MAX).prop_map(|(extra, punctuation, wal_next)| {
            Frame::Hello {
                version: REPL_VERSION + extra,
                punctuation,
                wal_next,
            }
        }),
        (0..u64::MAX, 0u8..2, 0..u64::MAX - 1).prop_map(|(next_index, some, id)| {
            Frame::Position {
                next_index,
                checkpoint_id: (some == 1).then_some(id),
            }
        }),
        (0u32..1 << 16, 0..u64::MAX).prop_map(|(chain_len, events_applied)| {
            Frame::BeginBootstrap {
                chain_len,
                events_applied,
            }
        }),
        (0u8..2, bytes(512)).prop_map(|(last, data)| Frame::CheckpointChunk {
            last_chunk: last == 1,
            data,
        }),
        (0..u64::MAX, payloads(48, 12)).prop_map(|(first_index, events)| Frame::Batch {
            first_index,
            events,
        }),
        (0..u64::MAX).prop_map(|next_index| Frame::Punct { next_index }),
        (0..u64::MAX).prop_map(|wal_next| Frame::Heartbeat { wal_next }),
        (0..u64::MAX).prop_map(|durable_index| Frame::Ack { durable_index }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frames_round_trip_bit_exactly(frame in frame()) {
        let wire = frame.to_bytes();
        prop_assert!(wire.len() <= 4 + MAX_REPL_FRAME + 8);
        let (decoded, consumed) = Frame::decode(&wire)
            .expect("decode what we encoded")
            .expect("a complete frame");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_read_as_incomplete(frame in frame(), cut in 0usize..1 << 20) {
        let wire = frame.to_bytes();
        // A strict prefix is never an error and never a frame: the reader
        // must simply wait for more bytes.
        let truncated = &wire[..cut % wire.len()];
        prop_assert!(matches!(Frame::decode(truncated), Ok(None)));
    }

    #[test]
    fn bit_flips_never_panic_and_never_pass_the_checksum(
        frame in frame(),
        flip in 0usize..1 << 20,
        bite in 0usize..8,
    ) {
        let mut wire = frame.to_bytes();
        let at = flip % wire.len();
        wire[at] ^= 1 << bite;
        match Frame::decode(&wire) {
            // A flip inside the length prefix may make the frame read as
            // longer than the bytes at hand: legitimately incomplete.
            Ok(None) => prop_assert!(at < 4),
            // Every body byte and the checksum itself are FNV-covered, so
            // nothing that alters them may decode.
            Ok(Some(_)) => prop_assert!(false, "corrupt frame decoded"),
            Err(_) => {}
        }
    }

    #[test]
    fn byte_soup_never_panics(soup in bytes(4096)) {
        // Arbitrary bytes: must terminate with incomplete or an error.
        let _ = Frame::decode(&soup);
        let mut reader = FrameReader::new();
        reader.extend(&soup);
        while let Ok(Some(_)) = reader.next() {}
    }

    #[test]
    fn reader_reassembles_any_chunking(
        frames in proptest::collection::vec(frame(), 1..6),
        chunk in 1usize..96,
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            frame.encode(&mut wire);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in wire.chunks(chunk) {
            reader.extend(piece);
            while let Some(frame) = reader.next().expect("clean stream") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert_eq!(reader.buffered(), 0);
    }
}
