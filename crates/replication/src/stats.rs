//! Shared replication counters, published as Prometheus families by the
//! server's `/metrics` endpoint on both sides of the link.
//!
//! One struct serves both roles. On the primary, "shipped" counts records
//! sent and `acked_index` is the standby's acknowledged durable position;
//! on the standby, "shipped" counts records received and `acked_index` is
//! its own durable position (the value it acks). `wal_next` is always the
//! primary's WAL tip — local on the primary, learned from `Hello`,
//! `Heartbeat`, and batch arithmetic on the standby — so
//! `lag = wal_next - acked_index` means the same thing everywhere.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const NEVER: u64 = u64::MAX;

/// Atomic replication counters; cheap to share across threads.
#[derive(Debug)]
pub struct ReplicationStats {
    connected: AtomicBool,
    shipped_records: AtomicU64,
    shipped_bytes: AtomicU64,
    acked_index: AtomicU64,
    wal_next: AtomicU64,
    /// Microseconds since `started` at the last ack; `NEVER` before any.
    last_ack_micros: AtomicU64,
    started: Instant,
}

impl Default for ReplicationStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicationStats {
    /// Fresh counters, all zero / disconnected.
    pub fn new() -> Self {
        Self {
            connected: AtomicBool::new(false),
            shipped_records: AtomicU64::new(0),
            shipped_bytes: AtomicU64::new(0),
            acked_index: AtomicU64::new(0),
            wal_next: AtomicU64::new(0),
            last_ack_micros: AtomicU64::new(NEVER),
            started: Instant::now(),
        }
    }

    /// Mark the replication link up or down.
    pub fn set_connected(&self, up: bool) {
        self.connected.store(up, Ordering::Relaxed);
    }

    /// Whether the replication link is currently established.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    /// Count records and payload bytes shipped (sent or received).
    pub fn add_shipped(&self, records: u64, bytes: u64) {
        self.shipped_records.fetch_add(records, Ordering::Relaxed);
        self.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records shipped over the lifetime of this side.
    pub fn shipped_records(&self) -> u64 {
        self.shipped_records.load(Ordering::Relaxed)
    }

    /// Payload bytes shipped over the lifetime of this side.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes.load(Ordering::Relaxed)
    }

    /// Record an acknowledged durable position (monotone max).
    pub fn record_ack(&self, durable_index: u64) {
        self.acked_index.fetch_max(durable_index, Ordering::Relaxed);
        let micros = self.started.elapsed().as_micros() as u64;
        self.last_ack_micros.store(micros, Ordering::Relaxed);
    }

    /// Latest acknowledged durable position.
    pub fn acked_index(&self) -> u64 {
        self.acked_index.load(Ordering::Relaxed)
    }

    /// Publish the primary's WAL tip (monotone max).
    pub fn set_wal_next(&self, wal_next: u64) {
        self.wal_next.fetch_max(wal_next, Ordering::Relaxed);
    }

    /// Primary's WAL tip as last observed.
    pub fn wal_next(&self) -> u64 {
        self.wal_next.load(Ordering::Relaxed)
    }

    /// Records the standby is behind the primary's WAL tip.
    pub fn lag_records(&self) -> u64 {
        self.wal_next().saturating_sub(self.acked_index())
    }

    /// Seconds since the last ack; negative (−1) before any ack.
    pub fn last_ack_seconds(&self) -> f64 {
        match self.last_ack_micros.load(Ordering::Relaxed) {
            NEVER => -1.0,
            at => (self.started.elapsed().as_micros() as u64).saturating_sub(at) as f64 / 1e6,
        }
    }

    /// Seconds of replication lag: zero when fully acked, otherwise the
    /// time since acknowledged progress last advanced (time since the link
    /// came up when nothing was ever acked).
    pub fn lag_seconds(&self) -> f64 {
        if self.lag_records() == 0 {
            return 0.0;
        }
        let last = self.last_ack_seconds();
        if last < 0.0 {
            self.started.elapsed().as_micros() as f64 / 1e6
        } else {
            last
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_tracks_tip_minus_acks() {
        let stats = ReplicationStats::new();
        assert_eq!(stats.lag_records(), 0);
        assert_eq!(stats.lag_seconds(), 0.0);
        assert!(stats.last_ack_seconds() < 0.0);

        stats.set_wal_next(100);
        assert_eq!(stats.lag_records(), 100);
        assert!(stats.lag_seconds() >= 0.0);

        stats.record_ack(60);
        assert_eq!(stats.lag_records(), 40);
        assert!(stats.last_ack_seconds() >= 0.0);

        stats.record_ack(100);
        assert_eq!(stats.lag_records(), 0);
        assert_eq!(stats.lag_seconds(), 0.0);

        // Acks and the tip are monotone.
        stats.record_ack(5);
        stats.set_wal_next(7);
        assert_eq!(stats.acked_index(), 100);
        assert_eq!(stats.wal_next(), 100);
    }
}
