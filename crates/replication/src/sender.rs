//! The primary side: a background thread that tails the on-disk WAL and
//! streams it to the standby over `MSR1`.
//!
//! Tailing the *files* (rather than an in-memory queue) makes the sender
//! stateless across disconnects: on every (re)connection it handshakes,
//! learns the standby's durable position, and either resumes from that
//! index in the WAL or — when truncation has moved past it, or the standby
//! is fresh or divergent — re-syncs it by shipping the checkpoint chain
//! first ([`Frame::BeginBootstrap`]).
//!
//! The serve ingest path calls [`ReplicationSender::notify`] after each
//! appended chunk; in [`AckMode::Sync`] it then calls
//! [`ReplicationSender::wait_for_ack`], which blocks that connection's
//! reads until the standby has acknowledged the chunk — extending the
//! existing socket → engine back-pressure chain across machines.

use std::io::{self, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use morphstream_durability::{wal_start_index, CheckpointStore, TailError, TailItem, WalTailer};

use crate::link::{read_available, send_frame};
use crate::protocol::{Frame, FrameReader, CHECKPOINT_CHUNK, REPL_MAGIC, REPL_VERSION};
use crate::stats::ReplicationStats;

/// Whether ingest waits for standby acknowledgements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// Ingest blocks until the standby has durably appended each chunk: no
    /// acknowledged event can be lost by losing the primary alone.
    Sync,
    /// Ingest never waits; the standby trails by whatever the link allows.
    #[default]
    Async,
}

impl AckMode {
    /// Parse a mode name as accepted by `--ack`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sync" => Some(Self::Sync),
            "async" => Some(Self::Async),
            _ => None,
        }
    }

    /// Canonical name (inverse of [`AckMode::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Sync => "sync",
            Self::Async => "async",
        }
    }
}

/// Configuration for [`ReplicationSender::start`].
#[derive(Debug, Clone)]
pub struct SenderOptions {
    /// Standby replication address (`host:port`).
    pub target: String,
    /// Primary's WAL directory (tailed live).
    pub wal_dir: PathBuf,
    /// Primary's checkpoint directory (shipped on bootstrap).
    pub checkpoint_dir: PathBuf,
    /// Punctuation interval, advertised in the handshake.
    pub punctuation: u64,
    /// Whether ingest waits for standby acks.
    pub ack: AckMode,
}

struct Shared {
    stop: AtomicBool,
    /// Primary's WAL tip as published by the ingest path.
    wal_next: AtomicU64,
    stats: Arc<ReplicationStats>,
    acked: Mutex<u64>,
    ack_cond: Condvar,
    wake: Mutex<bool>,
    wake_cond: Condvar,
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn complete_ack(&self, durable_index: u64) {
        let mut acked = self.acked.lock().unwrap();
        if durable_index > *acked {
            *acked = durable_index;
        }
        self.ack_cond.notify_all();
        drop(acked);
        self.stats.record_ack(durable_index);
    }

    fn wake(&self) {
        let mut flag = self.wake.lock().unwrap();
        *flag = true;
        self.wake_cond.notify_all();
    }

    /// Sleep up to `dur`, returning early when woken or stopped.
    fn doze(&self, dur: Duration) {
        let mut flag = self.wake.lock().unwrap();
        if !*flag && !self.stopped() {
            let (guard, _) = self.wake_cond.wait_timeout(flag, dur).unwrap();
            flag = guard;
        }
        *flag = false;
    }
}

/// Handle to the background shipping thread on the primary.
pub struct ReplicationSender {
    shared: Arc<Shared>,
    ack: AckMode,
    thread: Option<JoinHandle<()>>,
}

impl ReplicationSender {
    /// Spawn the shipping thread. Connection failures are retried forever
    /// with capped exponential backoff; the handle is usable immediately.
    /// `wal_next` is the primary's current WAL tip.
    pub fn start(opts: SenderOptions, wal_next: u64) -> Self {
        let stats = Arc::new(ReplicationStats::new());
        stats.set_wal_next(wal_next);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            wal_next: AtomicU64::new(wal_next),
            stats,
            acked: Mutex::new(0),
            ack_cond: Condvar::new(),
            wake: Mutex::new(false),
            wake_cond: Condvar::new(),
        });
        let ack = opts.ack;
        let runner = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("repl-sender".into())
            .spawn(move || run(&runner, &opts))
            .expect("spawn replication sender");
        Self {
            shared,
            ack,
            thread: Some(thread),
        }
    }

    /// Counters for `/metrics`.
    pub fn stats(&self) -> Arc<ReplicationStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The configured acknowledgement mode.
    pub fn ack_mode(&self) -> AckMode {
        self.ack
    }

    /// Publish a new WAL tip and nudge the shipping thread. Call after
    /// appending events (the sender also polls, so missing a nudge only
    /// costs latency, never data).
    pub fn notify(&self, wal_next: u64) {
        self.shared.wal_next.fetch_max(wal_next, Ordering::Relaxed);
        self.shared.stats.set_wal_next(wal_next);
        self.shared.wake();
    }

    /// Block until the standby has acknowledged `index` events, the sender
    /// is stopped, or `abort` returns true. Returns whether the ack
    /// arrived.
    pub fn wait_for_ack(&self, index: u64, abort: &dyn Fn() -> bool) -> bool {
        let mut acked = self.shared.acked.lock().unwrap();
        loop {
            if *acked >= index {
                return true;
            }
            if self.shared.stopped() || abort() {
                return false;
            }
            let (guard, _) = self
                .shared
                .ack_cond
                .wait_timeout(acked, Duration::from_millis(50))
                .unwrap();
            acked = guard;
        }
    }

    /// Stop the shipping thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.wake();
        self.shared.ack_cond.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicationSender {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn run(shared: &Shared, opts: &SenderOptions) {
    let mut backoff = Duration::from_millis(100);
    while !shared.stopped() {
        if let Ok(stream) = TcpStream::connect(&opts.target) {
            backoff = Duration::from_millis(100);
            let _ = run_connection(shared, opts, stream);
            shared.stats.set_connected(false);
        }
        if shared.stopped() {
            return;
        }
        shared.doze(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(3));
    }
}

fn run_connection(shared: &Shared, opts: &SenderOptions, mut stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut scratch = Vec::new();
    stream.write_all(&REPL_MAGIC)?;
    send_frame(
        &mut stream,
        &Frame::Hello {
            version: REPL_VERSION,
            punctuation: opts.punctuation,
            wal_next: shared.wal_next.load(Ordering::Relaxed),
        },
        &mut scratch,
    )?;

    // Handshake: wait for the standby's position.
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let standby_pos = loop {
        if shared.stopped() {
            return Ok(());
        }
        read_available(&mut stream, &mut reader, &mut frames)?;
        match frames.pop() {
            Some(Frame::Position { next_index, .. }) => break next_index,
            Some(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Position, got {other:?}"),
                ));
            }
            None => {}
        }
    };
    shared.stats.set_connected(true);

    // Tail vs bootstrap: the WAL serves the standby's position only when
    // that position is still on disk (not truncated away) and not past our
    // own tip (a divergent or future standby must be reset).
    let wal_next = shared.wal_next.load(Ordering::Relaxed);
    let wal_start = wal_start_index(&opts.wal_dir).map_err(to_io)?;
    let serves = standby_pos <= wal_next
        && match wal_start {
            Some(start) => standby_pos >= start,
            None => standby_pos == wal_next,
        };
    let start = if serves {
        standby_pos
    } else {
        send_bootstrap(&mut stream, &opts.checkpoint_dir, &mut scratch)?
    };

    ship(shared, opts, &mut stream, reader, start, &mut scratch)
}

/// Ship the checkpoint chain; returns the event index it covers.
fn send_bootstrap(
    stream: &mut TcpStream,
    checkpoint_dir: &PathBuf,
    scratch: &mut Vec<u8>,
) -> io::Result<u64> {
    let chain = CheckpointStore::open(checkpoint_dir).map_err(to_io)?;
    let entries = chain.entries().to_vec();
    let events_applied = entries.last().map(|e| e.events_applied).unwrap_or(0);
    send_frame(
        stream,
        &Frame::BeginBootstrap {
            chain_len: entries.len() as u32,
            events_applied,
        },
        scratch,
    )?;
    for entry in &entries {
        let bytes = std::fs::read(chain.dir().join(&entry.file))?;
        let mut chunks = bytes.chunks(CHECKPOINT_CHUNK).peekable();
        while let Some(chunk) = chunks.next() {
            send_frame(
                stream,
                &Frame::CheckpointChunk {
                    last_chunk: chunks.peek().is_none(),
                    data: chunk.to_vec(),
                },
                scratch,
            )?;
        }
    }
    Ok(events_applied)
}

fn ship(
    shared: &Shared,
    opts: &SenderOptions,
    stream: &mut TcpStream,
    mut reader: FrameReader,
    start: u64,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(10)))?;
    let mut tailer = WalTailer::new(&opts.wal_dir, start);
    let mut frames = Vec::new();
    let mut items = Vec::new();
    let mut pending: Vec<Vec<u8>> = Vec::new();
    let mut pending_first = 0u64;
    let mut pending_bytes = 0usize;
    let mut last_sent = Instant::now();

    loop {
        if shared.stopped() {
            return Ok(());
        }
        frames.clear();
        read_available(stream, &mut reader, &mut frames)?;
        for frame in frames.drain(..) {
            if let Frame::Ack { durable_index } = frame {
                shared.complete_ack(durable_index);
            }
        }

        items.clear();
        let polled = tailer.poll(&mut items, 1024).map_err(|e| match e {
            TailError::Gap { .. } => io::Error::new(io::ErrorKind::NotFound, e.to_string()),
            TailError::Store(e) => to_io(e),
        })?;
        let mut sent = false;
        for item in items.drain(..) {
            match item {
                TailItem::Event { index, payload } => {
                    if pending.is_empty() {
                        pending_first = index;
                        pending_bytes = 0;
                    }
                    pending_bytes += payload.len();
                    pending.push(payload);
                    if pending_bytes >= CHECKPOINT_CHUNK || pending.len() >= 512 {
                        flush_batch(shared, stream, &mut pending, pending_first, scratch)?;
                        sent = true;
                    }
                }
                TailItem::Punctuation { next_index } => {
                    flush_batch(shared, stream, &mut pending, pending_first, scratch)?;
                    send_frame(stream, &Frame::Punct { next_index }, scratch)?;
                    sent = true;
                }
            }
        }
        if !pending.is_empty() {
            flush_batch(shared, stream, &mut pending, pending_first, scratch)?;
            sent = true;
        }
        if sent {
            last_sent = Instant::now();
            continue;
        }
        if polled > 0 {
            continue;
        }
        if last_sent.elapsed() >= Duration::from_secs(1) {
            send_frame(
                stream,
                &Frame::Heartbeat {
                    wal_next: shared.wal_next.load(Ordering::Relaxed),
                },
                scratch,
            )?;
            last_sent = Instant::now();
        }
        shared.doze(Duration::from_millis(25));
    }
}

fn flush_batch(
    shared: &Shared,
    stream: &mut TcpStream,
    pending: &mut Vec<Vec<u8>>,
    first_index: u64,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    let events = std::mem::take(pending);
    let count = events.len() as u64;
    let bytes: u64 = events.iter().map(|e| e.len() as u64).sum();
    send_frame(
        stream,
        &Frame::Batch {
            first_index,
            events,
        },
        scratch,
    )?;
    shared.stats.add_shipped(count, bytes);
    Ok(())
}

fn to_io(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
