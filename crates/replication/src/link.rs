//! Socket plumbing shared by the sender and the standby: non-blocking
//! frame reads and buffered frame writes over `std::net::TcpStream`.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use crate::protocol::{Frame, FrameReader};

/// Encode and write one frame. `scratch` is reused across calls to avoid
/// per-frame allocation. Returns the encoded size.
pub(crate) fn send_frame(
    stream: &mut TcpStream,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> io::Result<usize> {
    scratch.clear();
    frame.encode(scratch);
    stream.write_all(scratch)?;
    Ok(scratch.len())
}

/// Drain whatever the socket currently has into `reader` and decode any
/// complete frames into `out`. A read timeout ("nothing right now") is a
/// clean return; EOF and decode errors are hard errors that end the
/// connection.
pub(crate) fn read_available(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    out: &mut Vec<Frame>,
) -> io::Result<()> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed")),
            Ok(n) => {
                reader.extend(&buf[..n]);
                while let Some(frame) = reader
                    .next()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
                {
                    out.push(frame);
                }
                // A short read means the socket buffer is drained; a full
                // read means more may be waiting.
                if n < buf.len() {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}
