//! The `MSR1` replication wire protocol.
//!
//! The primary is the TCP *client*: it dials the standby's listener, writes
//! the 4-byte magic preamble, and then both sides exchange length-prefixed
//! frames. Layout (integers little-endian):
//!
//! ```text
//! preamble := "MSR1"                      primary → standby, once
//! frame    := u32 len                     body length, bounded
//!             body                        u8 tag + tag-specific payload
//!             u64 fnv                     FNV-1a over the body bytes
//! ```
//!
//! Frame kinds:
//!
//! | tag | frame             | direction         | payload |
//! |-----|-------------------|-------------------|---------|
//! | 1   | `Hello`           | primary → standby | protocol version, punctuation interval, WAL tip |
//! | 2   | `Position`        | standby → primary | durable index, newest checkpoint id |
//! | 3   | `BeginBootstrap`  | primary → standby | chain length, events the chain covers |
//! | 4   | `CheckpointChunk` | primary → standby | file-complete flag, raw `MSC1` bytes |
//! | 5   | `Batch`           | primary → standby | first index + raw `MSB1` event payloads |
//! | 6   | `Punct`           | primary → standby | the WAL punctuation marker value |
//! | 7   | `Heartbeat`       | primary → standby | WAL tip (keeps lag observable when idle) |
//! | 8   | `Ack`             | standby → primary | standby's durable index |
//!
//! Decoding follows the same total-decoder discipline as `MSB1`/`MSC1`:
//! bounded lengths and counts, checksum verified before the body is
//! trusted, trailing bytes rejected, errors instead of panics. A frame cut
//! short by the socket is "incomplete, read more", not an error.

use morphstream_common::hash::Fnv1a;
use morphstream_common::protocol::{ProtocolError, MAX_FRAME_LEN};

/// Magic preamble the primary writes after connecting.
pub const REPL_MAGIC: [u8; 4] = *b"MSR1";

/// Protocol version carried in [`Frame::Hello`].
pub const REPL_VERSION: u32 = 1;

/// Upper bound on one frame body. Checkpoint files are chunked and event
/// batches cut to stay under it; anything larger on the wire is corrupt.
pub const MAX_REPL_FRAME: usize = 256 * 1024;

/// Chunk size for checkpoint file transfer (comfortably under the frame
/// bound even with framing overhead).
pub const CHECKPOINT_CHUNK: usize = 128 * 1024;

const TAG_HELLO: u8 = 1;
const TAG_POSITION: u8 = 2;
const TAG_BEGIN_BOOTSTRAP: u8 = 3;
const TAG_CHECKPOINT_CHUNK: u8 = 4;
const TAG_BATCH: u8 = 5;
const TAG_PUNCT: u8 = 6;
const TAG_HEARTBEAT: u8 = 7;
const TAG_ACK: u8 = 8;

/// Sentinel encoding of "no checkpoint yet" in [`Frame::Position`].
const NO_CHECKPOINT: u64 = u64::MAX;

/// One `MSR1` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Primary's opening frame after the magic preamble.
    Hello {
        /// Protocol version ([`REPL_VERSION`]); the standby rejects others.
        version: u32,
        /// Primary's punctuation interval (events per marker).
        punctuation: u64,
        /// Primary's WAL tip (next event index) at connect time.
        wal_next: u64,
    },
    /// Standby's reply: where it stands, so the primary can pick tail vs
    /// bootstrap.
    Position {
        /// Next event index the standby needs (its durable count).
        next_index: u64,
        /// Newest checkpoint id the standby holds, if any.
        checkpoint_id: Option<u64>,
    },
    /// The standby cannot be served from the primary's WAL: discard local
    /// state and receive the checkpoint chain instead.
    BeginBootstrap {
        /// Number of checkpoint files that will follow.
        chain_len: u32,
        /// Event index the chain covers; WAL shipping resumes there.
        events_applied: u64,
    },
    /// A slice of one checkpoint file.
    CheckpointChunk {
        /// True when this chunk completes the current file.
        last_chunk: bool,
        /// Raw `MSC1` bytes.
        data: Vec<u8>,
    },
    /// Consecutive WAL event records.
    Batch {
        /// Global index of the first event in the batch.
        first_index: u64,
        /// Raw `MSB1` event payloads, in index order.
        events: Vec<Vec<u8>>,
    },
    /// A WAL punctuation marker (batch framing on the standby's log).
    Punct {
        /// The marker value: events appended when it was written.
        next_index: u64,
    },
    /// Keep-alive while the primary has nothing to ship.
    Heartbeat {
        /// Primary's WAL tip, so standby-side lag stays current.
        wal_next: u64,
    },
    /// Standby's durable progress (also the reply to a heartbeat).
    Ack {
        /// Events the standby has appended to its own WAL.
        durable_index: u64,
    },
}

impl Frame {
    /// Append the encoded frame (length prefix + body + checksum) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]); // length back-patched below
        let body_start = out.len();
        match self {
            Self::Hello {
                version,
                punctuation,
                wal_next,
            } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&punctuation.to_le_bytes());
                out.extend_from_slice(&wal_next.to_le_bytes());
            }
            Self::Position {
                next_index,
                checkpoint_id,
            } => {
                out.push(TAG_POSITION);
                out.extend_from_slice(&next_index.to_le_bytes());
                out.extend_from_slice(&checkpoint_id.unwrap_or(NO_CHECKPOINT).to_le_bytes());
            }
            Self::BeginBootstrap {
                chain_len,
                events_applied,
            } => {
                out.push(TAG_BEGIN_BOOTSTRAP);
                out.extend_from_slice(&chain_len.to_le_bytes());
                out.extend_from_slice(&events_applied.to_le_bytes());
            }
            Self::CheckpointChunk { last_chunk, data } => {
                out.push(TAG_CHECKPOINT_CHUNK);
                out.push(*last_chunk as u8);
                out.extend_from_slice(data);
            }
            Self::Batch {
                first_index,
                events,
            } => {
                out.push(TAG_BATCH);
                out.extend_from_slice(&first_index.to_le_bytes());
                out.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for event in events {
                    out.extend_from_slice(&(event.len() as u32).to_le_bytes());
                    out.extend_from_slice(event);
                }
            }
            Self::Punct { next_index } => {
                out.push(TAG_PUNCT);
                out.extend_from_slice(&next_index.to_le_bytes());
            }
            Self::Heartbeat { wal_next } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&wal_next.to_le_bytes());
            }
            Self::Ack { durable_index } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&durable_index.to_le_bytes());
            }
        }
        let body_len = out.len() - body_start;
        debug_assert!(body_len <= MAX_REPL_FRAME, "frame built over the bound");
        out[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
        let mut fnv = Fnv1a::new();
        fnv.update(&out[body_start..]);
        out.extend_from_slice(&fnv.finish().to_le_bytes());
    }

    /// Encoded bytes of this frame alone.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Try to decode one frame at the head of `bytes`. `Ok(None)` means the
    /// bytes end mid-frame (read more); `Ok(Some((frame, consumed)))` is a
    /// complete frame; `Err` means the stream is corrupt and cannot be
    /// resynchronized. Total: never panics.
    pub fn decode(bytes: &[u8]) -> Result<Option<(Frame, usize)>, ProtocolError> {
        if bytes.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("4")) as usize;
        if len == 0 {
            return Err(ProtocolError::Malformed("empty frame body".into()));
        }
        if len > MAX_REPL_FRAME {
            return Err(ProtocolError::Oversized { len });
        }
        let total = 4 + len + 8;
        if bytes.len() < total {
            return Ok(None);
        }
        let body = &bytes[4..4 + len];
        let stored = u64::from_le_bytes(bytes[4 + len..total].try_into().expect("8"));
        let mut fnv = Fnv1a::new();
        fnv.update(body);
        if fnv.finish() != stored {
            return Err(ProtocolError::Malformed("frame checksum mismatch".into()));
        }
        let frame = Self::decode_body(body)?;
        Ok(Some((frame, total)))
    }

    /// Decode a checksum-verified frame body.
    fn decode_body(body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = BodyReader::new(&body[1..]);
        let frame = match body[0] {
            TAG_HELLO => Frame::Hello {
                version: r.u32()?,
                punctuation: r.u64()?,
                wal_next: r.u64()?,
            },
            TAG_POSITION => Frame::Position {
                next_index: r.u64()?,
                checkpoint_id: match r.u64()? {
                    NO_CHECKPOINT => None,
                    id => Some(id),
                },
            },
            TAG_BEGIN_BOOTSTRAP => Frame::BeginBootstrap {
                chain_len: r.u32()?,
                events_applied: r.u64()?,
            },
            TAG_CHECKPOINT_CHUNK => Frame::CheckpointChunk {
                last_chunk: match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(ProtocolError::UnknownTag(other)),
                },
                data: r.rest().to_vec(),
            },
            TAG_BATCH => {
                let first_index = r.u64()?;
                let raw_count = r.u32()? as usize;
                let count = r.bounded_count(raw_count, 4, "batch events")?;
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    if len > MAX_FRAME_LEN {
                        return Err(ProtocolError::Oversized { len });
                    }
                    events.push(r.bytes(len)?.to_vec());
                }
                Frame::Batch {
                    first_index,
                    events,
                }
            }
            TAG_PUNCT => Frame::Punct {
                next_index: r.u64()?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat { wal_next: r.u64()? },
            TAG_ACK => Frame::Ack {
                durable_index: r.u64()?,
            },
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Bounds-checked cursor over a frame body (same discipline as the `MSC1`
/// reader: bounded counts, trailing-byte rejection).
struct BodyReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(ProtocolError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    /// Everything not yet consumed.
    fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    /// Reject counts that cannot fit in the remaining bytes.
    fn bounded_count(
        &self,
        count: usize,
        min_element_bytes: usize,
        what: &str,
    ) -> Result<usize, ProtocolError> {
        let remaining = self.bytes.len() - self.pos;
        if count.saturating_mul(min_element_bytes) > remaining {
            return Err(ProtocolError::Malformed(format!(
                "{what} count {count} exceeds remaining payload"
            )));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after frame payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// Incremental frame decoder over a byte stream: feed it whatever the
/// socket yields, pull complete frames out. Tolerates frames split across
/// arbitrarily many reads.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if the buffer holds one.
    #[allow(clippy::should_implement_trait)] // fallible pop, not an Iterator
    pub fn next(&mut self) -> Result<Option<Frame>, ProtocolError> {
        match Frame::decode(&self.buf)? {
            Some((frame, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                version: REPL_VERSION,
                punctuation: 50,
                wal_next: 1234,
            },
            Frame::Position {
                next_index: 77,
                checkpoint_id: Some(3),
            },
            Frame::Position {
                next_index: 0,
                checkpoint_id: None,
            },
            Frame::BeginBootstrap {
                chain_len: 2,
                events_applied: 500,
            },
            Frame::CheckpointChunk {
                last_chunk: true,
                data: vec![1, 2, 3, 4, 5],
            },
            Frame::Batch {
                first_index: 9,
                events: vec![vec![0xAA; 17], vec![], vec![0x01, 0x02]],
            },
            Frame::Punct { next_index: 100 },
            Frame::Heartbeat { wal_next: 42 },
            Frame::Ack { durable_index: 41 },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            let (decoded, consumed) = Frame::decode(&bytes).unwrap().unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn truncated_frames_are_incomplete_not_errors() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            for len in 0..bytes.len() {
                match Frame::decode(&bytes[..len]) {
                    Ok(None) => {}
                    other => panic!("prefix of {len} bytes: expected incomplete, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bit_flips_error_never_panic() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            for i in 0..bytes.len() {
                let mut dented = bytes.clone();
                dented[i] ^= 1;
                // Must terminate without panicking; a flip in the length
                // prefix may legitimately read as incomplete.
                let _ = Frame::decode(&dented);
            }
        }
    }

    #[test]
    fn reader_reassembles_split_frames() {
        let mut wire = Vec::new();
        for frame in samples() {
            frame.encode(&mut wire);
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(3) {
            reader.extend(chunk);
            while let Some(frame) = reader.next().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded, samples());
        assert_eq!(reader.buffered(), 0);
    }
}
