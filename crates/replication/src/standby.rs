//! The standby side: a listener that accepts the primary's `MSR1` stream,
//! persists it into the standby's *own* durable directory (WAL +
//! checkpoints), and continuously replays it through a live topology so the
//! replica is warm — its state and output digests match the primary's at
//! every punctuation, and promotion is a handoff rather than a recovery.
//!
//! The standby is a state machine over one primary connection at a time:
//!
//! 1. `Hello` → reply [`Frame::Position`] with the standby's durable index
//!    and newest checkpoint id.
//! 2. Either WAL batches start arriving at exactly that index, or the
//!    primary decides the position is unservable and sends
//!    [`Frame::BeginBootstrap`]: the standby discards local state and
//!    rebuilds from the shipped checkpoint chain before tailing.
//! 3. Every `Batch` is WAL-appended *then* pushed (the same
//!    log-is-a-superset invariant the primary's ingest path keeps), and
//!    acknowledged with the standby's durable index; `Punct` frames mirror
//!    the primary's punctuation markers and drive the standby's own
//!    periodic checkpoints.
//!
//! [`StandbyServer::promote`] stops replication, takes a final checkpoint,
//! and hands the warm engine (plus its WAL and checkpoint store) to the
//! caller — the server crate wraps it into a full serving primary.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use morphstream::storage::StateStore;
use morphstream::{FnSink, Pipeline, Topology, TxnEngine};
use morphstream_common::hash::Fnv1a;
use morphstream_common::protocol::WireCodec;
use morphstream_durability::{
    read_wal, repair_torn_tail, Checkpoint, CheckpointBuilder, CheckpointStore, FsyncPolicy,
    RedirtySink, WalLog, WalState,
};
use morphstream_workloads::SlEvent;

use crate::link::{read_available, send_frame};
use crate::protocol::{Frame, FrameReader, REPL_MAGIC, REPL_VERSION};
use crate::stats::ReplicationStats;

/// The topology type a standby replays (the served Streaming Ledger shape).
pub type StandbyEngine = Topology<SlEvent, u64>;

/// A freshly built engine plus the state stores its operators write, so the
/// standby (and tests) can digest final state after promotion.
pub struct ReplicaEngine {
    /// The topology, without an output sink (the standby installs its own).
    pub engine: StandbyEngine,
    /// Every distinct store, in digest order.
    pub stores: Vec<StateStore>,
}

/// Builds a fresh, empty engine. Called once at startup and again whenever
/// the primary bootstraps the standby from scratch; it must build the same
/// dataflow the primary serves, or replayed digests will diverge.
pub type EngineFactory = Box<dyn FnMut() -> io::Result<ReplicaEngine> + Send>;

/// Configuration for [`StandbyServer::start`].
#[derive(Debug, Clone)]
pub struct StandbyOptions {
    /// Replication listener address (`host:port`; port 0 for ephemeral).
    pub listen: String,
    /// The standby's own durable directory (`wal/` + `checkpoints/`).
    /// Independent of the primary's — nothing is shared via filesystem.
    pub data_dir: PathBuf,
    /// Fsync policy of the standby's WAL.
    pub fsync: FsyncPolicy,
    /// Events between the standby's own incremental checkpoints
    /// (0 = checkpoint only at recovery and promotion).
    pub checkpoint_interval: u64,
    /// Superseded checkpoint chains to retain (0 = prune immediately).
    pub checkpoint_retain: usize,
}

/// What standby startup recovery found in its local data directory.
#[derive(Debug, Clone)]
pub struct StandbyRecovery {
    /// Id of the newest checkpoint restored, if any existed.
    pub checkpoint_id: Option<u64>,
    /// WAL events replayed through the topology on top of the checkpoint.
    pub replayed_events: u64,
    /// Whether the local WAL ended in a torn record (repaired).
    pub torn_tail: bool,
}

/// Everything the promoted standby hands to its new life as a primary: a
/// warm engine, the digest it must keep extending, and the durable handles
/// already positioned at the replicated index.
pub struct Promoted {
    /// The warm topology, state fully applied up to `durable_index`.
    pub engine: StandbyEngine,
    /// The engine's state stores, in digest order.
    pub stores: Vec<StateStore>,
    /// The output digest the standby accumulated; the promoted server must
    /// keep updating this same accumulator.
    pub output_digest: Arc<Mutex<Fnv1a>>,
    /// The standby's WAL, positioned at `durable_index`.
    pub wal: WalLog,
    /// The standby's checkpoint store (a final checkpoint was just taken).
    pub checkpoints: CheckpointStore,
    /// Events durably replicated and applied before promotion.
    pub durable_index: u64,
}

/// The replicated engine plus its durable companions, all advancing under
/// one lock so WAL appends, pushes, and checkpoints stay a consistent cut.
struct Core {
    engine: StandbyEngine,
    stores: Vec<StateStore>,
    output_digest: Arc<Mutex<Fnv1a>>,
    wal: WalLog,
    checkpoints: CheckpointStore,
    events_since_checkpoint: u64,
}

struct Shared {
    stop: AtomicBool,
    stats: Arc<ReplicationStats>,
    core: Mutex<Option<Core>>,
    /// Mirror of the standby's durable index, readable without the core lock.
    durable: AtomicU64,
    opts: StandbyOptions,
}

impl Shared {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

/// A running hot standby; stop it with [`StandbyServer::shutdown`] or flip
/// it into a primary with [`StandbyServer::promote`].
pub struct StandbyServer {
    shared: Arc<Shared>,
    listen_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    recovery: Option<StandbyRecovery>,
}

impl StandbyServer {
    /// Recover whatever the local data directory holds, bind the
    /// replication listener, and start accepting the primary.
    pub fn start(opts: StandbyOptions, mut factory: EngineFactory) -> io::Result<StandbyServer> {
        let (core, recovery) = open_core(&opts, &mut factory)?;
        let listener = TcpListener::bind(&opts.listen)?;
        let listen_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ReplicationStats::new());
        let durable = core.wal.next_index();
        stats.record_ack(durable);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            stats,
            core: Mutex::new(Some(core)),
            durable: AtomicU64::new(durable),
            opts,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("repl-standby".into())
            .spawn(move || accept_loop(listener, accept_shared, factory))
            .expect("spawn standby accept loop");
        Ok(StandbyServer {
            shared,
            listen_addr,
            accept_thread: Some(accept_thread),
            recovery,
        })
    }

    /// Address the replication listener actually bound (resolves port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Counters for `/metrics`.
    pub fn stats(&self) -> Arc<ReplicationStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Events durably replicated (WAL-appended locally) so far.
    pub fn durable_index(&self) -> u64 {
        self.shared.durable.load(Ordering::Relaxed)
    }

    /// What startup recovery did, when the data directory held prior state.
    pub fn recovery(&self) -> Option<&StandbyRecovery> {
        self.recovery.as_ref()
    }

    /// Stop replicating and hand over the warm engine: joins the accept
    /// thread, takes a final checkpoint so the handoff is durable, and
    /// returns everything a serving primary needs. Fails only when the
    /// standby was killed mid-bootstrap and holds no coherent state.
    pub fn promote(mut self) -> io::Result<Promoted> {
        self.stop_and_join();
        let mut core = self
            .shared
            .core
            .lock()
            .expect("standby core lock")
            .take()
            .ok_or_else(|| io::Error::other("standby holds no coherent state (mid-bootstrap)"))?;
        checkpoint_now(&mut core);
        let durable_index = core.wal.next_index();
        let Core {
            engine,
            stores,
            output_digest,
            wal,
            checkpoints,
            ..
        } = core;
        Ok(Promoted {
            engine,
            stores,
            output_digest,
            wal,
            checkpoints,
            durable_index,
        })
    }

    /// Stop the standby without promoting (local state stays on disk).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for StandbyServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Build (or recover) the standby's core from its local data directory:
/// restore the checkpoint chain, replay the WAL tail, re-anchor.
fn open_core(
    opts: &StandbyOptions,
    factory: &mut EngineFactory,
) -> io::Result<(Core, Option<StandbyRecovery>)> {
    let checkpoints = CheckpointStore::open_with_retention(
        opts.data_dir.join("checkpoints"),
        opts.checkpoint_retain,
    )
    .map_err(to_io)?;
    let ReplicaEngine { mut engine, stores } = factory()?;
    let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
    install_sink(&mut engine, &output_digest);

    let mut events_applied = 0u64;
    let mut checkpoint_id = None;
    if let Some(mut loaded) = checkpoints.load_chain().map_err(to_io)? {
        engine.restore(&mut loaded.restore);
        *output_digest.lock().expect("digest lock") = Fnv1a::from_state(loaded.output_digest);
        events_applied = loaded.events_applied;
        checkpoint_id = Some(loaded.last_id);
    }
    let wal_dir = opts.data_dir.join("wal");
    let wal_state: WalState<SlEvent> = read_wal(&wal_dir).map_err(to_io)?;
    if wal_state.torn_tail {
        repair_torn_tail::<SlEvent>(&wal_dir).map_err(to_io)?;
    }
    let torn_tail = wal_state.torn_tail;
    let next_index = wal_state
        .events
        .last()
        .map(|(index, _)| index + 1)
        .unwrap_or(events_applied)
        .max(events_applied);
    let tail = wal_state.replay_tail(events_applied);
    let replayed_events = tail.len() as u64;
    let recovered = checkpoint_id.is_some() || replayed_events > 0;
    if replayed_events > 0 {
        {
            let mut pipeline = Pipeline::new(&mut engine);
            for (_, event) in tail {
                pipeline.push(event);
            }
        }
        engine.flush();
    }
    let mut core = Core {
        engine,
        stores,
        output_digest,
        wal: WalLog::open(&wal_dir, opts.fsync, next_index).map_err(to_io)?,
        checkpoints,
        events_since_checkpoint: 0,
    };
    if recovered {
        checkpoint_now(&mut core);
    }
    let report = recovered.then_some(StandbyRecovery {
        checkpoint_id,
        replayed_events,
        torn_tail,
    });
    Ok((core, report))
}

fn install_sink(engine: &mut StandbyEngine, output_digest: &Arc<Mutex<Fnv1a>>) {
    let digest = Arc::clone(output_digest);
    engine.set_output_sink(Some(Box::new(FnSink(move |out: u64| {
        digest
            .lock()
            .expect("digest lock")
            .update(&out.to_le_bytes());
    }))));
}

/// The standby's periodic checkpoint: same discipline as the primary's —
/// flush to a barrier, snapshot dirty tables, publish atomically, rotate
/// and truncate the WAL; on a failed save, re-dirty so nothing is lost.
fn checkpoint_now(core: &mut Core) {
    core.events_since_checkpoint = 0;
    let mut builder = CheckpointBuilder::new();
    core.engine.checkpoint(&mut builder);
    let digest_state = core.output_digest.lock().expect("digest lock").finish();
    let events_applied = core.wal.next_index();
    let taken_dirty = builder.taken_dirty();
    let checkpoint = builder.build(core.checkpoints.next_id(), events_applied, digest_state);
    match core.checkpoints.save(&checkpoint) {
        Ok(_) => {
            if let Err(e) = core
                .wal
                .rotate()
                .and_then(|()| core.wal.truncate_before(events_applied).map(|_| ()))
            {
                eprintln!("morphstream standby: WAL rotation failed: {e}");
            }
        }
        Err(e) => {
            eprintln!("morphstream standby: checkpoint failed: {e}");
            let mut redirty = RedirtySink::new(taken_dirty);
            core.engine.checkpoint(&mut redirty);
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, mut factory: EngineFactory) {
    while !shared.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = handle_primary(&shared, &mut factory, stream) {
                    // EOF / reset is the primary going away (it reconnects
                    // and re-handshakes); only data corruption is loud.
                    if e.kind() == io::ErrorKind::InvalidData {
                        eprintln!("morphstream standby: replication stream error: {e}");
                    }
                }
                shared.stats.set_connected(false);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("morphstream standby: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// In-flight checkpoint-chain transfer state.
struct Bootstrap {
    remaining: u32,
    events_applied: u64,
    buf: Vec<u8>,
}

fn handle_primary(
    shared: &Shared,
    factory: &mut EngineFactory,
    mut stream: TcpStream,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut magic = [0u8; 4];
    read_exact_or_stop(shared, &mut stream, &mut magic)?;
    if magic != REPL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad replication preamble",
        ));
    }

    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut scratch = Vec::new();
    let mut bootstrap: Option<Bootstrap> = None;
    while !shared.stopped() {
        frames.clear();
        read_available(&mut stream, &mut reader, &mut frames)?;
        if frames.is_empty() {
            continue;
        }
        let mut guard = shared.core.lock().expect("standby core lock");
        for frame in frames.drain(..) {
            process_frame(
                shared,
                factory,
                &mut guard,
                &mut bootstrap,
                &mut stream,
                &mut scratch,
                frame,
            )?;
        }
    }
    Ok(())
}

fn process_frame(
    shared: &Shared,
    factory: &mut EngineFactory,
    core: &mut Option<Core>,
    bootstrap: &mut Option<Bootstrap>,
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
    frame: Frame,
) -> io::Result<()> {
    match frame {
        Frame::Hello {
            version, wal_next, ..
        } => {
            if version != REPL_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported replication protocol version {version}"),
                ));
            }
            shared.stats.set_connected(true);
            shared.stats.set_wal_next(wal_next);
            let (next_index, checkpoint_id) = match core.as_ref() {
                Some(core) => (
                    core.wal.next_index(),
                    core.checkpoints.entries().last().map(|e| e.id),
                ),
                None => (0, None),
            };
            send_frame(
                stream,
                &Frame::Position {
                    next_index,
                    checkpoint_id,
                },
                scratch,
            )?;
        }
        Frame::BeginBootstrap {
            chain_len,
            events_applied,
        } => {
            // Discard local state (drop handles before wiping their files).
            *core = None;
            reset_dir(&shared.opts.data_dir.join("wal"))?;
            reset_dir(&shared.opts.data_dir.join("checkpoints"))?;
            let mut fresh = fresh_core(shared, factory, 0)?;
            if chain_len == 0 {
                // Nothing to ship: the primary itself starts at
                // `events_applied` (0 unless its history was truncated away
                // without any checkpoint, which cannot happen).
                fresh.wal = WalLog::open(
                    shared.opts.data_dir.join("wal"),
                    shared.opts.fsync,
                    events_applied,
                )
                .map_err(to_io)?;
                ack(shared, stream, scratch, &fresh)?;
            } else {
                *bootstrap = Some(Bootstrap {
                    remaining: chain_len,
                    events_applied,
                    buf: Vec::new(),
                });
            }
            *core = Some(fresh);
        }
        Frame::CheckpointChunk { last_chunk, data } => {
            let state = bootstrap.as_mut().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "checkpoint chunk outside bootstrap",
                )
            })?;
            state.buf.extend_from_slice(&data);
            if !last_chunk {
                return Ok(());
            }
            let checkpoint = Checkpoint::decode(&state.buf).map_err(to_io)?;
            state.buf.clear();
            state.remaining = state.remaining.saturating_sub(1);
            let done = state.remaining == 0;
            let announced = state.events_applied;
            let target = core
                .as_mut()
                .ok_or_else(|| io::Error::other("bootstrap without a core"))?;
            target.checkpoints.save(&checkpoint).map_err(to_io)?;
            if done {
                let mut loaded =
                    target
                        .checkpoints
                        .load_chain()
                        .map_err(to_io)?
                        .ok_or_else(|| {
                            io::Error::new(io::ErrorKind::InvalidData, "shipped chain loads empty")
                        })?;
                if loaded.events_applied != announced {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "shipped chain covers {} events, primary announced {announced}",
                            loaded.events_applied
                        ),
                    ));
                }
                target.engine.restore(&mut loaded.restore);
                *target.output_digest.lock().expect("digest lock") =
                    Fnv1a::from_state(loaded.output_digest);
                target.wal = WalLog::open(
                    shared.opts.data_dir.join("wal"),
                    shared.opts.fsync,
                    loaded.events_applied,
                )
                .map_err(to_io)?;
                *bootstrap = None;
                ack(shared, stream, scratch, target)?;
            }
        }
        Frame::Batch {
            first_index,
            events,
        } => {
            let core = core
                .as_mut()
                .filter(|_| bootstrap.is_none())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "batch during bootstrap")
                })?;
            if first_index != core.wal.next_index() {
                // Out of sequence (e.g. a stale sender after our state was
                // rebuilt): drop the connection; the primary re-handshakes
                // against our actual position.
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "batch at index {first_index}, standby expects {}",
                        core.wal.next_index()
                    ),
                ));
            }
            let count = events.len() as u64;
            let bytes: u64 = events.iter().map(|e| e.len() as u64).sum();
            {
                let mut pipeline = Pipeline::new(&mut core.engine);
                for payload in &events {
                    let event = SlEvent::decode_binary(payload).map_err(to_io)?;
                    core.wal.append_event(&event).map_err(to_io)?;
                    pipeline.push(event);
                }
            }
            core.events_since_checkpoint += count;
            shared.stats.add_shipped(count, bytes);
            shared.stats.set_wal_next(first_index + count);
            ack(shared, stream, scratch, core)?;
        }
        Frame::Punct { .. } => {
            let core = core
                .as_mut()
                .filter(|_| bootstrap.is_none())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "punctuation during bootstrap")
                })?;
            core.wal.mark_punctuation().map_err(to_io)?;
            if shared.opts.checkpoint_interval > 0
                && core.events_since_checkpoint >= shared.opts.checkpoint_interval
            {
                checkpoint_now(core);
            }
            ack(shared, stream, scratch, core)?;
        }
        Frame::Heartbeat { wal_next } => {
            shared.stats.set_wal_next(wal_next);
            if let Some(core) = core.as_ref() {
                ack(shared, stream, scratch, core)?;
            }
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected frame from primary: {other:?}"),
            ));
        }
    }
    Ok(())
}

/// Acknowledge the standby's durable index and mirror it into the stats.
fn ack(
    shared: &Shared,
    stream: &mut TcpStream,
    scratch: &mut Vec<u8>,
    core: &Core,
) -> io::Result<()> {
    let durable_index = core.wal.next_index();
    // Local bookkeeping first: once the primary sees this ack, observers on
    // this side must already see the same durable index.
    shared.durable.store(durable_index, Ordering::Relaxed);
    shared.stats.record_ack(durable_index);
    send_frame(stream, &Frame::Ack { durable_index }, scratch)?;
    Ok(())
}

/// A fresh empty core positioned at `next_index` (used by bootstrap resets).
fn fresh_core(shared: &Shared, factory: &mut EngineFactory, next_index: u64) -> io::Result<Core> {
    let ReplicaEngine { mut engine, stores } = factory()?;
    let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
    install_sink(&mut engine, &output_digest);
    Ok(Core {
        engine,
        stores,
        output_digest,
        wal: WalLog::open(
            shared.opts.data_dir.join("wal"),
            shared.opts.fsync,
            next_index,
        )
        .map_err(to_io)?,
        checkpoints: CheckpointStore::open_with_retention(
            shared.opts.data_dir.join("checkpoints"),
            shared.opts.checkpoint_retain,
        )
        .map_err(to_io)?,
        events_since_checkpoint: 0,
    })
}

fn reset_dir(dir: &Path) -> io::Result<()> {
    match std::fs::remove_dir_all(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// Read exactly `buf.len()` bytes, tolerating read timeouts (poll the stop
/// flag between them) so shutdown never hangs on a silent socket.
fn read_exact_or_stop(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.stopped() {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "standby stopping",
            ));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed before preamble",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn to_io(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
