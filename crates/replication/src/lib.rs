//! Primary→standby replication for MorphStream.
//!
//! Layered directly on the durability formats — the primary's `MSW1`
//! write-ahead log and `MSC1` checkpoints are the replication *source of
//! truth*, shipped over a TCP wire protocol (`MSR1`, [`protocol`]) rather
//! than a shared filesystem:
//!
//! * [`ReplicationSender`] (primary): a background thread that tails the
//!   WAL files and streams batches + punctuation markers to the standby,
//!   bootstrapping it from the checkpoint chain when its position is not
//!   servable from the log. [`AckMode::Sync`] extends the ingest
//!   back-pressure chain across machines: each connection's reads wait for
//!   the standby's acknowledgement.
//! * [`StandbyServer`] (standby): accepts the stream, persists it into its
//!   *own* WAL + checkpoint directory, and replays it through a live
//!   topology continuously — a warm replica whose state and output digests
//!   match the primary's at every punctuation. [`StandbyServer::promote`]
//!   turns it into a serving primary without a recovery pass.
//!
//! The server crate wires both ends to `morphstream serve --replicate-to`
//! and `morphstream standby`.

#![warn(missing_docs)]

pub mod protocol;
pub mod sender;
pub mod standby;
pub mod stats;

mod link;

pub use protocol::{
    Frame, FrameReader, CHECKPOINT_CHUNK, MAX_REPL_FRAME, REPL_MAGIC, REPL_VERSION,
};
pub use sender::{AckMode, ReplicationSender, SenderOptions};
pub use standby::{
    EngineFactory, Promoted, ReplicaEngine, StandbyEngine, StandbyOptions, StandbyRecovery,
    StandbyServer,
};
pub use stats::ReplicationStats;
