//! Incremental, punctuation-aligned checkpoints of [`StateStore`] state.
//!
//! A checkpoint is a snapshot of every table that was *dirtied* since the
//! previous checkpoint (see `MvTable::take_dirty`), captured at a flush
//! barrier so no in-flight batch straddles the cut. Because the first
//! checkpoint after a fresh start (or after a restore) sees every table
//! dirty — `create_table`/`preallocate`/`seed` all mark — it is naturally a
//! *full* checkpoint, and every full checkpoint supersedes the chain before
//! it. Recovery therefore loads a chain that always begins with a full
//! checkpoint and merges later sections over earlier ones (per-table,
//! later wins), then replays the write-ahead log from `events_applied`.
//!
//! # The `MSC1` on-disk format
//!
//! Checkpoints serialize with the same total-decoder discipline as the
//! `MSB1` wire codec: version-tagged magic, bounded counts, a trailing
//! FNV-1a integrity word, and trailing-byte rejection. Layout (integers
//! little-endian):
//!
//! ```text
//! "MSC1"
//! u64 id                      monotonically increasing checkpoint id
//! u64 events_applied          input events covered by this checkpoint
//! u64 output_digest           FNV-1a state of the output stream so far
//! u8  full                    1 = supersedes all earlier checkpoints
//! u32 store_count
//!   u32 ordinal               store position in TxnEngine::checkpoint order
//!   u32 table_count
//!     u32 name_len, name bytes (UTF-8)
//!     i64 default_value
//!     u8  auto_create
//!     u64 entry_count
//!       (u64 key, i64 value) * entry_count      sorted by key
//! u64 fnv                     FNV-1a over every preceding byte
//! ```
//!
//! Decoding never panics: counts are bounded by the bytes that remain, the
//! checksum is verified before the payload is trusted, and trailing bytes
//! are rejected.

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use morphstream::pipeline::{CheckpointSink, CheckpointSource};
use morphstream_common::hash::Fnv1a;
use morphstream_common::json::{self, JsonObject};
use morphstream_common::protocol::ProtocolError;
use morphstream_common::{Key, TableId, Value};
use morphstream_storage::StateStore;

use crate::error::DurabilityError;
use crate::sync_dir;

/// Version-tagged magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"MSC1";

/// Manifest file name inside the checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Full latest-value snapshot of one table, as carried by a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSnapshot {
    /// Table name (the restore key: ids are reassigned on restart).
    pub name: String,
    /// Default value for newly created keys.
    pub default_value: Value,
    /// Whether keys materialise on first access.
    pub auto_create: bool,
    /// Latest value per key, sorted by key for deterministic bytes.
    pub entries: Vec<(Key, Value)>,
}

/// The dirty tables of one store, identified by its checkpoint ordinal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSection {
    /// Position of the store in the engine's `checkpoint` enumeration. The
    /// topology enumerates deduplicated stores in builder order, which is
    /// deterministic across restarts of the same topology.
    pub ordinal: u32,
    /// Snapshots of the tables dirtied since the previous checkpoint.
    pub tables: Vec<TableSnapshot>,
}

/// One checkpoint: a consistent cut of engine state at a flush barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonically increasing id (also orders the files on disk).
    pub id: u64,
    /// Number of input events the snapshot covers; WAL replay resumes here.
    pub events_applied: u64,
    /// FNV-1a state of the output digest at the cut (resumed on restore).
    pub output_digest: u64,
    /// True when every table of every store is included.
    pub full: bool,
    /// Per-store sections, in checkpoint-ordinal order.
    pub stores: Vec<StoreSection>,
}

impl Checkpoint {
    /// Serialize to the `MSC1` binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&self.events_applied.to_le_bytes());
        out.extend_from_slice(&self.output_digest.to_le_bytes());
        out.push(self.full as u8);
        out.extend_from_slice(&(self.stores.len() as u32).to_le_bytes());
        for store in &self.stores {
            out.extend_from_slice(&store.ordinal.to_le_bytes());
            out.extend_from_slice(&(store.tables.len() as u32).to_le_bytes());
            for table in &store.tables {
                out.extend_from_slice(&(table.name.len() as u32).to_le_bytes());
                out.extend_from_slice(table.name.as_bytes());
                out.extend_from_slice(&table.default_value.to_le_bytes());
                out.push(table.auto_create as u8);
                out.extend_from_slice(&(table.entries.len() as u64).to_le_bytes());
                for (key, value) in &table.entries {
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
        }
        let mut fnv = Fnv1a::new();
        fnv.update(&out);
        out.extend_from_slice(&fnv.finish().to_le_bytes());
        out
    }

    /// Decode an `MSC1` image. Total: corrupt or truncated input yields an
    /// error, never a panic, and trailing bytes are rejected.
    pub fn decode(bytes: &[u8]) -> Result<Self, ProtocolError> {
        if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
            return Err(ProtocolError::Truncated);
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(ProtocolError::Malformed(
                "bad checkpoint magic (expected MSC1)".into(),
            ));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
        let mut fnv = Fnv1a::new();
        fnv.update(body);
        if fnv.finish() != stored {
            return Err(ProtocolError::Malformed(
                "checkpoint checksum mismatch".into(),
            ));
        }
        let mut r = ByteReader::new(&body[4..]);
        let id = r.u64()?;
        let events_applied = r.u64()?;
        let output_digest = r.u64()?;
        let full = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        let raw_stores = r.u32()? as usize;
        let store_count = r.bounded_count(raw_stores, 8, "stores")?;
        let mut stores = Vec::with_capacity(store_count);
        for _ in 0..store_count {
            let ordinal = r.u32()?;
            let raw_tables = r.u32()? as usize;
            let table_count = r.bounded_count(raw_tables, 21, "tables")?;
            let mut tables = Vec::with_capacity(table_count);
            for _ in 0..table_count {
                let raw_name_len = r.u32()? as usize;
                let name_len = r.bounded_count(raw_name_len, 1, "table name")?;
                let name = String::from_utf8(r.bytes(name_len)?.to_vec())
                    .map_err(|_| ProtocolError::Malformed("table name is not UTF-8".into()))?;
                let default_value = r.i64()?;
                let auto_create = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(ProtocolError::UnknownTag(other)),
                };
                let raw_entries = r.u64()? as usize;
                let entry_count = r.bounded_count(raw_entries, 16, "entries")?;
                let mut entries = Vec::with_capacity(entry_count);
                for _ in 0..entry_count {
                    let key = r.u64()?;
                    let value = r.i64()?;
                    entries.push((key, value));
                }
                tables.push(TableSnapshot {
                    name,
                    default_value,
                    auto_create,
                    entries,
                });
            }
            stores.push(StoreSection { ordinal, tables });
        }
        r.finish()?;
        Ok(Self {
            id,
            events_applied,
            output_digest,
            full,
            stores,
        })
    }
}

/// Cursor over checkpoint payload bytes with totality guarantees (bounds
/// checks, bounded counts, trailing-byte rejection) — the same discipline
/// as the wire codec's `PayloadReader`, plus raw-byte access for names.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(ProtocolError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().expect("8")))
    }

    /// Reject counts that could not possibly fit in the remaining bytes
    /// (each element needs at least `min_element_bytes`), so corrupt counts
    /// cannot trigger huge allocations.
    fn bounded_count(
        &self,
        count: usize,
        min_element_bytes: usize,
        what: &str,
    ) -> Result<usize, ProtocolError> {
        let remaining = self.bytes.len() - self.pos;
        if count.saturating_mul(min_element_bytes) > remaining {
            return Err(ProtocolError::Malformed(format!(
                "{what} count {count} exceeds remaining payload"
            )));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed(format!(
                "{} trailing bytes after checkpoint payload",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// [`CheckpointSink`] that captures the dirty tables of every store an
/// engine exposes, then builds a [`Checkpoint`] from them.
///
/// `full` starts true and survives only if every store reported all of its
/// tables dirty — i.e. the snapshot covers the complete state.
#[derive(Debug, Default)]
pub struct CheckpointBuilder {
    sections: Vec<StoreSection>,
    taken: Vec<(u32, Vec<TableId>)>,
    full: bool,
}

impl CheckpointBuilder {
    /// Empty builder; pass to `TxnEngine::checkpoint`.
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
            taken: Vec::new(),
            full: true,
        }
    }

    /// True when every table of every store seen so far was dirty.
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Number of table snapshots captured.
    pub fn table_count(&self) -> usize {
        self.sections.iter().map(|s| s.tables.len()).sum()
    }

    /// The dirty table ids this builder consumed, per store ordinal. The
    /// engine's `checkpoint` *takes* the dirty flags, so if persisting the
    /// built checkpoint fails these ids must be handed to a [`RedirtySink`]
    /// — otherwise the tables silently drop out of every later incremental
    /// checkpoint.
    pub fn taken_dirty(&self) -> Vec<(u32, Vec<TableId>)> {
        self.taken.clone()
    }

    /// Finish into a [`Checkpoint`] carrying the given cut metadata.
    pub fn build(self, id: u64, events_applied: u64, output_digest: u64) -> Checkpoint {
        Checkpoint {
            id,
            events_applied,
            output_digest,
            full: self.full,
            stores: self.sections,
        }
    }
}

impl CheckpointSink for CheckpointBuilder {
    fn store(&mut self, ordinal: usize, store: &StateStore, dirty: Vec<TableId>) {
        self.full = self.full && dirty.len() == store.table_count();
        self.taken.push((ordinal as u32, dirty.clone()));
        let mut tables = Vec::with_capacity(dirty.len());
        for id in dirty {
            let Ok(table) = store.table(id) else { continue };
            let mut entries: Vec<(Key, Value)> = table.snapshot_latest().into_iter().collect();
            entries.sort_unstable_by_key(|(key, _)| *key);
            tables.push(TableSnapshot {
                name: table.name().to_string(),
                default_value: table.default_value(),
                auto_create: table.is_auto_create(),
                entries,
            });
        }
        self.sections.push(StoreSection {
            ordinal: ordinal as u32,
            tables,
        });
    }
}

/// [`CheckpointSink`] that *returns* dirty flags to their stores after a
/// checkpoint failed to persist. Built from the failed builder's
/// [`CheckpointBuilder::taken_dirty`] and passed to `TxnEngine::checkpoint`
/// again: each store gets back both the ids the failed attempt consumed and
/// whatever this enumeration itself just took, so the next successful
/// checkpoint re-captures every table the failed one covered.
#[derive(Debug)]
pub struct RedirtySink {
    sections: Vec<(u32, Vec<TableId>)>,
}

impl RedirtySink {
    /// Wrap the dirty ids a failed checkpoint consumed.
    pub fn new(sections: Vec<(u32, Vec<TableId>)>) -> Self {
        Self { sections }
    }
}

impl CheckpointSink for RedirtySink {
    fn store(&mut self, ordinal: usize, store: &StateStore, dirty: Vec<TableId>) {
        // This enumeration took fresh dirty flags of its own; restore those
        // alongside the ids from the failed attempt.
        store.mark_tables_dirty(&dirty);
        for (o, ids) in &self.sections {
            if *o as usize == ordinal {
                store.mark_tables_dirty(ids);
            }
        }
    }
}

/// [`CheckpointSource`] built by merging a checkpoint chain: per
/// `(ordinal, table name)`, the section from the *latest* checkpoint wins
/// (each section carries the table's complete contents at its cut).
#[derive(Debug, Default)]
pub struct ChainRestore {
    stores: HashMap<u32, BTreeMap<String, TableSnapshot>>,
}

impl ChainRestore {
    /// Empty restore source.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge one checkpoint over the chain accumulated so far. Apply in
    /// id order; later tables replace earlier ones wholesale.
    pub fn apply(&mut self, checkpoint: Checkpoint) {
        for section in checkpoint.stores {
            let tables = self.stores.entry(section.ordinal).or_default();
            for table in section.tables {
                tables.insert(table.name.clone(), table);
            }
        }
    }

    /// Number of distinct tables the merged chain restores.
    pub fn table_count(&self) -> usize {
        self.stores.values().map(|t| t.len()).sum()
    }
}

impl CheckpointSource for ChainRestore {
    fn restore(&mut self, ordinal: usize, store: &StateStore) {
        let Some(tables) = self.stores.get(&(ordinal as u32)) else {
            return;
        };
        for snap in tables.values() {
            // Idempotent: returns the existing id when the application
            // already created the table during construction.
            let id = store.create_table(&snap.name, snap.default_value, snap.auto_create);
            for (key, value) in &snap.entries {
                let _ = store.seed(id, *key, *value);
            }
        }
    }
}

/// One line of the checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Checkpoint id; equals the id inside the referenced file.
    pub id: u64,
    /// File name (relative to the checkpoint directory).
    pub file: String,
    /// Whether the checkpoint supersedes everything before it.
    pub full: bool,
    /// Input events the checkpoint covers.
    pub events_applied: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// True when the entry was superseded by a later full checkpoint but is
    /// kept as bounded history under a retention policy. Retained entries
    /// are never part of the live chain that recovery loads.
    pub retained: bool,
}

impl ManifestEntry {
    fn to_json(&self) -> String {
        JsonObject::new()
            .unsigned("id", self.id)
            .string("file", &self.file)
            .boolean("full", self.full)
            .unsigned("events_applied", self.events_applied)
            .unsigned("bytes", self.bytes)
            .boolean("retained", self.retained)
            .build()
    }

    fn from_json(line: &str) -> Result<Self, DurabilityError> {
        let fields = json::parse_object(line)
            .map_err(|e| DurabilityError::corrupt(format!("manifest line: {e}")))?;
        let unsigned = |key: &str| -> Result<u64, DurabilityError> {
            fields
                .get(key)
                .and_then(json::JsonValue::as_u64)
                .ok_or_else(|| DurabilityError::corrupt(format!("manifest field {key}")))
        };
        let file = fields
            .get("file")
            .and_then(json::JsonValue::as_str)
            .ok_or_else(|| DurabilityError::corrupt("manifest field file"))?
            .to_string();
        if file.contains(['/', '\\']) || file.contains("..") {
            return Err(DurabilityError::corrupt("manifest file escapes directory"));
        }
        Ok(Self {
            id: unsigned("id")?,
            file,
            full: fields.get("full") == Some(&json::JsonValue::Bool(true)),
            events_applied: unsigned("events_applied")?,
            bytes: unsigned("bytes")?,
            retained: fields.get("retained") == Some(&json::JsonValue::Bool(true)),
        })
    }
}

/// Result of persisting one checkpoint.
#[derive(Debug, Clone)]
pub struct SavedCheckpoint {
    /// Encoded size in bytes (what `checkpoint_bytes` counters report).
    pub bytes: u64,
    /// Path of the published file.
    pub path: PathBuf,
}

/// State recovered from a checkpoint chain, ready to seed an engine.
pub struct LoadedChain {
    /// Merged restore source; pass to `TxnEngine::restore`.
    pub restore: ChainRestore,
    /// Resume WAL replay at this event index.
    pub events_applied: u64,
    /// Resume the output digest from this FNV-1a state.
    pub output_digest: u64,
    /// Id of the newest checkpoint in the chain.
    pub last_id: u64,
}

/// Directory of checkpoint files plus the manifest that orders them.
///
/// Publication is atomic: the checkpoint is written to a temp file, fsynced,
/// renamed into place, and the directory fsynced — only then is the manifest
/// rewritten (also via temp + rename), and only after *that* are any
/// superseded checkpoint files deleted. A crash at any point leaves either
/// the old manifest (plus an orphan new file) or the new manifest (plus
/// stale old files); recovery ignores files the manifest does not
/// reference, so both are benign.
pub struct CheckpointStore {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
    /// Superseded history kept under the retention policy, oldest first.
    retained: Vec<ManifestEntry>,
    /// How many superseded checkpoints to keep when a full checkpoint
    /// collapses the chain; 0 deletes them immediately (the default).
    retain: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory and read the
    /// manifest. A missing manifest means a fresh store. Superseded
    /// checkpoints are deleted as soon as they are unreferenced; see
    /// [`CheckpointStore::open_with_retention`] to keep bounded history.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, DurabilityError> {
        Self::open_with_retention(dir, 0)
    }

    /// Open like [`CheckpointStore::open`], but keep up to `retain`
    /// superseded checkpoints as history: when a full checkpoint collapses
    /// the chain, the displaced entries are marked `retained` in the
    /// manifest instead of deleted, and only entries beyond the bound are
    /// pruned (always after the new manifest is published).
    pub fn open_with_retention(
        dir: impl Into<PathBuf>,
        retain: usize,
    ) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST_NAME);
        let mut entries = Vec::new();
        let mut retained = Vec::new();
        match fs::read_to_string(&manifest) {
            Ok(text) => {
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let entry = ManifestEntry::from_json(line)?;
                    if entry.retained {
                        retained.push(entry);
                    } else {
                        entries.push(entry);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Ok(Self {
            dir,
            entries,
            retained,
            retain,
        })
    }

    /// Id the next checkpoint should carry (one past the newest on disk).
    pub fn next_id(&self) -> u64 {
        self.entries
            .last()
            .or(self.retained.last())
            .map(|e| e.id + 1)
            .unwrap_or(0)
    }

    /// Number of checkpoints in the live chain.
    pub fn chain_len(&self) -> usize {
        self.entries.len()
    }

    /// Manifest entries of the live chain, oldest first. Retained history
    /// is not part of the chain; see [`CheckpointStore::retained_entries`].
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Superseded checkpoints kept as history, oldest first.
    pub fn retained_entries(&self) -> &[ManifestEntry] {
        &self.retained
    }

    /// Directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persist a checkpoint and publish it in the manifest. A *full*
    /// checkpoint supersedes the chain: the manifest collapses to the single
    /// new entry, and only once that manifest is durably published are the
    /// superseded checkpoint files deleted — a crash in between leaves stale
    /// files no manifest references, which recovery ignores. The reverse
    /// order would let a crash strand a manifest pointing at deleted files,
    /// bricking startup.
    pub fn save(&mut self, checkpoint: &Checkpoint) -> Result<SavedCheckpoint, DurabilityError> {
        let encoded = checkpoint.encode();
        let file = format!("chk-{:08}.msc", checkpoint.id);
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&encoded)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        sync_dir(&self.dir)?;

        let entry = ManifestEntry {
            id: checkpoint.id,
            file,
            full: checkpoint.full,
            events_applied: checkpoint.events_applied,
            bytes: encoded.len() as u64,
            retained: false,
        };
        let mut pruned: Vec<ManifestEntry> = Vec::new();
        if checkpoint.full {
            let superseded = self.entries.drain(..);
            if self.retain == 0 {
                pruned.extend(superseded);
            } else {
                self.retained.extend(superseded.map(|mut e| {
                    e.retained = true;
                    e
                }));
                let over = self.retained.len().saturating_sub(self.retain);
                pruned.extend(self.retained.drain(..over));
            }
        }
        self.entries.push(entry);
        self.rewrite_manifest()?;
        // Only now — the new manifest no longer references these files.
        for old in &pruned {
            let _ = fs::remove_file(self.dir.join(&old.file));
        }
        Ok(SavedCheckpoint {
            bytes: encoded.len() as u64,
            path,
        })
    }

    fn rewrite_manifest(&self) -> Result<(), DurabilityError> {
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            for entry in self.retained.iter().chain(&self.entries) {
                writeln!(f, "{}", entry.to_json())?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Load and merge the full checkpoint chain. Returns `None` when no
    /// checkpoint exists. A manifest that references a missing or corrupt
    /// file is a hard error: publication order guarantees referenced files
    /// are complete, so damage here means the data is actually lost.
    pub fn load_chain(&self) -> Result<Option<LoadedChain>, DurabilityError> {
        let Some(last) = self.entries.last() else {
            return Ok(None);
        };
        if !self.entries[0].full {
            return Err(DurabilityError::corrupt(
                "checkpoint chain does not begin with a full checkpoint",
            ));
        }
        let mut restore = ChainRestore::new();
        let mut output_digest = 0;
        for entry in &self.entries {
            let mut bytes = Vec::new();
            File::open(self.dir.join(&entry.file))?.read_to_end(&mut bytes)?;
            let checkpoint = Checkpoint::decode(&bytes)
                .map_err(|e| DurabilityError::corrupt(format!("{}: {e}", entry.file)))?;
            if checkpoint.id != entry.id {
                return Err(DurabilityError::corrupt(format!(
                    "{}: id {} does not match manifest id {}",
                    entry.file, checkpoint.id, entry.id
                )));
            }
            output_digest = checkpoint.output_digest;
            restore.apply(checkpoint);
        }
        Ok(Some(LoadedChain {
            restore,
            events_applied: last.events_applied,
            output_digest,
            last_id: last.id,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use morphstream::udfs;
    use morphstream::TxnEngine;
    use morphstream::{EngineConfig, MorphStream, StreamApp, TxnBuilder};

    struct Counter {
        table: TableId,
    }

    impl StreamApp for Counter {
        type Event = u64;
        type Output = bool;

        fn state_access(&self, key: &u64, txn: &mut TxnBuilder) {
            txn.write(self.table, *key, udfs::add_delta(1));
        }

        fn post_process(&self, _key: &u64, outcome: &morphstream::TxnOutcome) -> bool {
            outcome.committed
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            id: 7,
            events_applied: 123,
            output_digest: 0xdead_beef_cafe_f00d,
            full: true,
            stores: vec![StoreSection {
                ordinal: 0,
                tables: vec![TableSnapshot {
                    name: "accounts".into(),
                    default_value: 100,
                    auto_create: false,
                    entries: vec![(0, 17), (3, -2), (9, 100)],
                }],
            }],
        }
    }

    #[test]
    fn checkpoint_round_trips_through_msc1() {
        let chk = sample_checkpoint();
        let bytes = chk.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), chk);
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let bytes = sample_checkpoint().encode();
        // Truncation at every prefix length.
        for len in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..len]).is_err());
        }
        // Any single bit flip trips the checksum (or an earlier check).
        for i in 0..bytes.len() {
            let mut dented = bytes.clone();
            dented[i] ^= 1;
            assert!(Checkpoint::decode(&dented).is_err(), "bit flip at {i}");
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Checkpoint::decode(&extended).is_err());
    }

    #[test]
    fn incremental_checkpoints_skip_clean_tables() {
        let store = StateStore::new();
        let hot = store.create_table("hot", 0, true);
        let cold: Vec<TableId> = (0..7)
            .map(|i| store.create_table(format!("cold{i}"), 0, true))
            .collect();
        for key in 0..64 {
            store.seed(hot, key, 1).unwrap();
            for table in &cold {
                store.seed(*table, key, 1).unwrap();
            }
        }

        // First checkpoint sees both tables dirty: full.
        let mut first = CheckpointBuilder::new();
        CheckpointSink::store(&mut first, 0, &store, store.take_dirty_tables());
        assert!(first.is_full());
        let full_bytes = first.build(0, 0, 0).encode().len();

        // Touch only `hot`; the next checkpoint carries one table and is
        // dramatically smaller than the full snapshot.
        store.seed(hot, 5, 42).unwrap();
        let mut second = CheckpointBuilder::new();
        CheckpointSink::store(&mut second, 0, &store, store.take_dirty_tables());
        assert!(!second.is_full());
        let incr = second.build(1, 0, 0);
        assert_eq!(incr.stores[0].tables.len(), 1);
        assert_eq!(incr.stores[0].tables[0].name, "hot");
        let incr_bytes = incr.encode().len();
        assert!(
            incr_bytes * 4 < full_bytes,
            "incremental {incr_bytes}B should be well under full {full_bytes}B"
        );
    }

    #[test]
    fn chain_restore_merges_later_sections_over_earlier() {
        let mut chain = ChainRestore::new();
        chain.apply(sample_checkpoint());
        let mut newer = sample_checkpoint();
        newer.id = 8;
        newer.full = false;
        newer.stores[0].tables[0].entries = vec![(0, 99), (3, -2), (9, 100)];
        chain.apply(newer);

        let store = StateStore::new();
        let source: &mut dyn CheckpointSource = &mut chain;
        source.restore(0, &store);
        let id = store.table_id("accounts").unwrap();
        assert_eq!(store.read_latest(id, 0).unwrap(), 99);
        assert_eq!(store.read_latest(id, 3).unwrap(), -2);
    }

    #[test]
    fn store_publishes_atomically_and_supersedes_on_full() {
        let dir = test_dir("chk-store");
        let mut cs = CheckpointStore::open(&dir).unwrap();
        assert_eq!(cs.next_id(), 0);

        let mut full = sample_checkpoint();
        full.id = 0;
        cs.save(&full).unwrap();
        let mut incr = sample_checkpoint();
        incr.id = 1;
        incr.full = false;
        incr.events_applied = 200;
        cs.save(&incr).unwrap();
        assert_eq!(cs.chain_len(), 2);

        // Reopen: the chain survives and loads.
        let cs2 = CheckpointStore::open(&dir).unwrap();
        assert_eq!(cs2.next_id(), 2);
        let loaded = cs2.load_chain().unwrap().unwrap();
        assert_eq!(loaded.events_applied, 200);
        assert_eq!(loaded.last_id, 1);

        // A new full checkpoint collapses the chain and deletes old files.
        let mut supersede = sample_checkpoint();
        supersede.id = 2;
        supersede.events_applied = 300;
        let mut cs3 = CheckpointStore::open(&dir).unwrap();
        cs3.save(&supersede).unwrap();
        assert_eq!(cs3.chain_len(), 1);
        assert!(!dir.join("chk-00000000.msc").exists());
        assert!(dir.join("chk-00000002.msc").exists());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_files_outside_the_manifest_are_ignored() {
        // A crash after the manifest is published but before superseded
        // files are deleted leaves stale .msc files; they must not affect
        // open or load_chain.
        let dir = test_dir("chk-stale");
        let mut cs = CheckpointStore::open(&dir).unwrap();
        let mut full = sample_checkpoint();
        full.id = 0;
        cs.save(&full).unwrap();
        let mut stale = sample_checkpoint();
        stale.id = 99;
        fs::write(dir.join("chk-00000099.msc"), stale.encode()).unwrap();

        let cs2 = CheckpointStore::open(&dir).unwrap();
        assert_eq!(cs2.chain_len(), 1);
        let loaded = cs2.load_chain().unwrap().unwrap();
        assert_eq!(loaded.last_id, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_bounded_history_and_prunes_after_publish() {
        let dir = test_dir("chk-retain");
        // Every file the on-disk manifest references must exist — checked
        // after each save, which is exactly the "prune only after the new
        // manifest is published" invariant made observable.
        let manifest_entries = |dir: &std::path::Path| -> Vec<ManifestEntry> {
            fs::read_to_string(dir.join(MANIFEST_NAME))
                .unwrap()
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| ManifestEntry::from_json(l).unwrap())
                .collect()
        };
        let assert_consistent = |dir: &std::path::Path| {
            for entry in manifest_entries(dir) {
                assert!(
                    dir.join(&entry.file).exists(),
                    "manifest references missing file {}",
                    entry.file
                );
            }
        };

        let mut cs = CheckpointStore::open_with_retention(&dir, 1).unwrap();
        for id in 0..2u64 {
            let mut chk = sample_checkpoint();
            chk.id = id;
            chk.events_applied = 100 * (id + 1);
            cs.save(&chk).unwrap();
            assert_consistent(&dir);
        }
        // The superseded full checkpoint is retained, not deleted.
        assert_eq!(cs.chain_len(), 1);
        assert_eq!(cs.retained_entries().len(), 1);
        assert_eq!(cs.retained_entries()[0].id, 0);
        assert!(dir.join("chk-00000000.msc").exists());
        // Recovery still loads only the live chain.
        assert_eq!(cs.load_chain().unwrap().unwrap().last_id, 1);

        // A third full checkpoint overflows the bound: the oldest retained
        // file is pruned, the newer one kept.
        let mut chk = sample_checkpoint();
        chk.id = 2;
        chk.events_applied = 300;
        cs.save(&chk).unwrap();
        assert_consistent(&dir);
        assert!(!dir.join("chk-00000000.msc").exists());
        assert!(dir.join("chk-00000001.msc").exists());
        let listed = manifest_entries(&dir);
        assert!(
            listed.iter().all(|e| e.id != 0),
            "pruned entry still listed"
        );
        assert!(listed.iter().any(|e| e.id == 1 && e.retained));

        // Reopen: retained history and id space survive.
        let cs2 = CheckpointStore::open_with_retention(&dir, 1).unwrap();
        assert_eq!(cs2.next_id(), 3);
        assert_eq!(cs2.retained_entries().len(), 1);
        assert_eq!(cs2.load_chain().unwrap().unwrap().last_id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn redirty_sink_returns_consumed_dirty_flags() {
        let store = StateStore::new();
        let a = store.create_table("a", 0, true);
        let b = store.create_table("b", 0, true);
        store.seed(a, 1, 1).unwrap();
        store.seed(b, 1, 1).unwrap();

        // A checkpoint attempt consumes the flags...
        let mut builder = CheckpointBuilder::new();
        CheckpointSink::store(&mut builder, 0, &store, store.take_dirty_tables());
        let taken = builder.taken_dirty();
        assert_eq!(taken, vec![(0, vec![a, b])]);
        assert!(store.take_dirty_tables().is_empty());

        // ...persisting fails; the redirty pass (with a fresh write landing
        // in between) restores both the failed attempt's ids and its own.
        store.seed(a, 2, 2).unwrap();
        let mut sink = RedirtySink::new(taken);
        CheckpointSink::store(&mut sink, 0, &store, store.take_dirty_tables());
        assert_eq!(store.take_dirty_tables(), vec![a, b]);
    }

    #[test]
    fn engine_checkpoint_restore_round_trip_preserves_state_digest() {
        let store = StateStore::new();
        let table = store.create_table("counts", 0, true);
        let app = Counter { table };
        let mut engine = MorphStream::new(app, store.clone(), EngineConfig::with_threads(2));
        engine.process(vec![1, 2, 1, 3, 1, 2]);

        let mut builder = CheckpointBuilder::new();
        TxnEngine::checkpoint(&mut engine, &mut builder);
        let chk = builder.build(0, 6, 0);
        let digest_before = store.state_digest();

        // Fresh store + engine, restore, compare digests.
        let store2 = StateStore::new();
        let table2 = store2.create_table("counts", 0, true);
        let app2 = Counter { table: table2 };
        let mut engine2 = MorphStream::new(app2, store2.clone(), EngineConfig::with_threads(2));
        let mut chain = ChainRestore::new();
        chain.apply(chk);
        TxnEngine::restore(&mut engine2, &mut chain);
        assert_eq!(store2.state_digest(), digest_before);
    }
}
