//! # Durability: incremental checkpoints + write-ahead input log
//!
//! Crash recovery for MorphStream engines, built from two halves that meet
//! at punctuation boundaries:
//!
//! * [`checkpoint`] — incremental snapshots of [`StateStore`] state. Each
//!   checkpoint captures only the tables dirtied since the previous one
//!   (per-table dirty bits maintained by the storage layer), serialized in
//!   the versioned `MSC1` binary format and published atomically (temp
//!   file + rename + directory fsync). A checkpoint that happens to cover
//!   every table is *full* and supersedes the chain before it.
//! * [`wal`] — a write-ahead log of input events, appended *before* events
//!   reach `Pipeline::push`, framed into `MSW1` segments with a CRC per
//!   record and a configurable [`FsyncPolicy`]. Segments rotate at
//!   checkpoints and are garbage-collected once a checkpoint covers them.
//!
//! Recovery is the composition: load the latest checkpoint chain
//! ([`CheckpointStore::load_chain`]), seed fresh stores through the
//! engine's `restore` hook, resume the output digest from the saved FNV
//! state, then replay the WAL tail (events with index ≥ the checkpoint's
//! `events_applied`) through the same pipeline. Because punctuation
//! placement does not affect final state or outputs (timestamps are
//! assigned in ingestion order and MVCC resolves by timestamp), a replayed
//! run converges to digest-identical state even when the crash hit
//! mid-batch.
//!
//! The engine side of the contract is `TxnEngine::checkpoint` /
//! `TxnEngine::restore` (see `morphstream::pipeline`), implemented by both
//! the single-operator engine and whole topologies; this crate provides
//! the [`CheckpointSink`]/[`CheckpointSource`] implementations that bridge
//! those hooks to disk.
//!
//! [`StateStore`]: morphstream_storage::StateStore
//! [`CheckpointSink`]: morphstream::pipeline::CheckpointSink
//! [`CheckpointSource`]: morphstream::pipeline::CheckpointSource

#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod wal;

pub use checkpoint::{
    ChainRestore, Checkpoint, CheckpointBuilder, CheckpointStore, LoadedChain, ManifestEntry,
    RedirtySink, SavedCheckpoint, StoreSection, TableSnapshot, CHECKPOINT_MAGIC, MANIFEST_NAME,
};
pub use error::DurabilityError;
pub use wal::{
    decode_segment, read_wal, repair_torn_tail, wal_start_index, DecodedSegment, FsyncPolicy,
    TailError, TailItem, WalLog, WalState, WalTailer, WAL_MAGIC,
};

/// fsync a directory so just-created or just-renamed entries survive power
/// loss (the file's own fsync does not cover its directory entry).
pub(crate) fn sync_dir(dir: &std::path::Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_data()
}

#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-dur-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
