//! Failure modes of the durability layer.

use std::fmt;
use std::io;

/// Why a durability operation failed: either the disk said no, or the bytes
/// on disk are not what we wrote (corruption, torn writes in sealed files,
/// version mismatches).
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The persisted data is damaged or inconsistent.
    Corrupt(String),
}

impl DurabilityError {
    /// Shorthand for a corruption error.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        Self::Corrupt(reason.into())
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "durability I/O error: {e}"),
            Self::Corrupt(reason) => write!(f, "durable state is corrupt: {reason}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}
