//! Write-ahead input log: every event is appended (and optionally fsynced)
//! *before* it reaches `Pipeline::push`, so the log is always a superset of
//! what the engine has seen, in identical order. Recovery replays the tail
//! of the log — events with index ≥ the latest checkpoint's
//! `events_applied` — through the same pipeline.
//!
//! # The `MSW1` segment format
//!
//! The log is a directory of segment files named `seg-<first_index>.msw`.
//! Each segment starts with a header and carries a sequence of records:
//!
//! ```text
//! "MSW1"  u64 first_index          global index of the first event record
//! record := u8 tag                 1 = event, 2 = punctuation marker
//!           u32 len                payload length (bounded)
//!           payload                tag 1: the event's MSB1 wire encoding
//!                                  tag 2: u64 events appended so far
//!           u64 fnv                FNV-1a over [tag, len bytes, payload]
//! ```
//!
//! A crash can tear the record being written when power fails, so the
//! *last* segment is decoded leniently: the valid prefix is kept and the
//! torn tail dropped. Damage in any earlier segment (which was sealed by a
//! later rotation) is a hard error — that data is really gone. Decoding is
//! total either way: corrupt bytes produce errors or a clean torn-prefix,
//! never a panic. Recovery must then call [`repair_torn_tail`] so the torn
//! segment is truncated to its valid prefix on disk: once the server
//! appends new events a newer segment exists, the torn one counts as
//! sealed, and un-repaired damage would turn into a hard error on the
//! *next* restart.
//!
//! Segments rotate at checkpoints; once a checkpoint covers index `n`,
//! every segment whose successor starts at or below `n` is obsolete and
//! [`WalLog::truncate_before`] deletes it.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use morphstream_common::hash::Fnv1a;
use morphstream_common::protocol::{ProtocolError, WireCodec, MAX_FRAME_LEN};

use crate::error::DurabilityError;

/// Version-tagged magic prefix of a WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"MSW1";

const REC_EVENT: u8 = 1;
const REC_PUNCTUATION: u8 = 2;

/// When the log fsyncs, trading durability against append latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every record: no acknowledged event is ever lost, at the
    /// cost of one disk round-trip per event.
    Always,
    /// fsync at punctuation markers and checkpoints: a crash can lose at
    /// most the current punctuation interval of acknowledged events.
    #[default]
    Interval,
    /// Never fsync explicitly (the OS flushes when it pleases): fastest,
    /// loses whatever the page cache held. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Parse a policy name as accepted by `--fsync`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "always" => Some(Self::Always),
            "interval" => Some(Self::Interval),
            "never" => Some(Self::Never),
            _ => None,
        }
    }

    /// Canonical name (inverse of [`FsyncPolicy::from_name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Interval => "interval",
            Self::Never => "never",
        }
    }
}

/// Append half of the write-ahead log.
pub struct WalLog {
    dir: PathBuf,
    policy: FsyncPolicy,
    /// Open segment, if any; a new one is started lazily on first append
    /// after open or rotation.
    current: Option<File>,
    /// Global index of the next event to append.
    next_index: u64,
    records_appended: u64,
    bytes_appended: u64,
    scratch: Vec<u8>,
}

impl WalLog {
    /// Open the log directory (creating it if needed). `next_index` is the
    /// global index the next appended event will carry — 0 on a fresh
    /// start, or the recovered event count on restart.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FsyncPolicy,
        next_index: u64,
    ) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            policy,
            current: None,
            next_index,
            records_appended: 0,
            bytes_appended: 0,
            scratch: Vec::new(),
        })
    }

    /// Global index of the next event to append (= events covered so far).
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Records appended through this handle (events + punctuation markers).
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }

    /// Bytes appended through this handle, including framing.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> u64 {
        list_segments(&self.dir)
            .map(|s| s.len() as u64)
            .unwrap_or(0)
    }

    fn ensure_segment(&mut self) -> Result<&mut File, DurabilityError> {
        if self.current.is_none() {
            let path = self.dir.join(segment_name(self.next_index));
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            file.write_all(&WAL_MAGIC)?;
            file.write_all(&self.next_index.to_le_bytes())?;
            // Make the directory entry durable too: fsyncing record bytes is
            // worthless if the file itself vanishes with the dir on power
            // loss. Once per segment, so cheap under any policy.
            if self.policy != FsyncPolicy::Never {
                crate::sync_dir(&self.dir)?;
            }
            self.bytes_appended += (WAL_MAGIC.len() + 8) as u64;
            self.current = Some(file);
        }
        Ok(self.current.as_mut().expect("segment just ensured"))
    }

    fn append_record(&mut self, tag: u8, payload_len: usize) -> Result<(), DurabilityError> {
        debug_assert_eq!(self.scratch.len(), payload_len);
        if payload_len > MAX_FRAME_LEN {
            return Err(DurabilityError::corrupt(format!(
                "WAL record of {payload_len} bytes exceeds the frame limit"
            )));
        }
        let len = (payload_len as u32).to_le_bytes();
        let mut fnv = Fnv1a::new();
        fnv.update(&[tag]);
        fnv.update(&len);
        fnv.update(&self.scratch);
        let checksum = fnv.finish().to_le_bytes();

        let payload = std::mem::take(&mut self.scratch);
        let file = self.ensure_segment()?;
        file.write_all(&[tag])?;
        file.write_all(&len)?;
        file.write_all(&payload)?;
        file.write_all(&checksum)?;
        self.scratch = payload;
        self.records_appended += 1;
        self.bytes_appended += (1 + 4 + payload_len + 8) as u64;
        Ok(())
    }

    /// Append one event; returns the global index it was assigned. With
    /// [`FsyncPolicy::Always`] the record is durable on return.
    pub fn append_event<T: WireCodec>(&mut self, event: &T) -> Result<u64, DurabilityError> {
        self.scratch.clear();
        event.encode_binary(&mut self.scratch);
        let len = self.scratch.len();
        self.append_record(REC_EVENT, len)?;
        let index = self.next_index;
        self.next_index += 1;
        if self.policy == FsyncPolicy::Always {
            self.sync()?;
        }
        Ok(index)
    }

    /// Append a punctuation marker framing the events appended so far. With
    /// [`FsyncPolicy::Interval`] this is also the fsync point.
    pub fn mark_punctuation(&mut self) -> Result<(), DurabilityError> {
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&self.next_index.to_le_bytes());
        self.append_record(REC_PUNCTUATION, 8)?;
        if self.policy != FsyncPolicy::Never {
            self.sync()?;
        }
        Ok(())
    }

    /// fsync the open segment (no-op when nothing is open).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        if let Some(file) = self.current.as_mut() {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Seal the current segment; the next append starts a fresh one. Called
    /// at checkpoints so [`WalLog::truncate_before`] can delete whole
    /// segments that a checkpoint has made obsolete.
    pub fn rotate(&mut self) -> Result<(), DurabilityError> {
        self.sync()?;
        self.current = None;
        Ok(())
    }

    /// Delete segments fully covered by a checkpoint at `events_applied`: a
    /// segment is obsolete when the *next* segment starts at or below that
    /// index. The newest segment is never deleted.
    pub fn truncate_before(&mut self, events_applied: u64) -> Result<u64, DurabilityError> {
        let segments = list_segments(&self.dir)?;
        let mut deleted = 0;
        for pair in segments.windows(2) {
            if pair[1].0 <= events_applied {
                fs::remove_file(&pair[0].1)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

/// One decoded segment: the valid record prefix plus whether a torn or
/// corrupt tail was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSegment<T> {
    /// Global index of the first event record.
    pub first_index: u64,
    /// Events in append order.
    pub events: Vec<T>,
    /// Punctuation markers: the `next_index` value at each marker.
    pub punctuations: Vec<u64>,
    /// True when trailing bytes after the last valid record were dropped.
    pub torn: bool,
    /// Byte length of the valid prefix (header plus every valid record);
    /// when `torn`, the damage starts at this offset.
    pub valid_len: usize,
}

/// Decode one segment image. Total: a malformed header is an error; any
/// damage after it truncates to the valid record prefix with `torn` set
/// (nothing after a bad record can be trusted). Never panics.
pub fn decode_segment<T: WireCodec>(bytes: &[u8]) -> Result<DecodedSegment<T>, ProtocolError> {
    if bytes.len() < WAL_MAGIC.len() + 8 {
        return Err(ProtocolError::Truncated);
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(ProtocolError::Malformed(
            "bad WAL segment magic (expected MSW1)".into(),
        ));
    }
    let first_index = u64::from_le_bytes(bytes[4..12].try_into().expect("8-byte header"));
    let mut out = DecodedSegment {
        first_index,
        events: Vec::new(),
        punctuations: Vec::new(),
        torn: false,
        valid_len: 12,
    };
    let mut pos = 12;
    while pos < bytes.len() {
        match decode_record(&bytes[pos..]) {
            Some((tag, payload, consumed)) => {
                match tag {
                    REC_EVENT => match T::decode_binary(payload) {
                        Ok(event) => out.events.push(event),
                        Err(_) => {
                            // Checksum passed but the payload does not
                            // decode: written by a different/newer codec.
                            // Same trust boundary as a torn record.
                            out.torn = true;
                            return Ok(out);
                        }
                    },
                    REC_PUNCTUATION => {
                        if payload.len() != 8 {
                            out.torn = true;
                            return Ok(out);
                        }
                        out.punctuations
                            .push(u64::from_le_bytes(payload.try_into().expect("8")));
                    }
                    _ => {
                        out.torn = true;
                        return Ok(out);
                    }
                }
                pos += consumed;
                out.valid_len = pos;
            }
            None => {
                out.torn = true;
                return Ok(out);
            }
        }
    }
    Ok(out)
}

/// Try to decode one record at the head of `bytes`; `None` when the bytes
/// are truncated, oversized, or fail the checksum.
fn decode_record(bytes: &[u8]) -> Option<(u8, &[u8], usize)> {
    if bytes.len() < 1 + 4 {
        return None;
    }
    let tag = bytes[0];
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4")) as usize;
    if len > MAX_FRAME_LEN {
        return None;
    }
    let total = 1 + 4 + len + 8;
    if bytes.len() < total {
        return None;
    }
    let payload = &bytes[5..5 + len];
    let stored = u64::from_le_bytes(bytes[5 + len..total].try_into().expect("8"));
    let mut fnv = Fnv1a::new();
    fnv.update(&bytes[..5 + len]);
    if fnv.finish() != stored {
        return None;
    }
    Some((tag, payload, total))
}

/// Everything recovered from a WAL directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalState<T> {
    /// `(global index, event)` pairs in append order.
    pub events: Vec<(u64, T)>,
    /// Number of segment files read.
    pub segments: u64,
    /// True when the last segment had a torn tail (dropped).
    pub torn_tail: bool,
}

impl<T> WalState<T> {
    /// Events with index ≥ `events_applied` — the replay tail after a
    /// checkpoint covering `events_applied` events.
    pub fn replay_tail(self, events_applied: u64) -> Vec<(u64, T)> {
        self.events
            .into_iter()
            .filter(|(index, _)| *index >= events_applied)
            .collect()
    }
}

/// Read every segment of a WAL directory, oldest first. Only the *last*
/// segment may be torn; damage anywhere else is an error. A missing
/// directory reads as empty.
pub fn read_wal<T: WireCodec>(dir: impl AsRef<Path>) -> Result<WalState<T>, DurabilityError> {
    let dir = dir.as_ref();
    let segments = match list_segments(dir) {
        Ok(s) => s,
        Err(DurabilityError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut state = WalState {
        events: Vec::new(),
        segments: segments.len() as u64,
        torn_tail: false,
    };
    let last = segments.len().saturating_sub(1);
    for (i, (name_index, path)) in segments.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let decoded: DecodedSegment<T> = decode_segment(&bytes)
            .map_err(|e| DurabilityError::corrupt(format!("{}: {e}", path.display())))?;
        if decoded.first_index != *name_index {
            return Err(DurabilityError::corrupt(format!(
                "{}: header index {} does not match file name",
                path.display(),
                decoded.first_index
            )));
        }
        if decoded.torn && i != last {
            return Err(DurabilityError::corrupt(format!(
                "{}: damaged record in a sealed segment",
                path.display()
            )));
        }
        state.torn_tail = decoded.torn;
        let base = decoded.first_index;
        state.events.extend(
            decoded
                .events
                .into_iter()
                .enumerate()
                .map(|(off, event)| (base + off as u64, event)),
        );
    }
    Ok(state)
}

/// Truncate a torn last segment to its valid record prefix, sealing it
/// cleanly on disk. Recovery calls this after [`read_wal`] reports a torn
/// tail (the dropped events are covered by the re-anchor checkpoint):
/// without the repair, the first append after recovery starts a newer
/// segment, the torn one becomes "sealed", and the next restart would
/// refuse to start over damage that no longer matters. Returns `true` when
/// a segment was actually rewritten.
pub fn repair_torn_tail<T: WireCodec>(dir: impl AsRef<Path>) -> Result<bool, DurabilityError> {
    let dir = dir.as_ref();
    let Some((_, path)) = list_segments(dir)?.pop() else {
        return Ok(false);
    };
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;
    let decoded: DecodedSegment<T> = decode_segment(&bytes)
        .map_err(|e| DurabilityError::corrupt(format!("{}: {e}", path.display())))?;
    if !decoded.torn {
        return Ok(false);
    }
    let file = OpenOptions::new().write(true).open(&path)?;
    file.set_len(decoded.valid_len as u64)?;
    // sync_all: the truncated length is metadata, sync_data may skip it.
    file.sync_all()?;
    crate::sync_dir(dir)?;
    Ok(true)
}

/// One record observed by a [`WalTailer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailItem {
    /// An event record: its global index and raw MSB1 payload bytes.
    Event {
        /// Global index the writer assigned to this event.
        index: u64,
        /// The event's wire encoding, exactly as appended.
        payload: Vec<u8>,
    },
    /// A punctuation marker carrying the writer's `next_index` at mark time.
    Punctuation {
        /// Events appended when the marker was written.
        next_index: u64,
    },
}

/// Why a [`WalTailer::poll`] could not make progress.
#[derive(Debug)]
pub enum TailError {
    /// The requested position was truncated away: the oldest record still on
    /// disk starts at `available`. The reader must re-sync from a checkpoint.
    Gap {
        /// Index the tailer needed next.
        requested: u64,
        /// Smallest index the log still holds.
        available: u64,
    },
    /// The log itself is damaged or unreadable.
    Store(DurabilityError),
}

impl std::fmt::Display for TailError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Gap {
                requested,
                available,
            } => write!(
                f,
                "WAL gap: index {requested} truncated away (oldest on disk: {available})"
            ),
            Self::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TailError {}

impl From<DurabilityError> for TailError {
    fn from(e: DurabilityError) -> Self {
        Self::Store(e)
    }
}

impl From<std::io::Error> for TailError {
    fn from(e: std::io::Error) -> Self {
        Self::Store(DurabilityError::Io(e))
    }
}

struct OpenSegment {
    first_index: u64,
    file: File,
    /// Global index of the next event record the decode cursor will see.
    index: u64,
    /// Bytes read from the file but not yet decoded (may end mid-record
    /// while the writer is between `write_all` calls).
    carry: Vec<u8>,
}

/// Incremental reader over a live WAL directory: follows appends, segment
/// rotations, and truncations made by a concurrent [`WalLog`] writer in the
/// same process or another one on the same filesystem.
///
/// A record being written can be observed half-complete; the tailer buffers
/// the partial bytes and resumes on the next [`WalTailer::poll`] — a short
/// read is "try again later", never an error. When truncation has deleted
/// the segment holding the requested position, `poll` reports
/// [`TailError::Gap`] and the reader must re-sync from a checkpoint.
pub struct WalTailer {
    dir: PathBuf,
    /// Next event index to emit.
    next_index: u64,
    current: Option<OpenSegment>,
}

impl WalTailer {
    /// Tail `dir` starting at global event index `from`. The directory may
    /// be empty or not yet exist; records appear as the writer produces
    /// them.
    pub fn new(dir: impl Into<PathBuf>, from: u64) -> Self {
        Self {
            dir: dir.into(),
            next_index: from,
            current: None,
        }
    }

    /// Next event index [`WalTailer::poll`] will emit.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Append up to `max` new items to `out`; returns how many were added.
    /// Zero means no complete new records are on disk yet.
    pub fn poll(&mut self, out: &mut Vec<TailItem>, max: usize) -> Result<usize, TailError> {
        let mut emitted = 0;
        while emitted < max {
            if self.current.is_none() && !self.open_segment()? {
                return Ok(emitted);
            }
            emitted += self.drain_carry(out, max - emitted)?;
            if emitted >= max {
                return Ok(emitted);
            }
            let seg = self.current.as_mut().expect("segment is open");
            if Self::fill(seg)? > 0 {
                continue;
            }
            // EOF on the current segment: either the writer is still on it
            // (wait for more) or it rotated to a newer one.
            let segments = list_segments_or_empty(&self.dir)?;
            let Some(&(next_first, _)) = segments.iter().find(|(f, _)| *f > seg.first_index) else {
                return Ok(emitted);
            };
            // Re-read once: the writer may have completed a half-observed
            // record between our EOF read and the rotation we just listed.
            if Self::fill(seg)? > 0 {
                continue;
            }
            if !seg.carry.is_empty() {
                return Err(DurabilityError::corrupt(format!(
                    "WAL segment {} sealed with a torn tail",
                    segment_name(seg.first_index)
                ))
                .into());
            }
            if next_first > seg.index {
                return Err(TailError::Gap {
                    requested: seg.index,
                    available: next_first,
                });
            }
            self.current = None;
        }
        Ok(emitted)
    }

    /// Decode complete records buffered in `carry`, emitting at most `max`.
    fn drain_carry(&mut self, out: &mut Vec<TailItem>, max: usize) -> Result<usize, TailError> {
        let seg = self.current.as_mut().expect("segment is open");
        let mut emitted = 0;
        let mut pos = 0;
        while emitted < max {
            let Some((tag, payload, consumed)) = decode_record(&seg.carry[pos..]) else {
                break;
            };
            match tag {
                REC_EVENT => {
                    if seg.index >= self.next_index {
                        out.push(TailItem::Event {
                            index: seg.index,
                            payload: payload.to_vec(),
                        });
                        emitted += 1;
                        self.next_index = seg.index + 1;
                    }
                    seg.index += 1;
                }
                REC_PUNCTUATION => {
                    let bytes: [u8; 8] = payload.try_into().map_err(|_| {
                        DurabilityError::corrupt("punctuation marker payload is not 8 bytes")
                    })?;
                    let value = u64::from_le_bytes(bytes);
                    if value >= self.next_index {
                        out.push(TailItem::Punctuation { next_index: value });
                        emitted += 1;
                    }
                }
                other => {
                    return Err(DurabilityError::corrupt(format!(
                        "unknown WAL record tag {other}"
                    ))
                    .into());
                }
            }
            pos += consumed;
        }
        seg.carry.drain(..pos);
        Ok(emitted)
    }

    /// Read whatever new bytes the segment file has; returns the count.
    fn fill(seg: &mut OpenSegment) -> Result<usize, TailError> {
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0;
        loop {
            let n = seg.file.read(&mut buf)?;
            if n == 0 {
                return Ok(total);
            }
            seg.carry.extend_from_slice(&buf[..n]);
            total += n;
        }
    }

    /// Open the segment containing `next_index`. `Ok(false)` when nothing
    /// usable is on disk yet (empty dir, or a header still being written).
    fn open_segment(&mut self) -> Result<bool, TailError> {
        let segments = list_segments_or_empty(&self.dir)?;
        let Some(&(first, ref path)) = segments.iter().rev().find(|(f, _)| *f <= self.next_index)
        else {
            if let Some(&(available, _)) = segments.first() {
                return Err(TailError::Gap {
                    requested: self.next_index,
                    available,
                });
            }
            return Ok(false);
        };
        let mut file = File::open(path)?;
        let mut header = [0u8; 12];
        let mut got = 0;
        while got < header.len() {
            let n = file.read(&mut header[got..])?;
            if n == 0 {
                // The writer created the file but has not finished the
                // header; nothing to read yet.
                return Ok(false);
            }
            got += n;
        }
        if header[..4] != WAL_MAGIC {
            return Err(DurabilityError::corrupt(format!(
                "{}: bad WAL segment magic",
                path.display()
            ))
            .into());
        }
        let header_index = u64::from_le_bytes(header[4..12].try_into().expect("8-byte header"));
        if header_index != first {
            return Err(DurabilityError::corrupt(format!(
                "{}: header index {header_index} does not match file name",
                path.display()
            ))
            .into());
        }
        self.current = Some(OpenSegment {
            first_index: first,
            file,
            index: first,
            carry: Vec::new(),
        });
        Ok(true)
    }
}

/// Smallest event index still present in the WAL directory; `None` when the
/// directory is empty or missing. Lets a shipper decide whether a peer's
/// position can be served from the log or needs a checkpoint re-sync first.
pub fn wal_start_index(dir: impl AsRef<Path>) -> Result<Option<u64>, DurabilityError> {
    Ok(list_segments_or_empty(dir.as_ref())?
        .first()
        .map(|(first, _)| *first))
}

/// `list_segments`, but a missing directory reads as empty.
fn list_segments_or_empty(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    match list_segments(dir) {
        Ok(s) => Ok(s),
        Err(DurabilityError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn segment_name(first_index: u64) -> String {
    // Zero-padded so lexicographic file order is index order.
    format!("seg-{first_index:020}.msw")
}

/// `(first_index, path)` for every segment file, sorted by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, DurabilityError> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".msw"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    /// Minimal event codec for tests: one u64, MSB1-style framing.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Probe(u64);

    impl WireCodec for Probe {
        fn encode_binary(&self, out: &mut Vec<u8>) {
            out.extend_from_slice(&self.0.to_le_bytes());
        }

        fn decode_binary(payload: &[u8]) -> Result<Self, ProtocolError> {
            let bytes: [u8; 8] = payload.try_into().map_err(|_| ProtocolError::Truncated)?;
            Ok(Self(u64::from_le_bytes(bytes)))
        }

        fn encode_json(&self) -> String {
            unimplemented!("not used by WAL tests")
        }

        fn decode_json(_line: &str) -> Result<Self, ProtocolError> {
            unimplemented!("not used by WAL tests")
        }
    }

    #[test]
    fn wal_round_trips_events_and_punctuations() {
        let dir = test_dir("wal-roundtrip");
        let mut log = WalLog::open(&dir, FsyncPolicy::Interval, 0).unwrap();
        for i in 0..5u64 {
            assert_eq!(log.append_event(&Probe(i)).unwrap(), i);
        }
        log.mark_punctuation().unwrap();
        log.append_event(&Probe(5)).unwrap();
        log.sync().unwrap();

        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert!(!state.torn_tail);
        assert_eq!(state.segments, 1);
        assert_eq!(
            state.events,
            (0..6).map(|i| (i, Probe(i))).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_last_segment_keeps_the_valid_prefix() {
        let dir = test_dir("wal-torn");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        for i in 0..4u64 {
            log.append_event(&Probe(i)).unwrap();
        }
        log.rotate().unwrap();
        drop(log);

        // Tear the (single) segment: chop bytes off its tail.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(
            state.events,
            (0..3).map(|i| (i, Probe(i))).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repaired_torn_tail_stays_readable_once_sealed_by_a_newer_segment() {
        let dir = test_dir("wal-repair");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        for i in 0..4u64 {
            log.append_event(&Probe(i)).unwrap();
        }
        log.rotate().unwrap();
        drop(log);

        // Tear the segment mid-record, as a crash would.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        // Recovery: read the valid prefix, then repair the torn segment.
        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.events.len(), 3);
        assert!(repair_torn_tail::<Probe>(&dir).unwrap());
        // Idempotent: a clean segment is left alone.
        assert!(!repair_torn_tail::<Probe>(&dir).unwrap());

        // The server appends again, sealing the repaired segment behind a
        // newer one; the next restart must still read the whole log.
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 3).unwrap();
        assert_eq!(log.append_event(&Probe(3)).unwrap(), 3);
        log.sync().unwrap();
        drop(log);
        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert!(!state.torn_tail);
        assert_eq!(
            state.events,
            (0..4).map(|i| (i, Probe(i))).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damage_in_a_sealed_segment_is_a_hard_error() {
        let dir = test_dir("wal-sealed");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        log.append_event(&Probe(1)).unwrap();
        log.rotate().unwrap();
        log.append_event(&Probe(2)).unwrap();
        log.rotate().unwrap();
        drop(log);

        let (_, first) = list_segments(&dir).unwrap().remove(0);
        let mut bytes = fs::read(&first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&first, &bytes).unwrap();

        assert!(read_wal::<Probe>(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_truncation_drop_covered_segments() {
        let dir = test_dir("wal-rotate");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        log.append_event(&Probe(0)).unwrap();
        log.append_event(&Probe(1)).unwrap();
        log.rotate().unwrap();
        log.append_event(&Probe(2)).unwrap();
        log.rotate().unwrap();
        log.append_event(&Probe(3)).unwrap();
        log.sync().unwrap();
        assert_eq!(log.segment_count(), 3);

        // Checkpoint covering 3 events: the first two segments (indices 0-1
        // and 2) are fully covered because their successors start at ≤ 3.
        assert_eq!(log.truncate_before(3).unwrap(), 2);
        assert_eq!(log.segment_count(), 1);
        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert_eq!(state.events, vec![(3, Probe(3))]);
        assert!(state.replay_tail(3).len() == 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_index_space() {
        let dir = test_dir("wal-reopen");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        log.append_event(&Probe(0)).unwrap();
        log.rotate().unwrap();
        drop(log);

        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 1).unwrap();
        assert_eq!(log.append_event(&Probe(1)).unwrap(), 1);
        log.sync().unwrap();
        let state: WalState<Probe> = read_wal(&dir).unwrap();
        assert_eq!(state.events, vec![(0, Probe(0)), (1, Probe(1))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_follows_appends_rotations_and_markers() {
        let dir = test_dir("wal-tail");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        let mut tailer = WalTailer::new(&dir, 0);
        let mut out = Vec::new();

        // Nothing on disk yet: poll is a clean zero, not an error.
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 0);

        log.append_event(&Probe(0)).unwrap();
        log.append_event(&Probe(1)).unwrap();
        log.mark_punctuation().unwrap();
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 3);
        assert_eq!(
            out,
            vec![
                TailItem::Event {
                    index: 0,
                    payload: 0u64.to_le_bytes().to_vec()
                },
                TailItem::Event {
                    index: 1,
                    payload: 1u64.to_le_bytes().to_vec()
                },
                TailItem::Punctuation { next_index: 2 },
            ]
        );

        // Rotation: the tailer crosses into the new segment transparently.
        log.rotate().unwrap();
        log.append_event(&Probe(2)).unwrap();
        out.clear();
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 1);
        assert_eq!(
            out,
            vec![TailItem::Event {
                index: 2,
                payload: 2u64.to_le_bytes().to_vec()
            }]
        );
        assert_eq!(tailer.next_index(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_buffers_a_half_written_record() {
        let dir = test_dir("wal-tail-partial");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        log.append_event(&Probe(7)).unwrap();
        log.sync().unwrap();

        // Simulate catching the writer mid-record: copy a truncated image
        // aside, tail it, then restore the full bytes.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();

        let mut tailer = WalTailer::new(&dir, 0);
        let mut out = Vec::new();
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 0);

        fs::write(&path, &full).unwrap();
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 1);
        assert_eq!(
            out,
            vec![TailItem::Event {
                index: 0,
                payload: 7u64.to_le_bytes().to_vec()
            }]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_skips_to_its_start_position() {
        let dir = test_dir("wal-tail-skip");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        for i in 0..6u64 {
            log.append_event(&Probe(i)).unwrap();
        }
        log.mark_punctuation().unwrap();

        let mut tailer = WalTailer::new(&dir, 4);
        let mut out = Vec::new();
        assert_eq!(tailer.poll(&mut out, 100).unwrap(), 3);
        assert_eq!(
            out,
            vec![
                TailItem::Event {
                    index: 4,
                    payload: 4u64.to_le_bytes().to_vec()
                },
                TailItem::Event {
                    index: 5,
                    payload: 5u64.to_le_bytes().to_vec()
                },
                TailItem::Punctuation { next_index: 6 },
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_reports_a_gap_after_truncation() {
        let dir = test_dir("wal-tail-gap");
        let mut log = WalLog::open(&dir, FsyncPolicy::Never, 0).unwrap();
        log.append_event(&Probe(0)).unwrap();
        log.append_event(&Probe(1)).unwrap();
        log.rotate().unwrap();
        log.append_event(&Probe(2)).unwrap();
        log.sync().unwrap();
        log.truncate_before(2).unwrap();
        assert_eq!(wal_start_index(&dir).unwrap(), Some(2));

        let mut tailer = WalTailer::new(&dir, 0);
        let mut out = Vec::new();
        match tailer.poll(&mut out, 100) {
            Err(TailError::Gap {
                requested: 0,
                available: 2,
            }) => {}
            other => panic!("expected a gap, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_policy_names_round_trip() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::Interval,
            FsyncPolicy::Never,
        ] {
            assert_eq!(FsyncPolicy::from_name(policy.name()), Some(policy));
        }
        assert_eq!(FsyncPolicy::from_name("sometimes"), None);
    }
}
