//! The crash-recovery matrix: kill-and-restart is digest-identical to an
//! uninterrupted run across every runtime shape — {serial, concurrent} ×
//! downstream parallelism {1, 4} × worker threads {1, 4} × pipelined
//! construction on/off — with the kill landing both on a punctuation
//! boundary and mid-batch, and the checkpoint cut itself mid-batch.
//!
//! Each cell simulates the crash in-process: lifetime A WAL-appends and
//! pushes a prefix of the stream (taking one checkpoint part-way), then is
//! abandoned without `finish` — exactly what `kill -9` leaves on disk.
//! Lifetime B restores the checkpoint, replays the WAL tail, pushes the rest
//! of the stream, and must land on the same ledger/tally state digests and
//! the same order-sensitive output digest as a reference run that never
//! crashed.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use morphstream::storage::StateStore;
use morphstream::{
    udfs, EngineConfig, FnSink, Pipeline, Route, StreamApp, Topology, TopologyBuilder,
    TopologyConfig, TxnBuilder, TxnEngine, TxnOutcome,
};
use morphstream_common::hash::Fnv1a;
use morphstream_common::{StateRef, TableId, WorkloadConfig};
use morphstream_durability::{read_wal, CheckpointBuilder, CheckpointStore, FsyncPolicy, WalLog};
use morphstream_workloads::{SlEvent, StreamingLedgerApp};

const PUNCTUATION: usize = 50;
const EVENTS: usize = 600;
/// Mid-batch: 230 is not a multiple of the punctuation interval, so the
/// checkpoint's flush cuts a partial batch.
const CHECKPOINT_AT: usize = 230;

/// The entry operator: Streaming Ledger semantics, but the output carries
/// the primary account key so the downstream edge can partition by it.
struct LedgerApp {
    accounts: TableId,
}

impl LedgerApp {
    fn new(store: &StateStore) -> Self {
        Self {
            accounts: store.create_table("accounts", 0, true),
        }
    }
}

impl StreamApp for LedgerApp {
    type Event = SlEvent;
    /// `account << 1 | committed`.
    type Output = u64;

    fn state_access(&self, event: &SlEvent, txn: &mut TxnBuilder) {
        match event {
            SlEvent::Deposit { account, amount } => {
                txn.write(self.accounts, *account, udfs::add_delta(*amount));
            }
            SlEvent::Transfer { from, to, amount } => {
                txn.write(self.accounts, *from, udfs::withdraw(*amount));
                txn.write_with_params(
                    self.accounts,
                    *to,
                    vec![StateRef::new(self.accounts, *from)],
                    udfs::credit_if_param_at_least(*amount, *amount),
                );
            }
        }
    }

    fn post_process(&self, event: &SlEvent, outcome: &TxnOutcome) -> u64 {
        let account = match event {
            SlEvent::Deposit { account, .. } => *account,
            SlEvent::Transfer { from, .. } => *from,
        };
        (account << 1) | outcome.committed as u64
    }
}

/// The downstream operator: per-account event tally, keyed by the same
/// account the route partitions on, so parallel instances own disjoint keys.
struct TallyApp {
    tallies: TableId,
}

impl StreamApp for TallyApp {
    type Event = u64;
    type Output = u64;

    fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
        txn.write(self.tallies, event >> 1, udfs::add_delta(1));
    }

    fn post_process(&self, event: &u64, _outcome: &TxnOutcome) -> u64 {
        *event
    }
}

#[derive(Clone, Copy)]
struct Shape {
    concurrent: bool,
    parallelism: usize,
    threads: usize,
    pipelined: bool,
}

struct Run {
    topology: Topology<SlEvent, u64>,
    ledger_store: StateStore,
    tally_store: StateStore,
    output_digest: Arc<Mutex<Fnv1a>>,
}

fn build(shape: Shape) -> Run {
    let ledger_store = StateStore::new();
    let tally_store = StateStore::new();
    let config = EngineConfig::with_threads(shape.threads)
        .with_punctuation_interval(PUNCTUATION)
        .with_pipelined_construction(shape.pipelined);
    let mut builder = TopologyBuilder::new();
    let ledger = builder.add_operator(
        "ledger",
        LedgerApp::new(&ledger_store),
        ledger_store.clone(),
        config,
    );
    let tally = builder
        .add_operator(
            "tally",
            TallyApp {
                tallies: tally_store.create_table("tallies", 0, true),
            },
            tally_store.clone(),
            config,
        )
        .with_parallelism(shape.parallelism);
    builder.connect(
        ledger,
        tally,
        Route::keyed(|routed: &u64| routed >> 1, |out: &u64| Some(*out)),
    );
    let mut topology = builder
        .build(
            ledger,
            tally,
            TopologyConfig::default().with_concurrent(shape.concurrent),
        )
        .expect("ledger -> tally is a valid dataflow");
    let output_digest = Arc::new(Mutex::new(Fnv1a::new()));
    let digest = Arc::clone(&output_digest);
    topology.set_output_sink(Some(Box::new(FnSink(move |out: u64| {
        digest.lock().unwrap().update(&out.to_le_bytes());
    }))));
    Run {
        topology,
        ledger_store,
        tally_store,
        output_digest,
    }
}

#[derive(Debug, PartialEq)]
struct Digests {
    ledger: u64,
    tally: u64,
    outputs: u64,
}

impl Run {
    fn finish(mut self) -> Digests {
        self.topology.flush();
        self.topology.finish();
        Digests {
            ledger: self.ledger_store.state_digest(),
            tally: self.tally_store.state_digest(),
            outputs: self.output_digest.lock().unwrap().finish(),
        }
    }
}

fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-matrix-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference: one uninterrupted run of the whole stream.
fn reference(shape: Shape, events: &[SlEvent]) -> Digests {
    let mut run = build(shape);
    {
        let mut pipeline = Pipeline::new(&mut run.topology);
        for event in events {
            pipeline.push(event.clone());
        }
    }
    run.finish()
}

/// Crash at `kill_at`, recover, finish the stream; return the digests.
fn crashed_and_recovered(shape: Shape, events: &[SlEvent], kill_at: usize, dir: &Path) -> Digests {
    // Lifetime A: WAL-append + push the prefix, checkpoint mid-way, then
    // vanish without flush/finish (the in-flight suffix past the last
    // punctuation dies with the process — but it is in the WAL).
    {
        let mut run = build(shape);
        let mut wal = WalLog::open(dir.join("wal"), FsyncPolicy::Never, 0).expect("open WAL");
        let mut checkpoints = CheckpointStore::open(dir.join("checkpoints")).expect("open store");
        let push = |run: &mut Run, wal: &mut WalLog, slice: &[SlEvent]| {
            let mut pipeline = Pipeline::new(&mut run.topology);
            for event in slice {
                wal.append_event(event).expect("append");
                pipeline.push(event.clone());
            }
        };
        push(&mut run, &mut wal, &events[..CHECKPOINT_AT]);
        let mut builder = CheckpointBuilder::new();
        TxnEngine::checkpoint(&mut run.topology, &mut builder);
        let checkpoint = builder.build(
            checkpoints.next_id(),
            wal.next_index(),
            run.output_digest.lock().unwrap().finish(),
        );
        checkpoints.save(&checkpoint).expect("save checkpoint");
        push(&mut run, &mut wal, &events[CHECKPOINT_AT..kill_at]);
        // No flush, no finish: lifetime A is gone.
    }

    // Lifetime B: restore, replay the WAL tail, continue, finish.
    let mut run = build(shape);
    let checkpoints = CheckpointStore::open(dir.join("checkpoints")).expect("reopen store");
    let mut loaded = checkpoints
        .load_chain()
        .expect("chain loads")
        .expect("a checkpoint exists");
    TxnEngine::restore(&mut run.topology, &mut loaded.restore);
    *run.output_digest.lock().unwrap() = Fnv1a::from_state(loaded.output_digest);
    assert_eq!(loaded.events_applied, CHECKPOINT_AT as u64);
    let wal_state = read_wal::<SlEvent>(dir.join("wal")).expect("WAL reads");
    let tail = wal_state.replay_tail(loaded.events_applied);
    assert_eq!(
        tail.len(),
        kill_at - CHECKPOINT_AT,
        "tail covers checkpoint..kill"
    );
    {
        let mut pipeline = Pipeline::new(&mut run.topology);
        for (_, event) in tail {
            pipeline.push(event);
        }
        for event in &events[kill_at..] {
            pipeline.push(event.clone());
        }
    }
    run.finish()
}

#[test]
fn kill_and_restart_is_digest_identical_across_the_runtime_matrix() {
    let workload = WorkloadConfig::streaming_ledger()
        .with_key_space(64)
        .with_txns_per_batch(PUNCTUATION);
    let events = StreamingLedgerApp::generate(&workload, EVENTS, 0.5);

    for concurrent in [false, true] {
        for parallelism in [1, 4] {
            for threads in [1, 4] {
                for pipelined in [false, true] {
                    let shape = Shape {
                        concurrent,
                        parallelism,
                        threads,
                        pipelined,
                    };
                    let expected = reference(shape, &events);
                    // 300 = a punctuation boundary; 323 = mid-batch.
                    for kill_at in [300, 323] {
                        let dir = test_dir("kill");
                        let recovered = crashed_and_recovered(shape, &events, kill_at, &dir);
                        assert_eq!(
                            recovered, expected,
                            "digests diverged: concurrent={concurrent} \
                             parallelism={parallelism} threads={threads} \
                             pipelined={pipelined} kill_at={kill_at}"
                        );
                        let _ = std::fs::remove_dir_all(&dir);
                    }
                }
            }
        }
    }
}
