//! Property tests of the durable formats (vendored proptest shim): MSC1
//! checkpoints and MSW1 WAL segments round-trip bit-exactly, truncation
//! keeps the valid prefix (WAL) or errors cleanly (checkpoint — a partial
//! snapshot must never be trusted), and arbitrary corruption errors instead
//! of panicking. The mirror of `crates/server/tests/protocol_fuzz.rs` for
//! what lives on disk rather than on the wire.

use std::path::PathBuf;

use proptest::prelude::*;

use morphstream_durability::{
    decode_segment, Checkpoint, FsyncPolicy, StoreSection, TableSnapshot, WalLog, WAL_MAGIC,
};
use morphstream_workloads::SlEvent;

fn sl_event() -> impl Strategy<Value = SlEvent> {
    prop_oneof![
        (0..u64::MAX, i64::MIN..i64::MAX)
            .prop_map(|(account, amount)| SlEvent::Deposit { account, amount }),
        (0..u64::MAX, 0..u64::MAX, i64::MIN..i64::MAX)
            .prop_map(|(from, to, amount)| SlEvent::Transfer { from, to, amount }),
    ]
}

fn table_snapshot() -> impl Strategy<Value = TableSnapshot> {
    (
        proptest::collection::vec(0u8..26, 0..12),
        i64::MIN..i64::MAX,
        0u8..2,
        proptest::collection::vec((0..u64::MAX, i64::MIN..i64::MAX), 0..16),
    )
        .prop_map(
            |(name, default_value, auto_create, entries)| TableSnapshot {
                name: name.iter().map(|c| (b'a' + c) as char).collect(),
                default_value,
                auto_create: auto_create == 1,
                entries,
            },
        )
}

fn checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        0..u64::MAX,
        0..u64::MAX,
        0..u64::MAX,
        0u8..2,
        proptest::collection::vec(
            (0u32..8, proptest::collection::vec(table_snapshot(), 0..4))
                .prop_map(|(ordinal, tables)| StoreSection { ordinal, tables }),
            0..4,
        ),
    )
        .prop_map(
            |(id, events_applied, output_digest, full, stores)| Checkpoint {
                id,
                events_applied,
                output_digest,
                full: full == 1,
                stores,
            },
        )
}

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("morph-fuzz-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write `events` through a real [`WalLog`] (one punctuation marker every
/// `marker_every` events when nonzero) and return the single segment's
/// on-disk bytes.
fn segment_bytes(events: &[SlEvent], first_index: u64, marker_every: usize) -> Vec<u8> {
    let dir = temp_dir("wal");
    let mut wal = WalLog::open(&dir, FsyncPolicy::Never, first_index).expect("open WAL");
    for (i, event) in events.iter().enumerate() {
        wal.append_event(event).expect("append");
        if marker_every > 0 && (i + 1) % marker_every == 0 {
            wal.mark_punctuation().expect("marker");
        }
    }
    if events.is_empty() {
        // Force the lazy segment into existence so there is a file to read.
        wal.mark_punctuation().expect("marker");
    }
    drop(wal);
    let segment = std::fs::read_dir(&dir)
        .expect("wal dir")
        .map(|entry| entry.expect("entry").path())
        .max()
        .expect("one segment");
    let bytes = std::fs::read(segment).expect("read segment");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checkpoints_round_trip_bit_exactly(checkpoint in checkpoint()) {
        let wire = checkpoint.encode();
        let decoded = Checkpoint::decode(&wire).expect("decode what we encoded");
        prop_assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn truncated_checkpoints_error_instead_of_panicking(
        checkpoint in checkpoint(),
        cut in 0usize..1 << 20,
    ) {
        let wire = checkpoint.encode();
        // A strict prefix: the trailing checksum (or more) is missing, so a
        // partial snapshot must never decode.
        let truncated = &wire[..cut % wire.len()];
        prop_assert!(Checkpoint::decode(truncated).is_err());
    }

    #[test]
    fn bit_flipped_checkpoints_error_instead_of_panicking(
        checkpoint in checkpoint(),
        flip in 0usize..1 << 20,
        bite in 0usize..8,
    ) {
        let mut wire = checkpoint.encode();
        let at = flip % wire.len();
        wire[at] ^= 1 << bite;
        // Every byte is covered by the trailing FNV, so any single-bit flip
        // must be rejected (whether it corrupted content or the checksum).
        prop_assert!(Checkpoint::decode(&wire).is_err());
    }

    #[test]
    fn wal_segments_round_trip_through_a_real_log(
        events in proptest::collection::vec(sl_event(), 0..32),
        first_index in 0u64..1 << 48,
        marker_every in 0usize..8,
    ) {
        let bytes = segment_bytes(&events, first_index, marker_every);
        prop_assert_eq!(&bytes[..4], &WAL_MAGIC[..]);
        let decoded = decode_segment::<SlEvent>(&bytes).expect("decode what we wrote");
        prop_assert_eq!(decoded.first_index, first_index);
        prop_assert_eq!(decoded.events, events);
        prop_assert!(!decoded.torn);
    }

    #[test]
    fn truncated_wal_tails_keep_the_valid_prefix(
        events in proptest::collection::vec(sl_event(), 1..32),
        cut in 0usize..1 << 20,
    ) {
        let bytes = segment_bytes(&events, 0, 4);
        let at = cut % bytes.len();
        let truncated = &bytes[..at];
        if at < 12 {
            // Not even a whole header survives: a hard error.
            prop_assert!(decode_segment::<SlEvent>(truncated).is_err());
        } else {
            // The prefix property: whatever decodes is exactly what was
            // written, in order. (A cut landing on a record boundary looks
            // clean — torn is only guaranteed for cuts inside a record —
            // which is why recovery cross-checks the WAL against the
            // checkpoint's event index rather than trusting segment length.)
            let decoded = decode_segment::<SlEvent>(truncated).expect("total past the header");
            prop_assert!(decoded.events.len() <= events.len());
            prop_assert_eq!(&decoded.events[..], &events[..decoded.events.len()]);
        }
    }

    #[test]
    fn bit_flipped_wal_segments_never_panic_and_never_fabricate_events(
        events in proptest::collection::vec(sl_event(), 1..32),
        flip in 0usize..1 << 20,
        bite in 0usize..8,
    ) {
        let mut bytes = segment_bytes(&events, 0, 4);
        let at = flip % bytes.len();
        bytes[at] ^= 1 << bite;
        if let Ok(decoded) = decode_segment::<SlEvent>(&bytes) {
            if at >= 12 {
                // Damage in the record stream: everything decoded must be an
                // untouched prefix of what was written.
                prop_assert!(decoded.events.len() <= events.len());
                prop_assert_eq!(&decoded.events[..], &events[..decoded.events.len()]);
            }
        }
    }
}
