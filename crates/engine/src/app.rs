//! The programming model: the three-step operator template and the
//! system-provided state access APIs (Tables 4 and 5 of the paper).

use std::sync::Arc;

use morphstream_common::{Key, StateRef, TableId, Timestamp, Value};
use morphstream_executor::TxnOutcome;
use morphstream_tpg::{KeyResolver, OperationSpec, Udf};

/// Builder collecting the state access operations of one state transaction —
/// the Rust rendition of the paper's `STATE_ACCESS` step and its
/// system-provided `READ` / `WRITE` APIs (Table 5), including the windowed
/// and non-deterministic variants.
#[derive(Default)]
pub struct TxnBuilder {
    ops: Vec<OperationSpec>,
    cost_us: u64,
}

impl TxnBuilder {
    /// Empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the emulated UDF cost (µs) applied to operations added *after*
    /// this call (the paper's `C` workload knob).
    pub fn set_cost_us(&mut self, cost_us: u64) -> &mut Self {
        self.cost_us = cost_us;
        self
    }

    /// `READ(key)`: read `(table, key)`; the value is available to
    /// post-processing through the transaction outcome.
    pub fn read(&mut self, table: TableId, key: Key) -> &mut Self {
        self.push(OperationSpec::read(table, key));
        self
    }

    /// `WRITE(key, f)`: update `(table, key)` with `udf` applied to its
    /// current value.
    pub fn write(&mut self, table: TableId, key: Key, udf: Udf) -> &mut Self {
        self.push(OperationSpec::write(table, key, Vec::new(), udf));
        self
    }

    /// `WRITE(d, f(s...))`: update `(table, key)` with `udf` applied to its
    /// current value and the values of `params` — a data (parametric)
    /// dependency on those states.
    pub fn write_with_params(
        &mut self,
        table: TableId,
        key: Key,
        params: Vec<StateRef>,
        udf: Udf,
    ) -> &mut Self {
        self.push(OperationSpec::write(table, key, params, udf));
        self
    }

    /// `READ(win_f(d, size))`: windowed read of `(table, key)` over the
    /// trailing `window` range, aggregated by `udf`.
    pub fn window_read(
        &mut self,
        table: TableId,
        key: Key,
        window: Timestamp,
        udf: Udf,
    ) -> &mut Self {
        self.push(OperationSpec::window_read(table, key, window, udf));
        self
    }

    /// `WRITE(d, win_f(s..., size))`: windowed write — `(table, key)` is
    /// updated with `udf` applied to the versions of `params` inside the
    /// trailing `window` range.
    pub fn window_write(
        &mut self,
        table: TableId,
        key: Key,
        params: Vec<StateRef>,
        window: Timestamp,
        udf: Udf,
    ) -> &mut Self {
        self.push(OperationSpec::window_write(table, key, params, window, udf));
        self
    }

    /// `READ(f, ...)`: non-deterministic read — the key is produced by
    /// `resolver` at execution time.
    pub fn non_det_read(
        &mut self,
        table: TableId,
        resolver: KeyResolver,
        udf: Option<Udf>,
    ) -> &mut Self {
        self.push(OperationSpec::non_det_read(table, resolver, udf));
        self
    }

    /// `WRITE(f1, f2)`: non-deterministic write — the key is produced by
    /// `resolver`, the value by `udf` over `params`.
    pub fn non_det_write(
        &mut self,
        table: TableId,
        resolver: KeyResolver,
        params: Vec<StateRef>,
        udf: Udf,
    ) -> &mut Self {
        self.push(OperationSpec::non_det_write(table, resolver, params, udf));
        self
    }

    /// Add a pre-built operation spec.
    pub fn push_spec(&mut self, spec: OperationSpec) -> &mut Self {
        self.push(spec);
        self
    }

    fn push(&mut self, spec: OperationSpec) {
        self.ops.push(spec.with_cost_us(self.cost_us));
    }

    /// Number of operations added so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation was added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Consume the builder, returning the operation specs.
    pub fn into_ops(self) -> Vec<OperationSpec> {
        self.ops
    }
}

/// A streaming application expressed in the paper's three-step programming
/// model. The engine drives the steps:
///
/// 1. *pre-processing* is folded into [`StreamApp::state_access`] — the
///    application inspects the event and declares the read/write sets;
/// 2. *state access* — the declared operations form one state transaction per
///    event and are executed transactionally by the engine;
/// 3. *post-processing* — once the transaction commits or aborts, the
///    application turns the outcome into an output record.
///
/// Applications and their events are `'static` so the engine may decompose a
/// batch on a dedicated construction thread while the previous batch executes
/// (pipelined construction). `state_access` must not read the shared state —
/// it *declares* accesses; under pipelined construction it runs before
/// earlier transactions have committed.
pub trait StreamApp: Send + Sync + 'static {
    /// Input event type.
    type Event: Send + Sync + 'static;
    /// Output record type.
    type Output: Send;

    /// Declare the state transaction triggered by `event` (pre-processing +
    /// state access).
    fn state_access(&self, event: &Self::Event, txn: &mut TxnBuilder);

    /// Turn the transaction outcome into an output record (post-processing).
    fn post_process(&self, event: &Self::Event, outcome: &TxnOutcome) -> Self::Output;

    /// Hint of the fraction of transactions expected to abort; feeds the
    /// decision model. Defaults to 0.
    fn expected_abort_ratio(&self) -> f64 {
        0.0
    }
}

impl<A: StreamApp + ?Sized> StreamApp for Arc<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn state_access(&self, event: &Self::Event, txn: &mut TxnBuilder) {
        (**self).state_access(event, txn)
    }

    fn post_process(&self, event: &Self::Event, outcome: &TxnOutcome) -> Self::Output {
        (**self).post_process(event, outcome)
    }

    fn expected_abort_ratio(&self) -> f64 {
        (**self).expected_abort_ratio()
    }
}

/// Value helper: interpret a committed outcome's op result, defaulting to 0.
pub fn result_or_zero(outcome: &TxnOutcome, idx: usize) -> Value {
    outcome.result(idx).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_tpg::{udfs, AccessKind};

    const T: TableId = TableId(0);

    #[test]
    fn builder_collects_all_api_variants() {
        let mut txn = TxnBuilder::new();
        txn.set_cost_us(7)
            .read(T, 1)
            .write(T, 2, udfs::add_delta(1))
            .write_with_params(T, 3, vec![StateRef::new(T, 1)], udfs::sum_params())
            .window_read(T, 4, 100, udfs::window_sum())
            .window_write(T, 5, vec![StateRef::new(T, 4)], 100, udfs::window_sum())
            .non_det_read(T, Arc::new(|ts| ts), None)
            .non_det_write(T, Arc::new(|ts| ts), vec![], udfs::set_value(1));
        assert_eq!(txn.len(), 7);
        assert!(!txn.is_empty());
        let ops = txn.into_ops();
        let kinds: Vec<AccessKind> = ops.iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AccessKind::Read,
                AccessKind::Write,
                AccessKind::Write,
                AccessKind::WindowRead,
                AccessKind::WindowWrite,
                AccessKind::NonDetRead,
                AccessKind::NonDetWrite,
            ]
        );
        assert!(ops.iter().all(|o| o.cost_us == 7));
    }

    #[test]
    fn cost_applies_only_after_it_is_set() {
        let mut txn = TxnBuilder::new();
        txn.read(T, 1).set_cost_us(50).read(T, 2);
        let ops = txn.into_ops();
        assert_eq!(ops[0].cost_us, 0);
        assert_eq!(ops[1].cost_us, 50);
    }

    #[test]
    fn empty_builder_reports_empty() {
        let txn = TxnBuilder::new();
        assert!(txn.is_empty());
        assert_eq!(txn.len(), 0);
        assert!(txn.into_ops().is_empty());
    }
}
