//! Run and batch reports: the measurements every figure of the evaluation is
//! derived from.

use std::time::Duration;

use morphstream_common::metrics::{
    Breakdown, LatencyRecorder, MemoryTimeline, StageTimings, Throughput,
};
use morphstream_scheduler::SchedulingDecision;

/// Summary of one processed batch (one punctuation interval).
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Index of the batch within the run.
    pub batch: usize,
    /// Number of input events in the batch.
    pub events: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// End-to-end wall-clock time from the batch being cut to its results
    /// landing — the latency of the batch. Under pipelined construction this
    /// includes time queued behind the previous batch, so adjacent batches'
    /// `elapsed` intervals overlap; use [`BatchSummary::processing_time`]
    /// when summing across batches (throughput).
    pub elapsed: Duration,
    /// The scheduling decision used for the batch (the decision of the first
    /// group when the nested configuration is used).
    pub decision: SchedulingDecision,
    /// Operations redone because of upstream aborts.
    pub redone_ops: usize,
    /// Bytes retained by the state store when the batch finished.
    pub bytes_retained: u64,
    /// Construct/execute wall-clock split of the batch, including how much of
    /// the construction ran concurrently with another batch's execution
    /// (always zero without pipelined construction).
    pub timings: StageTimings,
}

impl BatchSummary {
    /// Wall-clock time this batch actually occupied the engine:
    /// construction plus execution, minus the construction that was hidden
    /// behind another batch's execution. Unlike [`BatchSummary::elapsed`],
    /// these intervals are disjoint across batches in *both* engine modes, so
    /// they sum correctly into run throughput.
    pub fn processing_time(&self) -> Duration {
        (self.timings.construct + self.timings.execute).saturating_sub(self.timings.overlap)
    }

    /// Throughput of this batch in events per second (over
    /// [`BatchSummary::processing_time`]).
    pub fn events_per_second(&self) -> f64 {
        Throughput::new(self.events as u64, self.processing_time()).events_per_second()
    }
}

/// Condensed, type-erased report of one operator inside a
/// [`Topology`](crate::Topology): the per-operator slice of the run that the
/// topology aggregates into its top-level [`RunReport`].
///
/// Produced when the topology session finishes — one entry per operator, in
/// the order the operators were added to the builder. The per-operator
/// `committed`/`aborted` counts sum to the topology report's top-level
/// counts, and `stage_timings`/`breakdown` sum to the top-level aggregates.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Operator name given to `TopologyBuilder::add_operator`.
    pub name: String,
    /// Events this operator ingested and post-processed.
    pub events: usize,
    /// Committed transactions of this operator.
    pub committed: usize,
    /// Aborted transactions of this operator.
    pub aborted: usize,
    /// Punctuation batches this operator processed.
    pub batches: usize,
    /// Throughput over this operator's batch processing time.
    pub throughput: Throughput,
    /// Per-event latency samples recorded by this operator.
    pub latency: LatencyRecorder,
    /// Construct/execute/overlap stage timings of this operator.
    pub stage_timings: StageTimings,
    /// Runtime breakdown of this operator's batches.
    pub breakdown: Breakdown,
}

impl OperatorReport {
    /// Condense a finished per-operator run into the erased report.
    pub fn from_run<O>(name: impl Into<String>, run: &RunReport<O>) -> Self {
        Self {
            name: name.into(),
            events: run.events(),
            committed: run.committed,
            aborted: run.aborted,
            batches: run.batches.len(),
            throughput: run.throughput,
            latency: run.latency.clone(),
            stage_timings: run.stage_timings,
            breakdown: run.breakdown.clone(),
        }
    }

    /// Throughput in thousands of events per second (the paper's unit).
    pub fn k_events_per_second(&self) -> f64 {
        self.throughput.k_events_per_second()
    }
}

/// Per-edge channel statistics of a [`Topology`](crate::Topology) run: one
/// row per routed connection (plus the implicit `(input)` → entry feed), so
/// back-pressure is observable. `queue_full_waits` counts how often a sender
/// found the edge's bounded channel full and had to block; it is always zero
/// under the serial wave loop, which has no channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReport {
    /// Name of the upstream operator (`"(input)"` for the entry feed).
    pub from: String,
    /// Name of the downstream operator.
    pub to: String,
    /// Times a send on this edge found the bounded channel full and blocked.
    pub queue_full_waits: u64,
}

/// Report of a whole run (a sequence of batches).
#[derive(Debug)]
pub struct RunReport<O> {
    /// Per-event outputs produced by post-processing, in input order.
    pub outputs: Vec<O>,
    /// Number of committed transactions.
    pub committed: usize,
    /// Number of aborted transactions.
    pub aborted: usize,
    /// Operations redone because of upstream aborts, summed over batches.
    pub redone_ops: usize,
    /// Aggregate throughput over the processing time of all batches.
    pub throughput: Throughput,
    /// End-to-end latency samples of every event.
    pub latency: LatencyRecorder,
    /// Runtime breakdown accumulated over all batches and worker threads.
    pub breakdown: Breakdown,
    /// Memory retained by auxiliary structures over time.
    pub memory: MemoryTimeline,
    /// Construct/execute/overlap stage timings summed over all batches. The
    /// `overlap` component is the construction time the pipelined engine hid
    /// behind execution (the Figure 16 construction-overhead axis).
    pub stage_timings: StageTimings,
    /// Per-batch summaries (throughput-over-time plots).
    pub batches: Vec<BatchSummary>,
    /// Per-operator sub-reports. Empty for a single-operator engine; filled
    /// by a finished [`Topology`](crate::Topology) session with one entry per
    /// operator *instance* (named `name#i` when the operator runs with
    /// parallelism above one), whose counts sum to the top-level
    /// `committed`/`aborted`.
    pub operators: Vec<OperatorReport>,
    /// Per-edge channel statistics of a topology run (empty for a
    /// single-operator engine), so back-pressure is observable.
    pub edges: Vec<EdgeReport>,
}

impl<O> RunReport<O> {
    /// Empty report.
    pub fn new() -> Self {
        Self {
            outputs: Vec::new(),
            committed: 0,
            aborted: 0,
            redone_ops: 0,
            throughput: Throughput::default(),
            latency: LatencyRecorder::new(),
            breakdown: Breakdown::new(),
            memory: MemoryTimeline::new(),
            stage_timings: StageTimings::new(),
            batches: Vec::new(),
            operators: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Total events processed.
    pub fn events(&self) -> usize {
        self.outputs.len()
    }

    /// Fold one processed batch into the report: per-event latency samples,
    /// commit/abort counts, throughput, the execution breakdown, the memory
    /// timeline (`at` is the offset since the run started), and the summary
    /// itself. Shared by the MorphStream engine and the baseline harness so
    /// their per-batch bookkeeping cannot drift.
    pub fn record_batch(&mut self, summary: BatchSummary, breakdown: &Breakdown, at: Duration) {
        let latency_us = summary.elapsed.as_micros() as u64;
        for _ in 0..summary.events {
            self.latency.record_micros(latency_us);
        }
        self.committed += summary.committed;
        self.aborted += summary.aborted;
        self.redone_ops += summary.redone_ops;
        // Latency uses `elapsed` (end-to-end, queueing included); throughput
        // uses `processing_time` — under pipelined construction adjacent
        // batches' `elapsed` spans overlap, and summing them would undercount
        // the rate by up to 2x.
        self.throughput.merge(&Throughput::new(
            summary.events as u64,
            summary.processing_time(),
        ));
        self.breakdown.merge(breakdown);
        self.memory.record(at, summary.bytes_retained);
        self.stage_timings.merge(&summary.timings);
        self.batches.push(summary);
    }

    /// Throughput in thousands of events per second (the paper's unit).
    pub fn k_events_per_second(&self) -> f64 {
        self.throughput.k_events_per_second()
    }

    /// Fraction of TPG-construction time that was hidden behind the execution
    /// of other batches: 0 for the serial engine, approaching 1 when the
    /// pipelined engine fully overlaps construction with execution.
    pub fn construction_overlap_fraction(&self) -> f64 {
        self.stage_timings.overlap_fraction()
    }

    /// The scheduling decisions taken across batches, deduplicated in order —
    /// shows how the engine morphed during a dynamic workload.
    pub fn decision_trace(&self) -> Vec<SchedulingDecision> {
        let mut trace: Vec<SchedulingDecision> = Vec::new();
        for b in &self.batches {
            if trace.last() != Some(&b.decision) {
                trace.push(b.decision);
            }
        }
        trace
    }
}

impl<O> Default for RunReport<O> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_summary_computes_throughput_over_processing_time() {
        let b = BatchSummary {
            batch: 0,
            events: 1000,
            committed: 990,
            aborted: 10,
            elapsed: Duration::from_millis(150), // includes pipeline queueing
            decision: SchedulingDecision::default(),
            redone_ops: 0,
            bytes_retained: 0,
            timings: StageTimings {
                construct: Duration::from_millis(40),
                execute: Duration::from_millis(80),
                overlap: Duration::from_millis(20),
            },
        };
        // 40 + 80 - 20 = 100ms of engine occupancy for 1000 events
        assert_eq!(b.processing_time(), Duration::from_millis(100));
        assert!((b.events_per_second() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn decision_trace_deduplicates_consecutive_decisions() {
        let mut report: RunReport<()> = RunReport::new();
        let fine = SchedulingDecision {
            granularity: morphstream_scheduler::Granularity::Fine,
            ..Default::default()
        };
        for (i, d) in [
            SchedulingDecision::default(),
            SchedulingDecision::default(),
            fine,
        ]
        .into_iter()
        .enumerate()
        {
            report.batches.push(BatchSummary {
                batch: i,
                events: 1,
                committed: 1,
                aborted: 0,
                elapsed: Duration::from_millis(1),
                decision: d,
                redone_ops: 0,
                bytes_retained: 0,
                timings: StageTimings::default(),
            });
        }
        assert_eq!(report.decision_trace().len(), 2);
        assert_eq!(report.events(), 0);
        assert_eq!(report.k_events_per_second(), 0.0);
    }
}
