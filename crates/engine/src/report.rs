//! Run and batch reports: the measurements every figure of the evaluation is
//! derived from.

use std::time::Duration;

use morphstream_common::json::JsonObject;
use morphstream_common::metrics::{
    Breakdown, LatencyHistogram, LatencyRecorder, MemoryTimeline, StageTimings, Throughput,
};
use morphstream_scheduler::SchedulingDecision;

/// Summary of one processed batch (one punctuation interval).
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Index of the batch within the run.
    pub batch: usize,
    /// Number of input events in the batch.
    pub events: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Aborted transactions.
    pub aborted: usize,
    /// End-to-end wall-clock time from the batch being cut to its results
    /// landing — the latency of the batch. Under pipelined construction this
    /// includes time queued behind the previous batch, so adjacent batches'
    /// `elapsed` intervals overlap; use [`BatchSummary::processing_time`]
    /// when summing across batches (throughput).
    pub elapsed: Duration,
    /// The scheduling decision used for the batch (the decision of the first
    /// group when the nested configuration is used).
    pub decision: SchedulingDecision,
    /// Operations redone because of upstream aborts.
    pub redone_ops: usize,
    /// Bytes retained by the state store when the batch finished.
    pub bytes_retained: u64,
    /// Construct/execute wall-clock split of the batch, including how much of
    /// the construction ran concurrently with another batch's execution
    /// (always zero without pipelined construction).
    pub timings: StageTimings,
}

impl BatchSummary {
    /// Wall-clock time this batch actually occupied the engine:
    /// construction plus execution, minus the construction that was hidden
    /// behind another batch's execution. Unlike [`BatchSummary::elapsed`],
    /// these intervals are disjoint across batches in *both* engine modes, so
    /// they sum correctly into run throughput.
    pub fn processing_time(&self) -> Duration {
        (self.timings.construct + self.timings.execute).saturating_sub(self.timings.overlap)
    }

    /// Throughput of this batch in events per second (over
    /// [`BatchSummary::processing_time`]).
    pub fn events_per_second(&self) -> f64 {
        Throughput::new(self.events as u64, self.processing_time()).events_per_second()
    }
}

/// Condensed, type-erased report of one operator inside a
/// [`Topology`](crate::Topology): the per-operator slice of the run that the
/// topology aggregates into its top-level [`RunReport`].
///
/// Produced when the topology session finishes — one entry per operator, in
/// the order the operators were added to the builder. The per-operator
/// `committed`/`aborted` counts sum to the topology report's top-level
/// counts, and `stage_timings`/`breakdown` sum to the top-level aggregates.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Operator name given to `TopologyBuilder::add_operator`.
    pub name: String,
    /// Events this operator ingested and post-processed.
    pub events: usize,
    /// Committed transactions of this operator.
    pub committed: usize,
    /// Aborted transactions of this operator.
    pub aborted: usize,
    /// Punctuation batches this operator processed.
    pub batches: usize,
    /// Throughput over this operator's batch processing time.
    pub throughput: Throughput,
    /// Per-event latency samples recorded by this operator.
    pub latency: LatencyRecorder,
    /// Construct/execute/overlap stage timings of this operator.
    pub stage_timings: StageTimings,
    /// Runtime breakdown of this operator's batches.
    pub breakdown: Breakdown,
}

impl OperatorReport {
    /// Condense a finished per-operator run into the erased report.
    pub fn from_run<O>(name: impl Into<String>, run: &RunReport<O>) -> Self {
        Self {
            name: name.into(),
            events: run.events(),
            committed: run.committed,
            aborted: run.aborted,
            batches: run.batches.len(),
            throughput: run.throughput,
            latency: run.latency.clone(),
            stage_timings: run.stage_timings,
            breakdown: run.breakdown.clone(),
        }
    }

    /// Throughput in thousands of events per second (the paper's unit).
    pub fn k_events_per_second(&self) -> f64 {
        self.throughput.k_events_per_second()
    }

    /// Render as one JSON object (counters plus throughput), via the shared
    /// [`morphstream_common::json`] path.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("name", &self.name)
            .unsigned("events", self.events as u64)
            .unsigned("committed", self.committed as u64)
            .unsigned("aborted", self.aborted as u64)
            .unsigned("batches", self.batches as u64)
            .fixed("k_events_per_second", self.k_events_per_second(), 3)
            .build()
    }
}

/// Per-edge channel statistics of a [`Topology`](crate::Topology) run: one
/// row per routed connection (plus the implicit `(input)` → entry feed), so
/// back-pressure is observable. `queue_full_waits` counts how often a sender
/// found the edge's bounded channel full and had to block; it is always zero
/// under the serial wave loop, which has no channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeReport {
    /// Name of the upstream operator (`"(input)"` for the entry feed).
    pub from: String,
    /// Name of the downstream operator.
    pub to: String,
    /// Times a send on this edge found the bounded channel full and blocked.
    pub queue_full_waits: u64,
}

impl EdgeReport {
    /// Render as one JSON object via the shared [`morphstream_common::json`]
    /// path.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("from", &self.from)
            .string("to", &self.to)
            .unsigned("queue_full_waits", self.queue_full_waits)
            .build()
    }
}

/// Report of a whole run (a sequence of batches).
#[derive(Debug)]
pub struct RunReport<O> {
    /// Per-event outputs produced by post-processing, in input order. Empty
    /// while an output sink is installed (see
    /// [`TxnEngine::set_output_sink`](crate::TxnEngine::set_output_sink)) —
    /// drained outputs are counted in [`RunReport::drained_outputs`] instead.
    pub outputs: Vec<O>,
    /// Outputs delivered to an installed output sink instead of being
    /// retained in `outputs`, so [`RunReport::events`] stays exact when a
    /// server streams outputs away.
    pub drained_outputs: usize,
    /// Number of committed transactions.
    pub committed: usize,
    /// Number of aborted transactions.
    pub aborted: usize,
    /// Operations redone because of upstream aborts, summed over batches.
    pub redone_ops: usize,
    /// Aggregate throughput over the processing time of all batches.
    pub throughput: Throughput,
    /// End-to-end latency samples of every event.
    pub latency: LatencyRecorder,
    /// Runtime breakdown accumulated over all batches and worker threads.
    pub breakdown: Breakdown,
    /// Memory retained by auxiliary structures over time.
    pub memory: MemoryTimeline,
    /// Construct/execute/overlap stage timings summed over all batches. The
    /// `overlap` component is the construction time the pipelined engine hid
    /// behind execution (the Figure 16 construction-overhead axis).
    pub stage_timings: StageTimings,
    /// Per-batch summaries (throughput-over-time plots).
    pub batches: Vec<BatchSummary>,
    /// Per-operator sub-reports. Empty for a single-operator engine; filled
    /// by a finished [`Topology`](crate::Topology) session with one entry per
    /// operator *instance* (named `name#i` when the operator runs with
    /// parallelism above one), whose counts sum to the top-level
    /// `committed`/`aborted`.
    pub operators: Vec<OperatorReport>,
    /// Per-edge channel statistics of a topology run (empty for a
    /// single-operator engine), so back-pressure is observable.
    pub edges: Vec<EdgeReport>,
}

impl<O> RunReport<O> {
    /// Empty report.
    pub fn new() -> Self {
        Self {
            outputs: Vec::new(),
            drained_outputs: 0,
            committed: 0,
            aborted: 0,
            redone_ops: 0,
            throughput: Throughput::default(),
            latency: LatencyRecorder::new(),
            breakdown: Breakdown::new(),
            memory: MemoryTimeline::new(),
            stage_timings: StageTimings::new(),
            batches: Vec::new(),
            operators: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Total events processed: retained outputs plus outputs drained to an
    /// installed sink.
    pub fn events(&self) -> usize {
        self.outputs.len() + self.drained_outputs
    }

    /// Fold one processed batch into the report: per-event latency samples,
    /// commit/abort counts, throughput, the execution breakdown, the memory
    /// timeline (`at` is the offset since the run started), and the summary
    /// itself. Shared by the MorphStream engine and the baseline harness so
    /// their per-batch bookkeeping cannot drift.
    pub fn record_batch(&mut self, summary: BatchSummary, breakdown: &Breakdown, at: Duration) {
        let latency_us = summary.elapsed.as_micros() as u64;
        for _ in 0..summary.events {
            self.latency.record_micros(latency_us);
        }
        self.committed += summary.committed;
        self.aborted += summary.aborted;
        self.redone_ops += summary.redone_ops;
        // Latency uses `elapsed` (end-to-end, queueing included); throughput
        // uses `processing_time` — under pipelined construction adjacent
        // batches' `elapsed` spans overlap, and summing them would undercount
        // the rate by up to 2x.
        self.throughput.merge(&Throughput::new(
            summary.events as u64,
            summary.processing_time(),
        ));
        self.breakdown.merge(breakdown);
        self.memory.record(at, summary.bytes_retained);
        self.stage_timings.merge(&summary.timings);
        self.batches.push(summary);
    }

    /// Throughput in thousands of events per second (the paper's unit).
    pub fn k_events_per_second(&self) -> f64 {
        self.throughput.k_events_per_second()
    }

    /// Fraction of TPG-construction time that was hidden behind the execution
    /// of other batches: 0 for the serial engine, approaching 1 when the
    /// pipelined engine fully overlaps construction with execution.
    pub fn construction_overlap_fraction(&self) -> f64 {
        self.stage_timings.overlap_fraction()
    }

    /// The scheduling decisions taken across batches, deduplicated in order —
    /// shows how the engine morphed during a dynamic workload.
    pub fn decision_trace(&self) -> Vec<SchedulingDecision> {
        let mut trace: Vec<SchedulingDecision> = Vec::new();
        for b in &self.batches {
            if trace.last() != Some(&b.decision) {
                trace.push(b.decision);
            }
        }
        trace
    }

    /// Condense the report into plain cumulative counters (plus a few
    /// point-in-time gauges), cheap to take repeatedly while a session runs.
    /// The server's `/metrics` endpoint scrapes these; two snapshots subtract
    /// into a delta with [`ReportSnapshot::delta_since`].
    pub fn snapshot(&self) -> ReportSnapshot {
        let mut latency = self.latency.clone();
        let pct = |l: &mut LatencyRecorder, p: f64| {
            l.percentile(p)
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(0.0)
        };
        ReportSnapshot {
            events: self.events() as u64,
            committed: self.committed as u64,
            aborted: self.aborted as u64,
            redone_ops: self.redone_ops as u64,
            batches: self.batches.len() as u64,
            processing_seconds: self.throughput.elapsed.as_secs_f64(),
            p50_latency_ms: pct(&mut latency, 50.0),
            p95_latency_ms: pct(&mut latency, 95.0),
            peak_bytes_retained: self.memory.peak_bytes(),
            latency: self.latency.histogram(),
            durability: DurabilityCounters::default(),
            operators: self
                .operators
                .iter()
                .map(|op| OperatorCounters {
                    name: op.name.clone(),
                    events: op.events as u64,
                    committed: op.committed as u64,
                    aborted: op.aborted as u64,
                    batches: op.batches as u64,
                })
                .collect(),
            edges: self.edges.clone(),
        }
    }

    /// The counters accumulated since `prev` was taken from this same
    /// session: `snapshot().delta_since(prev)`.
    pub fn snapshot_delta(&self, prev: &ReportSnapshot) -> ReportSnapshot {
        self.snapshot().delta_since(prev)
    }
}

/// Cumulative counters of one operator inside a [`ReportSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorCounters {
    /// Operator (instance) name, e.g. `"spend#1"`.
    pub name: String,
    /// Events ingested and post-processed.
    pub events: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Punctuation batches processed.
    pub batches: u64,
}

impl OperatorCounters {
    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("name", &self.name)
            .unsigned("events", self.events)
            .unsigned("committed", self.committed)
            .unsigned("aborted", self.aborted)
            .unsigned("batches", self.batches)
            .build()
    }
}

/// A point-in-time condensation of a [`RunReport`] into plain counters and
/// gauges: no outputs, no per-event samples — safe to clone, subtract, fold,
/// and serialize however often an observer polls.
///
/// All integer fields are *cumulative counters* within the session the
/// snapshot was taken from; `p50/p95` and `peak_bytes_retained` are gauges
/// describing the session so far. [`ReportSnapshot::delta_since`] subtracts
/// counters (gauges are carried from `self`), and [`ReportSnapshot::fold`]
/// adds counters across session boundaries — how a long-lived server keeps
/// totals while rotating sessions to bound report memory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReportSnapshot {
    /// Events processed (retained plus drained outputs).
    pub events: u64,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Operations redone because of upstream aborts.
    pub redone_ops: u64,
    /// Punctuation batches processed.
    pub batches: u64,
    /// Engine-occupancy processing time summed over batches, in seconds.
    pub processing_seconds: f64,
    /// Median end-to-end event latency (gauge, milliseconds; 0 when empty).
    pub p50_latency_ms: f64,
    /// 95th-percentile end-to-end event latency (gauge, milliseconds).
    pub p95_latency_ms: f64,
    /// Largest state-store footprint observed (gauge, bytes).
    pub peak_bytes_retained: u64,
    /// End-to-end latency distribution as a fixed-bucket histogram — the
    /// fold-able form `/metrics` renders as `_bucket`/`_sum`/`_count` rows.
    pub latency: LatencyHistogram,
    /// Checkpoint/WAL counters (all zero unless the process runs durably).
    pub durability: DurabilityCounters,
    /// Per-operator counters (empty for a single-operator engine).
    pub operators: Vec<OperatorCounters>,
    /// Per-edge back-pressure counters (empty for a single-operator engine).
    pub edges: Vec<EdgeReport>,
}

/// Checkpoint and write-ahead-log counters of a durable process, carried
/// inside [`ReportSnapshot`] so `/metrics` and `fig_topology --json` expose
/// them through the same path as the engine counters. Counter fields are
/// cumulative; the `last_checkpoint_*`/`wal_segments` fields are gauges.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DurabilityCounters {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Bytes of checkpoint files written (incremental sections only).
    pub checkpoint_bytes: u64,
    /// Events appended to the write-ahead input log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead input log.
    pub wal_bytes: u64,
    /// Recoveries performed at startup (0 or 1 per process).
    pub recoveries: u64,
    /// Events replayed from the log during recovery.
    pub recovered_events: u64,
    /// Live WAL segment files (gauge).
    pub wal_segments: u64,
    /// Duration of the most recent checkpoint, in seconds (gauge).
    pub last_checkpoint_seconds: f64,
    /// Time since the most recent checkpoint finished, in seconds (gauge;
    /// negative when no checkpoint was taken yet).
    pub last_checkpoint_age_seconds: f64,
}

impl DurabilityCounters {
    /// Whether any durability activity was recorded.
    pub fn is_active(&self) -> bool {
        self.checkpoints > 0 || self.wal_records > 0 || self.recoveries > 0
    }

    /// Render as one JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .unsigned("checkpoints", self.checkpoints)
            .unsigned("checkpoint_bytes", self.checkpoint_bytes)
            .unsigned("wal_records", self.wal_records)
            .unsigned("wal_bytes", self.wal_bytes)
            .unsigned("recoveries", self.recoveries)
            .unsigned("recovered_events", self.recovered_events)
            .unsigned("wal_segments", self.wal_segments)
            .fixed("last_checkpoint_seconds", self.last_checkpoint_seconds, 6)
            .fixed(
                "last_checkpoint_age_seconds",
                self.last_checkpoint_age_seconds,
                3,
            )
            .build()
    }
}

impl ReportSnapshot {
    /// Overall throughput implied by the counters, in events per second.
    pub fn events_per_second(&self) -> f64 {
        if self.processing_seconds <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.processing_seconds
        }
    }

    /// Counter-wise difference `self - prev` (saturating, so a snapshot from
    /// a fresh session subtracted against an old one never underflows).
    /// Gauges (`p50/p95`, peak bytes) are taken from `self` unchanged;
    /// operator and edge rows are matched by name.
    pub fn delta_since(&self, prev: &ReportSnapshot) -> ReportSnapshot {
        let mut delta = self.clone();
        delta.events = self.events.saturating_sub(prev.events);
        delta.committed = self.committed.saturating_sub(prev.committed);
        delta.aborted = self.aborted.saturating_sub(prev.aborted);
        delta.redone_ops = self.redone_ops.saturating_sub(prev.redone_ops);
        delta.batches = self.batches.saturating_sub(prev.batches);
        delta.processing_seconds = (self.processing_seconds - prev.processing_seconds).max(0.0);
        delta.latency = self.latency.saturating_delta(&prev.latency);
        let d = &mut delta.durability;
        d.checkpoints = self
            .durability
            .checkpoints
            .saturating_sub(prev.durability.checkpoints);
        d.checkpoint_bytes = self
            .durability
            .checkpoint_bytes
            .saturating_sub(prev.durability.checkpoint_bytes);
        d.wal_records = self
            .durability
            .wal_records
            .saturating_sub(prev.durability.wal_records);
        d.wal_bytes = self
            .durability
            .wal_bytes
            .saturating_sub(prev.durability.wal_bytes);
        d.recoveries = self
            .durability
            .recoveries
            .saturating_sub(prev.durability.recoveries);
        d.recovered_events = self
            .durability
            .recovered_events
            .saturating_sub(prev.durability.recovered_events);
        for op in &mut delta.operators {
            if let Some(p) = prev.operators.iter().find(|p| p.name == op.name) {
                op.events = op.events.saturating_sub(p.events);
                op.committed = op.committed.saturating_sub(p.committed);
                op.aborted = op.aborted.saturating_sub(p.aborted);
                op.batches = op.batches.saturating_sub(p.batches);
            }
        }
        for edge in &mut delta.edges {
            if let Some(p) = prev
                .edges
                .iter()
                .find(|p| p.from == edge.from && p.to == edge.to)
            {
                edge.queue_full_waits = edge.queue_full_waits.saturating_sub(p.queue_full_waits);
            }
        }
        delta
    }

    /// Add `other`'s counters into `self` (rows matched by name, unmatched
    /// rows appended); gauges take the maximum of the peaks and `other`'s
    /// latency quantiles when it saw events. This is how a server folds a
    /// finished session's snapshot into its lifetime totals.
    pub fn fold(&mut self, other: &ReportSnapshot) {
        self.events += other.events;
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.redone_ops += other.redone_ops;
        self.batches += other.batches;
        self.processing_seconds += other.processing_seconds;
        if other.events > 0 {
            self.p50_latency_ms = other.p50_latency_ms;
            self.p95_latency_ms = other.p95_latency_ms;
        }
        self.peak_bytes_retained = self.peak_bytes_retained.max(other.peak_bytes_retained);
        self.latency.fold(&other.latency);
        self.durability.checkpoints += other.durability.checkpoints;
        self.durability.checkpoint_bytes += other.durability.checkpoint_bytes;
        self.durability.wal_records += other.durability.wal_records;
        self.durability.wal_bytes += other.durability.wal_bytes;
        self.durability.recoveries += other.durability.recoveries;
        self.durability.recovered_events += other.durability.recovered_events;
        if other.durability.is_active() {
            self.durability.wal_segments = other.durability.wal_segments;
            self.durability.last_checkpoint_seconds = other.durability.last_checkpoint_seconds;
            self.durability.last_checkpoint_age_seconds =
                other.durability.last_checkpoint_age_seconds;
        }
        for op in &other.operators {
            match self.operators.iter_mut().find(|s| s.name == op.name) {
                Some(s) => {
                    s.events += op.events;
                    s.committed += op.committed;
                    s.aborted += op.aborted;
                    s.batches += op.batches;
                }
                None => self.operators.push(op.clone()),
            }
        }
        for edge in &other.edges {
            match self
                .edges
                .iter_mut()
                .find(|s| s.from == edge.from && s.to == edge.to)
            {
                Some(s) => s.queue_full_waits += edge.queue_full_waits,
                None => self.edges.push(edge.clone()),
            }
        }
    }

    /// Render as one JSON object (operator and edge rows nested as arrays),
    /// via the shared [`morphstream_common::json`] path.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .unsigned("events", self.events)
            .unsigned("committed", self.committed)
            .unsigned("aborted", self.aborted)
            .unsigned("redone_ops", self.redone_ops)
            .unsigned("batches", self.batches)
            .fixed("processing_seconds", self.processing_seconds, 6)
            .fixed("events_per_second", self.events_per_second(), 1)
            .fixed("p50_latency_ms", self.p50_latency_ms, 3)
            .fixed("p95_latency_ms", self.p95_latency_ms, 3)
            .unsigned("peak_bytes_retained", self.peak_bytes_retained)
            .raw("durability", self.durability.to_json())
            .array("operators", self.operators.iter().map(|o| o.to_json()))
            .array("edges", self.edges.iter().map(|e| e.to_json()))
            .build()
    }
}

impl<O> Default for RunReport<O> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_summary_computes_throughput_over_processing_time() {
        let b = BatchSummary {
            batch: 0,
            events: 1000,
            committed: 990,
            aborted: 10,
            elapsed: Duration::from_millis(150), // includes pipeline queueing
            decision: SchedulingDecision::default(),
            redone_ops: 0,
            bytes_retained: 0,
            timings: StageTimings {
                construct: Duration::from_millis(40),
                execute: Duration::from_millis(80),
                overlap: Duration::from_millis(20),
            },
        };
        // 40 + 80 - 20 = 100ms of engine occupancy for 1000 events
        assert_eq!(b.processing_time(), Duration::from_millis(100));
        assert!((b.events_per_second() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn decision_trace_deduplicates_consecutive_decisions() {
        let mut report: RunReport<()> = RunReport::new();
        let fine = SchedulingDecision {
            granularity: morphstream_scheduler::Granularity::Fine,
            ..Default::default()
        };
        for (i, d) in [
            SchedulingDecision::default(),
            SchedulingDecision::default(),
            fine,
        ]
        .into_iter()
        .enumerate()
        {
            report.batches.push(BatchSummary {
                batch: i,
                events: 1,
                committed: 1,
                aborted: 0,
                elapsed: Duration::from_millis(1),
                decision: d,
                redone_ops: 0,
                bytes_retained: 0,
                timings: StageTimings::default(),
            });
        }
        assert_eq!(report.decision_trace().len(), 2);
        assert_eq!(report.events(), 0);
        assert_eq!(report.k_events_per_second(), 0.0);
    }

    fn summary(events: usize, committed: usize) -> BatchSummary {
        BatchSummary {
            batch: 0,
            events,
            committed,
            aborted: events - committed,
            elapsed: Duration::from_millis(10),
            decision: SchedulingDecision::default(),
            redone_ops: 1,
            bytes_retained: 512,
            timings: StageTimings {
                construct: Duration::from_millis(4),
                execute: Duration::from_millis(6),
                overlap: Duration::ZERO,
            },
        }
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_gauges() {
        let mut report: RunReport<u64> = RunReport::new();
        report.outputs.extend([1, 2, 3]);
        report.record_batch(summary(3, 2), &Breakdown::new(), Duration::from_millis(10));
        let early = report.snapshot();
        assert_eq!(early.events, 3);
        assert_eq!(early.committed, 2);
        assert_eq!(early.batches, 1);
        assert!(early.p95_latency_ms > 0.0);

        report.drained_outputs += 4; // a sink drained the next batch's outputs
        report.record_batch(summary(4, 4), &Breakdown::new(), Duration::from_millis(20));
        let delta = report.snapshot_delta(&early);
        assert_eq!(delta.events, 4);
        assert_eq!(delta.committed, 4);
        assert_eq!(delta.aborted, 0); // both aborts were in the first batch
        assert_eq!(delta.batches, 1);
        assert!(delta.processing_seconds > 0.0);
        // gauges come from the later snapshot, not a subtraction
        assert_eq!(delta.peak_bytes_retained, 512);
        assert!(delta.p50_latency_ms > 0.0);
    }

    #[test]
    fn snapshot_fold_accumulates_across_sessions() {
        let mut total = ReportSnapshot::default();
        let mut session = ReportSnapshot {
            events: 10,
            committed: 9,
            aborted: 1,
            batches: 2,
            processing_seconds: 0.5,
            p95_latency_ms: 7.0,
            peak_bytes_retained: 100,
            ..Default::default()
        };
        session.operators.push(OperatorCounters {
            name: "op".into(),
            events: 10,
            committed: 9,
            aborted: 1,
            batches: 2,
        });
        session.edges.push(EdgeReport {
            from: "(input)".into(),
            to: "op".into(),
            queue_full_waits: 3,
        });
        total.fold(&session);
        total.fold(&session);
        assert_eq!(total.events, 20);
        assert_eq!(total.committed, 18);
        assert_eq!(total.batches, 4);
        assert_eq!(total.operators.len(), 1);
        assert_eq!(total.operators[0].events, 20);
        assert_eq!(total.edges[0].queue_full_waits, 6);
        assert_eq!(total.peak_bytes_retained, 100);
        assert!((total.events_per_second() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn durability_counters_fold_and_delta_like_the_engine_counters() {
        let mut total = ReportSnapshot::default();
        let live = ReportSnapshot {
            durability: DurabilityCounters {
                checkpoints: 2,
                checkpoint_bytes: 4096,
                wal_records: 100,
                wal_bytes: 2000,
                recoveries: 1,
                recovered_events: 40,
                wal_segments: 3,
                last_checkpoint_seconds: 0.01,
                last_checkpoint_age_seconds: 5.0,
            },
            ..Default::default()
        };
        total.fold(&live);
        total.fold(&live);
        assert_eq!(total.durability.checkpoints, 4);
        assert_eq!(total.durability.wal_records, 200);
        // gauges track the live session, not a sum
        assert_eq!(total.durability.wal_segments, 3);
        assert!((total.durability.last_checkpoint_age_seconds - 5.0).abs() < 1e-9);

        let delta = total.delta_since(&live);
        assert_eq!(delta.durability.checkpoints, 2);
        assert_eq!(delta.durability.recovered_events, 40);
        assert!(delta.durability.is_active());
        assert!(!ReportSnapshot::default().durability.is_active());
        // rendered JSON carries the nested durability object
        let json = live.to_json();
        assert!(json.contains("\"durability\":{\"checkpoints\":2"));
    }

    #[test]
    fn snapshot_latency_histogram_follows_the_recorded_samples() {
        let mut report: RunReport<u64> = RunReport::new();
        report.outputs.extend([1, 2]);
        report.record_batch(summary(2, 2), &Breakdown::new(), Duration::from_millis(5));
        let snap = report.snapshot();
        assert_eq!(snap.latency.count, 2);
        let rows = snap.latency.cumulative_buckets();
        assert_eq!(rows.last().unwrap().1, 2);
    }

    #[test]
    fn snapshot_json_round_trips_top_level_counters() {
        let mut report: RunReport<u64> = RunReport::new();
        report.outputs.extend([7, 8]);
        report.record_batch(summary(2, 2), &Breakdown::new(), Duration::from_millis(5));
        let rendered = report.snapshot().to_json();
        // durability/operators/edges are nested, which the flat parser
        // rejects — strip them for the round-trip check of the scalar
        // counters.
        let scalars = rendered
            .split(",\"durability\":")
            .next()
            .map(|s| format!("{s}}}"))
            .unwrap();
        let map = morphstream_common::json::parse_object(&scalars).unwrap();
        assert_eq!(map["events"].as_u64(), Some(2));
        assert_eq!(map["committed"].as_u64(), Some(2));
        assert_eq!(map["batches"].as_u64(), Some(1));
    }
}
