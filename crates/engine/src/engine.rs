//! The MorphStream engine: punctuation-driven three-stage pipeline
//! (Algorithm 4) built from the architectural components of Figure 10.
//!
//! * The **ProgressController** assigns monotonically increasing timestamps
//!   to events and injects punctuations every `punctuation_interval` events.
//! * The **StreamManager** (pre/post-processing) is realised by calling the
//!   application's [`StreamApp::state_access`] and [`StreamApp::post_process`]
//!   around each batch.
//! * The **TxnManager** builds the TPG (planning stage).
//! * The **TxnScheduler** evaluates the decision model (scheduling stage).
//! * The **TxnExecutor** runs the batch through the executor crate
//!   (execution stage).
//!
//! With [`EngineConfig::pipelined_construction`] enabled the planning stage
//! of punctuation `N+1` runs on a dedicated construction thread while
//! punctuation `N` executes on the worker pool (Section 4.2: construction is
//! meant to overlap event arrival and execution). The two stages are drained
//! by `flush`/`finish`, batches always execute in punctuation order, and the
//! final state is identical to the serial engine; only the timing — reported
//! through [`BatchSummary::timings`] — changes.

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use morphstream_common::metrics::{Breakdown, BreakdownBucket, StageTimings};
use morphstream_common::{EngineConfig, Timestamp};
use morphstream_executor::execute_batch_with_units;
use morphstream_scheduler::{DecisionModel, Granularity, SchedulingDecision, WorkloadObservation};
use morphstream_storage::StateStore;
use morphstream_tpg::{SchedulingUnits, Tpg, TpgBuilder, Transaction, TransactionBatch};

use crate::app::{StreamApp, TxnBuilder};
use crate::pipeline::{BatchHook, PendingBatch, SessionState, TxnEngine};
use crate::report::{BatchSummary, RunReport};

/// Partitioning function assigning each event to a scheduling group (the
/// *nested* configuration of Section 8.2.3).
type GroupFn<E> = Arc<dyn Fn(&E) -> usize + Send + Sync>;

/// How the engine picks scheduling decisions.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulingMode {
    /// Evaluate the heuristic decision model per batch (and per group when
    /// grouped processing is used) — the "Morph" behaviour.
    Adaptive(DecisionModel),
    /// Always use one fixed decision (used by the ablation studies of
    /// Section 8.4 and by the baseline reconstructions).
    Fixed(SchedulingDecision),
}

impl Default for SchedulingMode {
    fn default() -> Self {
        SchedulingMode::Adaptive(DecisionModel::new())
    }
}

/// The monotonic timestamp source of the engine (the ProgressController).
#[derive(Debug, Default)]
struct ProgressController {
    next: Timestamp,
}

impl ProgressController {
    /// Reserve `n` consecutive timestamps and return the first one. The
    /// batch that owns the reservation assigns them in event order, so a
    /// batch can be constructed off-thread while later events keep arriving.
    fn reserve(&mut self, n: usize) -> Timestamp {
        let first = self.next + 1;
        self.next += n as Timestamp;
        first
    }
}

/// A punctuation batch whose stream-processing and planning phases are done:
/// the output of the construction stage, ready for scheduling and execution.
struct ConstructedBatch<E> {
    /// The batch's events, in ingestion order (needed for post-processing).
    events: Vec<E>,
    /// Index of the batch within the session.
    batch_index: usize,
    /// Planned TPG per scheduling group; `None` for groups with no events.
    groups: Vec<Option<Arc<Tpg>>>,
    /// `(group, txn index within group)` of every event.
    txn_locator: Vec<(usize, usize)>,
    /// Highest timestamp assigned to this batch's transactions; versions at
    /// or before it may be reclaimed once the batch committed.
    watermark: Timestamp,
    /// Tables written by this batch — the scope of after-batch reclamation.
    /// Reclamation is per-table because the watermark is only meaningful in
    /// *this* engine's timestamp domain: on a store shared with sibling
    /// operators of a topology, truncating a table the sibling writes would
    /// apply an alien watermark to its version chains.
    written_tables: Vec<morphstream_common::TableId>,
    /// Tables serving windowed accesses in this batch (targets of windowed
    /// reads/writes plus their window parameters); pinned before
    /// reclamation so trailing windows keep their history.
    windowed_tables: Vec<morphstream_common::TableId>,
    /// When the batch was cut from the ingest buffer.
    batch_started: Instant,
    /// Wall-clock interval of the construction stage.
    construct_started: Instant,
    construct_finished: Instant,
}

/// A batch handed to the construction stage.
struct ConstructJob<E> {
    events: Vec<E>,
    batch_index: usize,
    /// First of the `events.len()` timestamps reserved for the batch.
    ts_base: Timestamp,
    batch_started: Instant,
}

/// Decompose `events` into per-group transaction batches and plan their TPGs
/// — the construction stage. Runs on the calling thread in the serial engine
/// and on the dedicated construction thread in the pipelined engine; both
/// paths execute exactly this code, so the modes cannot diverge.
fn construct_batch<A: StreamApp>(
    app: &A,
    planner: &TpgBuilder,
    group_of: &(dyn Fn(&A::Event) -> usize + '_),
    job: ConstructJob<A::Event>,
) -> ConstructedBatch<A::Event> {
    let ConstructJob {
        events,
        batch_index,
        ts_base,
        batch_started,
    } = job;
    let construct_started = Instant::now();

    // ---- Phase 1: stream processing (pre-processing + decomposition) ----
    let mut groups: Vec<TransactionBatch> = Vec::new();
    let mut txn_locator: Vec<(usize, usize)> = Vec::with_capacity(events.len());
    let mut written_tables: Vec<morphstream_common::TableId> = Vec::new();
    let mut windowed_tables: Vec<morphstream_common::TableId> = Vec::new();
    let note = |set: &mut Vec<morphstream_common::TableId>, table: morphstream_common::TableId| {
        if !set.contains(&table) {
            set.push(table);
        }
    };
    for (event_index, event) in events.iter().enumerate() {
        let ts = ts_base + event_index as Timestamp;
        let mut builder = TxnBuilder::new();
        app.state_access(event, &mut builder);
        let ops = builder.into_ops();
        for op in &ops {
            if op.kind.is_write() {
                note(&mut written_tables, op.table);
            }
            if op.kind.is_windowed() {
                note(&mut windowed_tables, op.table);
                for param in &op.params {
                    note(&mut windowed_tables, param.table);
                }
            }
        }
        let txn = Transaction::new(ts, ops).with_event_index(event_index);
        let group = group_of(event);
        while groups.len() <= group {
            groups.push(
                TransactionBatch::new().with_expected_abort_ratio(app.expected_abort_ratio()),
            );
        }
        txn_locator.push((group, groups[group].len()));
        groups[group].push(txn);
    }

    // ---- Phase 2: planning (TPG construction, sharded by state key) ----
    let groups: Vec<Option<Arc<Tpg>>> = groups
        .into_iter()
        .map(|group| {
            if group.is_empty() {
                None
            } else {
                Some(Arc::new(planner.build(group)))
            }
        })
        .collect();

    let watermark = ts_base + events.len().saturating_sub(1) as Timestamp;
    ConstructedBatch {
        events,
        batch_index,
        groups,
        txn_locator,
        watermark,
        written_tables,
        windowed_tables,
        batch_started,
        construct_started,
        construct_finished: Instant::now(),
    }
}

/// The dedicated construction thread plus its two FIFO channels. At most one
/// batch is kept in flight by the engine (submit `N+1`, then execute `N`), so
/// memory stays bounded by two punctuation intervals.
struct ConstructionStage<E> {
    job_tx: Option<mpsc::Sender<ConstructJob<E>>>,
    done_rx: mpsc::Receiver<ConstructedBatch<E>>,
    worker: Option<JoinHandle<()>>,
    in_flight: usize,
}

impl<E: Send + 'static> ConstructionStage<E> {
    fn spawn<A: StreamApp<Event = E>>(
        app: Arc<A>,
        planner: TpgBuilder,
        group_of: GroupFn<E>,
    ) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<ConstructJob<E>>();
        let (done_tx, done_rx) = mpsc::channel();
        let worker = std::thread::Builder::new()
            .name("morph-construct".into())
            .spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    let constructed =
                        construct_batch(app.as_ref(), &planner, group_of.as_ref(), job);
                    if done_tx.send(constructed).is_err() {
                        break; // engine dropped mid-session
                    }
                }
            })
            .expect("failed to spawn the construction thread");
        Self {
            job_tx: Some(job_tx),
            done_rx,
            worker: Some(worker),
            in_flight: 0,
        }
    }

    fn submit(&mut self, job: ConstructJob<E>) {
        let sent = self
            .job_tx
            .as_ref()
            .expect("construction stage already shut down")
            .send(job);
        if sent.is_err() {
            self.propagate_worker_failure();
        }
        self.in_flight += 1;
    }

    /// Block until the oldest in-flight batch is constructed and take it;
    /// returns the batch plus how long the caller waited (pipeline sync
    /// time). `None` when nothing is in flight.
    fn take(&mut self) -> Option<(ConstructedBatch<E>, Duration)> {
        if self.in_flight == 0 {
            return None;
        }
        let wait_started = Instant::now();
        let constructed = match self.done_rx.recv() {
            Ok(constructed) => constructed,
            Err(_) => self.propagate_worker_failure(),
        };
        self.in_flight -= 1;
        Some((constructed, wait_started.elapsed()))
    }

    /// The worker hung up: join it and re-raise its panic with the original
    /// payload (an app panicking in `state_access` during off-thread
    /// construction must surface exactly like it does in the serial engine).
    fn propagate_worker_failure(&mut self) -> ! {
        if let Some(worker) = self.worker.take() {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
        unreachable!("construction thread exited without panicking while channels were open");
    }
}

impl<E> Drop for ConstructionStage<E> {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; join so no thread
        // outlives the engine. Pending results are dropped with `done_rx`.
        self.job_tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Wall-clock intersection of two intervals — how much of a batch's
/// construction ran while another batch was executing.
fn interval_overlap(a: (Instant, Instant), b: (Instant, Instant)) -> Duration {
    let start = a.0.max(b.0);
    let end = a.1.min(b.1);
    end.saturating_duration_since(start)
}

/// The MorphStream engine.
pub struct MorphStream<A: StreamApp> {
    app: Arc<A>,
    store: StateStore,
    config: EngineConfig,
    mode: SchedulingMode,
    progress: ProgressController,
    planner: TpgBuilder,
    group_of: Option<GroupFn<A::Event>>,
    session: SessionState<A::Event, A::Output>,
    /// Lazily spawned construction stage (pipelined mode only).
    construction: Option<ConstructionStage<A::Event>>,
    /// Execution interval of the most recently executed batch, against which
    /// the next batch's construction interval is intersected for the overlap
    /// metric.
    last_execute: Option<(Instant, Instant)>,
}

impl<A: StreamApp> MorphStream<A> {
    /// Create an engine for `app` over `store`.
    pub fn new(app: A, store: StateStore, config: EngineConfig) -> Self {
        let planner = TpgBuilder::new().with_threads(config.construction_threads());
        Self {
            app: Arc::new(app),
            store,
            config,
            mode: SchedulingMode::default(),
            progress: ProgressController::default(),
            planner,
            group_of: None,
            session: SessionState::new(),
            construction: None,
            last_execute: None,
        }
    }

    /// Replace the scheduling mode (adaptive by default).
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_scheduling_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Fix the scheduling decision for every batch.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_fixed_decision(self, decision: SchedulingDecision) -> Self {
        self.with_scheduling_mode(SchedulingMode::Fixed(decision))
    }

    /// Partition ingested transactions into groups by `group_of`; each group
    /// gets its own scheduling decision within a batch (the *nested*
    /// configuration of Section 8.2.3). Applies to pushed sessions
    /// ([`TxnEngine::ingest`] / [`TxnEngine::pipeline`]) and to
    /// [`MorphStream::process`].
    ///
    /// Groups are planned and executed independently, so transactions of
    /// different groups must access disjoint states.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn with_group_fn(
        mut self,
        group_of: impl Fn(&A::Event) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.group_of = Some(Arc::new(group_of));
        self
    }

    /// Shared state store handle.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The application driving this engine.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Process a stream of events, splitting it into punctuation-delimited
    /// batches, and return the run report.
    ///
    /// Convenience wrapper over the push-based session API: equivalent to
    /// pushing every event through [`TxnEngine::pipeline`] and finishing.
    /// Prefer the pipeline in new code — it ingests incrementally from any
    /// iterator instead of requiring the whole stream as a `Vec`.
    pub fn process(&mut self, events: Vec<A::Event>) -> RunReport<A::Output> {
        self.run(events)
    }

    /// Process a stream of events whose transactions are partitioned into
    /// groups by `group_of` (see [`MorphStream::with_group_fn`]). With a
    /// single group this degenerates to [`MorphStream::process`].
    ///
    /// Convenience wrapper over the push-based session, kept for one-shot
    /// grouped runs with a non-`Send` grouping closure; sessions that push
    /// incrementally install the grouping up front with
    /// [`MorphStream::with_group_fn`].
    pub fn process_grouped(
        &mut self,
        events: Vec<A::Event>,
        group_of: impl Fn(&A::Event) -> usize,
    ) -> RunReport<A::Output> {
        // The grouped path runs construction inline (the closure need not be
        // `Send`); drain any batches a pushed pipelined session left in
        // flight first so batches keep executing in punctuation order.
        self.drain_pipeline();
        for event in events {
            self.ingest_with(event, &group_of);
        }
        self.process_pending_serial(&group_of);
        self.finish()
    }

    /// The punctuation interval in events; `usize::MAX` when unset (one
    /// batch per flush).
    fn punctuation_interval(&self) -> usize {
        self.config
            .punctuation_interval
            .unwrap_or(usize::MAX)
            .max(1)
    }

    /// Buffer `event`; crossing the punctuation interval processes the batch
    /// inline with `group_of` (the non-`Send`-closure legacy path).
    fn ingest_with(&mut self, event: A::Event, group_of: &dyn Fn(&A::Event) -> usize) {
        let punctuation = self.punctuation_interval();
        if self.session.ingest(event, punctuation) {
            self.process_pending_serial(group_of);
        }
    }

    /// Construct and execute the buffered events inline as one batch; a
    /// no-op on an empty buffer.
    fn process_pending_serial(&mut self, group_of: &dyn Fn(&A::Event) -> usize) {
        let Some(PendingBatch { events, batch }) = self.session.begin_batch() else {
            return;
        };
        let ts_base = self.progress.reserve(events.len());
        let constructed = construct_batch(
            self.app.as_ref(),
            &self.planner,
            group_of,
            ConstructJob {
                events,
                batch_index: batch,
                ts_base,
                batch_started: Instant::now(),
            },
        );
        self.execute_constructed(constructed, Duration::ZERO);
    }

    /// Hand the buffered events to the construction thread and, while it
    /// builds them, execute the previously constructed batch. Keeps at most
    /// one batch in flight, so memory is bounded by two punctuation
    /// intervals and batches execute strictly in punctuation order.
    fn process_pending_pipelined(&mut self) {
        let Some(PendingBatch { events, batch }) = self.session.begin_batch() else {
            return;
        };
        let ts_base = self.progress.reserve(events.len());
        let job = ConstructJob {
            events,
            batch_index: batch,
            ts_base,
            batch_started: Instant::now(),
        };
        self.construction_stage().submit(job);
        if self.construction.as_ref().is_some_and(|s| s.in_flight > 1) {
            self.execute_next_constructed();
        }
    }

    /// The construction stage, spawned on first use with the app, planner
    /// and grouping function of this engine.
    fn construction_stage(&mut self) -> &mut ConstructionStage<A::Event> {
        if self.construction.is_none() {
            self.construction = Some(ConstructionStage::spawn(
                self.app.clone(),
                self.planner.clone(),
                self.group_fn(),
            ));
        }
        self.construction.as_mut().expect("just initialised")
    }

    /// Take the oldest in-flight constructed batch (blocking on its
    /// construction if needed) and execute it.
    fn execute_next_constructed(&mut self) {
        let taken = self.construction.as_mut().and_then(ConstructionStage::take);
        if let Some((constructed, wait)) = taken {
            self.execute_constructed(constructed, wait);
        }
    }

    /// Execute every batch still in the construction stage, oldest first.
    fn drain_pipeline(&mut self) {
        while self.construction.as_ref().is_some_and(|s| s.in_flight > 0) {
            self.execute_next_constructed();
        }
    }

    /// Scheduling + execution + post-processing of one constructed batch —
    /// the downstream half of the punctuation pipeline. `wait` is how long
    /// the engine blocked on the construction stage (pipeline sync time).
    fn execute_constructed(&mut self, constructed: ConstructedBatch<A::Event>, wait: Duration) {
        let ConstructedBatch {
            events,
            batch_index,
            groups,
            txn_locator,
            watermark,
            written_tables,
            windowed_tables,
            batch_started,
            construct_started,
            construct_finished,
        } = constructed;
        let construct = construct_finished.duration_since(construct_started);
        let mut breakdown = Breakdown::new();
        breakdown.add(BreakdownBucket::Construct, construct);
        breakdown.add(BreakdownBucket::Sync, wait);

        // ---- Scheduling + execution per group ----
        let execute_started = Instant::now();
        let mut execute_in_workers = Duration::ZERO;
        let mut outcomes_per_group = Vec::with_capacity(groups.len());
        let mut decision_of_first_group = None;
        let mut committed = 0usize;
        let mut aborted = 0usize;
        let mut redone_ops = 0usize;
        for tpg in groups {
            let Some(tpg) = tpg else {
                outcomes_per_group.push(Vec::new());
                continue;
            };
            // Scheduling: decision model over the TPG properties.
            let explore_start = Instant::now();
            let coarse_units = SchedulingUnits::coarse(&tpg);
            let decision = match &self.mode {
                SchedulingMode::Fixed(decision) => *decision,
                SchedulingMode::Adaptive(model) => {
                    let observation =
                        WorkloadObservation::new(tpg.stats().clone(), coarse_units.had_cycles);
                    model.decide(&observation)
                }
            };
            let units = match decision.granularity {
                Granularity::Coarse => coarse_units,
                Granularity::Fine => SchedulingUnits::fine(&tpg),
            };
            breakdown.add(BreakdownBucket::Explore, explore_start.elapsed());
            if decision_of_first_group.is_none() {
                decision_of_first_group = Some(decision);
            }

            // Execution.
            let batch_report = execute_batch_with_units(
                tpg,
                units,
                decision,
                &self.store,
                self.config.num_threads,
            );
            breakdown.merge(&batch_report.breakdown);
            execute_in_workers += batch_report.execute_wall;
            committed += batch_report.committed();
            aborted += batch_report.aborted();
            redone_ops += batch_report.redone_ops;
            outcomes_per_group.push(batch_report.outcomes);
        }

        // ---- Post-processing ----
        for (event, (group, txn_idx)) in events.iter().zip(&txn_locator) {
            let outcome = &outcomes_per_group[*group][*txn_idx];
            let output = self.app.post_process(event, outcome);
            self.session.push_output(output);
        }

        // ---- Bookkeeping ----
        // Windowed tables are pinned before any reclamation: a trailing
        // window aggregates historical versions that truncation would drop.
        for table in &windowed_tables {
            let _ = self.store.pin_table(*table);
        }
        // Checkpoint cue: the construction stage already knows which tables
        // this batch touched, so dirty-marking rides on that set instead of
        // relying solely on the per-write flag inside the store.
        self.store.mark_tables_dirty(&written_tables);
        if self.config.reclaim_after_batch {
            // Per-table scope: reclaim only the tables this batch wrote. The
            // watermark lives in this engine's timestamp domain, so on a
            // store shared with sibling operators (each stamping its own
            // domain) it must never be applied to a sibling's tables.
            self.store
                .truncate_tables_before(&written_tables, watermark);
        }
        let execute_interval = (execute_started, Instant::now());
        // Construction time hidden behind the previous batch's execution:
        // zero by construction in the serial engine (the intervals cannot
        // intersect), positive when the pipeline overlapped the stages. The
        // overlap is intersected against the same full-stage interval that
        // `timings.execute` reports, so `overlap <= min(construct, execute)`
        // holds for adjacent batches.
        let overlap = self
            .last_execute
            .map(|prev| interval_overlap((construct_started, construct_finished), prev))
            .unwrap_or(Duration::ZERO);
        self.last_execute = Some(execute_interval);
        // The worker-pool time is a lower bound of the stage wall; the gap is
        // scheduling + post-processing + reclamation overhead.
        debug_assert!(execute_in_workers <= execute_interval.1.duration_since(execute_interval.0));
        let summary = BatchSummary {
            batch: batch_index,
            events: events.len(),
            committed,
            aborted,
            elapsed: batch_started.elapsed(),
            decision: decision_of_first_group.unwrap_or_default(),
            redone_ops,
            bytes_retained: self.store.bytes_retained(),
            timings: StageTimings {
                construct,
                execute: execute_interval.1.duration_since(execute_interval.0),
                overlap,
            },
        };
        self.session.complete_batch(events, summary, &breakdown);
    }

    /// The stored grouping function, defaulting to a single group.
    fn group_fn(&self) -> GroupFn<A::Event> {
        self.group_of
            .clone()
            .unwrap_or_else(|| Arc::new(|_: &A::Event| 0))
    }
}

impl<A: StreamApp> TxnEngine for MorphStream<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn ingest(&mut self, event: A::Event) {
        // The grouping function is only consulted when a batch is cut, so it
        // is resolved lazily — the per-event path is a plain buffer push.
        let punctuation = self.punctuation_interval();
        if self.session.ingest(event, punctuation) {
            if self.config.pipelined_construction {
                self.process_pending_pipelined();
            } else {
                let group_of = self.group_fn();
                self.process_pending_serial(group_of.as_ref());
            }
        }
    }

    fn flush(&mut self) {
        // A flush is a synchronisation point: the trailing partial batch is
        // processed *and* both pipeline stages are drained, so the report
        // covers every pushed event when this returns.
        if self.config.pipelined_construction {
            self.process_pending_pipelined();
            self.drain_pipeline();
        } else {
            let group_of = self.group_fn();
            self.process_pending_serial(group_of.as_ref());
        }
    }

    fn finish(&mut self) -> RunReport<A::Output> {
        TxnEngine::flush(self);
        self.session.finish()
    }

    fn checkpoint(&mut self, sink: &mut dyn crate::pipeline::CheckpointSink) {
        // The flush is the checkpoint barrier: both pipeline stages drain,
        // so the store reflects every pushed event before it is offered.
        TxnEngine::flush(self);
        sink.store(0, &self.store, self.store.take_dirty_tables());
    }

    fn restore(&mut self, source: &mut dyn crate::pipeline::CheckpointSource) {
        source.restore(0, &self.store);
    }

    fn report(&self) -> &RunReport<A::Output> {
        self.session.report()
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.session.set_batch_hook(hook);
    }

    fn set_output_sink(&mut self, sink: Option<crate::pipeline::OutputSink<A::Output>>) {
        self.session.set_output_sink(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_common::{StateRef, TableId, Value};
    use morphstream_executor::TxnOutcome;
    use morphstream_tpg::udfs;

    /// A tiny transfer application used by the engine tests.
    struct Transfers {
        accounts: TableId,
    }

    /// Event: transfer `amount` from one account to another, or deposit.
    enum LedgerEvent {
        Deposit { to: u64, amount: Value },
        Transfer { from: u64, to: u64, amount: Value },
    }

    impl StreamApp for Transfers {
        type Event = LedgerEvent;
        type Output = bool;

        fn state_access(&self, event: &LedgerEvent, txn: &mut TxnBuilder) {
            match event {
                LedgerEvent::Deposit { to, amount } => {
                    txn.write(self.accounts, *to, udfs::add_delta(*amount));
                }
                LedgerEvent::Transfer { from, to, amount } => {
                    txn.write(self.accounts, *from, udfs::withdraw(*amount));
                    txn.write_with_params(
                        self.accounts,
                        *to,
                        vec![StateRef::new(self.accounts, *from)],
                        udfs::credit_if_param_at_least(*amount, *amount),
                    );
                }
            }
        }

        fn post_process(&self, _event: &LedgerEvent, outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    fn setup(initial_balance: Value) -> (StateStore, TableId) {
        let store = StateStore::new();
        let accounts = store.create_table("accounts", initial_balance, false);
        store.preallocate_range(accounts, 64).unwrap();
        (store, accounts)
    }

    fn transfer_events(n: u64) -> Vec<LedgerEvent> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    LedgerEvent::Deposit {
                        to: i % 64,
                        amount: 10,
                    }
                } else {
                    LedgerEvent::Transfer {
                        from: i % 64,
                        to: (i * 13 + 7) % 64,
                        amount: 5,
                    }
                }
            })
            .collect()
    }

    fn total_balance(store: &StateStore, accounts: TableId) -> Value {
        store
            .snapshot_latest(accounts)
            .unwrap()
            .values()
            .sum::<Value>()
    }

    #[test]
    fn adaptive_engine_processes_batches_and_preserves_invariants() {
        let (store, accounts) = setup(1_000);
        let deposits_expected: Value = transfer_events(300)
            .iter()
            .filter_map(|e| match e {
                LedgerEvent::Deposit { amount, .. } => Some(*amount),
                _ => None,
            })
            .sum();
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(64),
        );
        let report = engine.process(transfer_events(300));
        assert_eq!(report.events(), 300);
        assert_eq!(report.committed + report.aborted, 300);
        assert!(report.batches.len() >= 4);
        assert!(report.k_events_per_second() > 0.0);
        assert!(report.latency.len() == 300);
        // Transfers preserve the total; only committed deposits add money. No
        // transfer can abort here (balances stay positive), so the total is
        // the initial amount plus all deposits.
        assert_eq!(report.aborted, 0);
        assert_eq!(
            total_balance(&store, accounts),
            64 * 1_000 + deposits_expected
        );
    }

    #[test]
    fn fixed_decisions_produce_the_same_final_state_as_adaptive() {
        let decisions = SchedulingDecision::all();
        let (reference_store, accounts) = setup(500);
        let mut reference = MorphStream::new(
            Transfers { accounts },
            reference_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(50),
        );
        reference.process(transfer_events(200));
        let expected = reference_store.snapshot_latest(accounts).unwrap();

        for decision in decisions {
            let (store, accounts) = setup(500);
            let mut engine = MorphStream::new(
                Transfers { accounts },
                store.clone(),
                EngineConfig::with_threads(4).with_punctuation_interval(50),
            )
            .with_fixed_decision(decision);
            engine.process(transfer_events(200));
            assert_eq!(
                store.snapshot_latest(accounts).unwrap(),
                expected,
                "decision {decision} diverged from the reference state"
            );
        }
    }

    #[test]
    fn grouped_processing_assigns_separate_decisions() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let report = engine.process_grouped(transfer_events(200), |e| match e {
            LedgerEvent::Deposit { .. } => 0,
            LedgerEvent::Transfer { .. } => 1,
        });
        assert_eq!(report.events(), 200);
        assert_eq!(report.committed + report.aborted, 200);
    }

    #[test]
    fn reclamation_bounds_memory_growth() {
        let (store_keep, accounts) = setup(100);
        let mut keep = MorphStream::new(
            Transfers { accounts },
            store_keep.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(50)
                .with_reclaim_after_batch(false),
        );
        keep.process(transfer_events(400));

        let (store_reclaim, accounts) = setup(100);
        let mut reclaim = MorphStream::new(
            Transfers { accounts },
            store_reclaim.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(50)
                .with_reclaim_after_batch(true),
        );
        reclaim.process(transfer_events(400));

        assert!(store_reclaim.version_count() < store_keep.version_count());
        // final balances identical
        assert_eq!(
            store_reclaim.snapshot_latest(accounts).unwrap(),
            store_keep.snapshot_latest(accounts).unwrap()
        );
    }

    #[test]
    fn reclamation_is_per_table_and_pins_windowed_tables() {
        /// Writes a hot counter table every event; every fourth event also
        /// appends to a log table and window-reads its full history.
        struct WindowedTail {
            hot: TableId,
            log: TableId,
        }
        impl StreamApp for WindowedTail {
            type Event = u64;
            type Output = Value;
            fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
                txn.write(self.hot, *event % 8, udfs::add_delta(1));
                if event.is_multiple_of(4) {
                    txn.write(self.log, 0, udfs::add_delta(1));
                    txn.window_read(self.log, 0, 1 << 30, udfs::window_sum());
                }
            }
            fn post_process(&self, _event: &u64, outcome: &TxnOutcome) -> Value {
                outcome.committed as Value
            }
        }

        let store = StateStore::new();
        let hot = store.create_table("hot", 0, true);
        let log = store.create_table("log", 0, true);
        let mut engine = MorphStream::new(
            WindowedTail { hot, log },
            store.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(32)
                .with_reclaim_after_batch(true),
        );
        let report = engine.run(0..256u64);
        assert_eq!(report.committed, 256);
        // the hot table was reclaimed down to roughly one version per key…
        assert!(store.table(hot).unwrap().version_count() < 32);
        // …while the windowed log was pinned: its full history survives
        assert!(store.table(log).unwrap().is_pinned());
        assert_eq!(
            store.window_values(log, 0, 1, u64::MAX).unwrap().len(),
            64 // one log append per 4 events
        );
    }

    #[test]
    fn abort_ratio_is_reported_when_withdrawals_fail() {
        let (store, accounts) = setup(0); // zero balances: every transfer aborts
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(32),
        );
        let events: Vec<LedgerEvent> = (0..64)
            .map(|i| LedgerEvent::Transfer {
                from: i % 8,
                to: (i + 1) % 8,
                amount: 100,
            })
            .collect();
        let report = engine.process(events);
        assert_eq!(report.aborted, 64);
        assert_eq!(report.committed, 0);
        // no money was created or destroyed by the aborted transfers
        assert_eq!(total_balance(&store, accounts), 0);
        // outputs reflect the aborts
        assert!(report.outputs.iter().all(|committed| !committed));
    }

    #[test]
    fn empty_stream_finishes_with_a_well_formed_report() {
        let (store, accounts) = setup(100);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(8),
        );
        let report = engine.pipeline().finish();
        assert_eq!(report.events(), 0);
        assert_eq!(report.committed, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.batches.is_empty());
        assert_eq!(report.k_events_per_second(), 0.0);
        assert!(report.decision_trace().is_empty());
        assert_eq!(report.latency.len(), 0);
        // the legacy wrapper behaves identically
        let report = engine.process(Vec::new());
        assert_eq!(report.events(), 0);
        assert!(report.batches.is_empty());
    }

    #[test]
    fn pushed_session_matches_process_and_fires_batch_hook() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let (ref_store, accounts) = setup(1_000);
        let mut reference = MorphStream::new(
            Transfers { accounts },
            ref_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let expected = reference.process(transfer_events(300));

        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        let mut pipeline = engine.pipeline().on_batch(move |batch| {
            assert!(batch.events <= 64);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for event in transfer_events(300) {
            pipeline.push(event);
        }
        let report = pipeline.finish();
        assert_eq!(report.events(), 300);
        assert_eq!(report.batches.len(), expected.batches.len());
        assert_eq!(fired.load(Ordering::Relaxed), report.batches.len());
        assert_eq!(report.committed, expected.committed);
        assert_eq!(report.aborted, expected.aborted);
        assert_eq!(report.outputs, expected.outputs);
        assert_eq!(
            store.snapshot_latest(accounts).unwrap(),
            ref_store.snapshot_latest(accounts).unwrap()
        );
    }

    #[test]
    fn sessions_are_reusable_after_finish() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(32),
        );
        let first = engine.run(transfer_events(50));
        let second = engine.run(transfer_events(50));
        assert_eq!(first.events(), 50);
        assert_eq!(second.events(), 50);
        // batch indices restart per session; timestamps keep advancing
        assert_eq!(second.batches.first().map(|b| b.batch), Some(0));
    }

    #[test]
    fn pipelined_construction_matches_the_serial_engine_exactly() {
        let (ref_store, accounts) = setup(1_000);
        let mut reference = MorphStream::new(
            Transfers { accounts },
            ref_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let expected = reference.process(transfer_events(500));

        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(64)
                .with_pipelined_construction(true),
        );
        let report = engine.process(transfer_events(500));

        assert_eq!(report.events(), expected.events());
        assert_eq!(report.committed, expected.committed);
        assert_eq!(report.aborted, expected.aborted);
        assert_eq!(report.outputs, expected.outputs);
        assert_eq!(report.batches.len(), expected.batches.len());
        // batches completed in punctuation order
        let order: Vec<usize> = report.batches.iter().map(|b| b.batch).collect();
        assert_eq!(order, (0..report.batches.len()).collect::<Vec<_>>());
        assert_eq!(
            store.snapshot_latest(accounts).unwrap(),
            ref_store.snapshot_latest(accounts).unwrap()
        );
        // stage timings were recorded; the serial reference hides nothing
        assert!(report.stage_timings.construct > std::time::Duration::ZERO);
        assert_eq!(expected.stage_timings.overlap, std::time::Duration::ZERO);
    }

    #[test]
    fn pipelined_sessions_stay_reusable_and_flush_drains_both_stages() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2)
                .with_punctuation_interval(32)
                .with_pipelined_construction(true),
        );
        let mut pipeline = engine.pipeline();
        pipeline.push_iter(transfer_events(100));
        pipeline.flush();
        // after a flush both stages are drained: the report is complete
        assert_eq!(pipeline.report().events(), 100);
        let first = pipeline.finish();
        assert_eq!(first.events(), 100);
        let second = engine.run(transfer_events(50));
        assert_eq!(second.events(), 50);
        assert_eq!(second.batches.first().map(|b| b.batch), Some(0));
    }

    #[test]
    fn construction_thread_panics_propagate_with_the_original_payload() {
        struct Exploder {
            accounts: TableId,
        }
        impl StreamApp for Exploder {
            type Event = u64;
            type Output = bool;
            fn state_access(&self, event: &u64, txn: &mut TxnBuilder) {
                assert!(*event != 42, "boom on event 42");
                txn.write(self.accounts, *event % 8, udfs::add_delta(1));
            }
            fn post_process(&self, _event: &u64, outcome: &TxnOutcome) -> bool {
                outcome.committed
            }
        }
        let (store, accounts) = setup(100);
        let mut engine = MorphStream::new(
            Exploder { accounts },
            store,
            EngineConfig::with_threads(2)
                .with_punctuation_interval(8)
                .with_pipelined_construction(true),
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run((0..64).collect::<Vec<u64>>())
        }));
        let payload = result.expect_err("the app panic must surface");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            message.contains("boom on event 42"),
            "panic payload was replaced: {message:?}"
        );
    }

    #[test]
    fn construction_threads_knob_controls_the_planner() {
        let (store, accounts) = setup(100);
        let engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(4).with_construction_threads(2),
        );
        assert_eq!(engine.planner.threads(), 2);
        let (store, accounts) = setup(100);
        let engine = MorphStream::new(Transfers { accounts }, store, EngineConfig::with_threads(3));
        assert_eq!(engine.planner.threads(), 3);
    }

    #[test]
    fn decision_trace_reports_morphing() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let report = engine.process(transfer_events(128));
        assert!(!report.decision_trace().is_empty());
        assert_eq!(report.batches.len(), 2);
    }
}
