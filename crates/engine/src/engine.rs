//! The MorphStream engine: punctuation-driven three-stage pipeline
//! (Algorithm 4) built from the architectural components of Figure 10.
//!
//! * The **ProgressController** assigns monotonically increasing timestamps
//!   to events and injects punctuations every `punctuation_interval` events.
//! * The **StreamManager** (pre/post-processing) is realised by calling the
//!   application's [`StreamApp::state_access`] and [`StreamApp::post_process`]
//!   around each batch.
//! * The **TxnManager** builds the TPG (planning stage).
//! * The **TxnScheduler** evaluates the decision model (scheduling stage).
//! * The **TxnExecutor** runs the batch through the executor crate
//!   (execution stage).

use std::sync::Arc;
use std::time::Instant;

use morphstream_common::metrics::{Breakdown, BreakdownBucket};
use morphstream_common::{EngineConfig, Timestamp};
use morphstream_executor::execute_batch_with_units;
use morphstream_scheduler::{DecisionModel, Granularity, SchedulingDecision, WorkloadObservation};
use morphstream_storage::StateStore;
use morphstream_tpg::{SchedulingUnits, TpgBuilder, Transaction, TransactionBatch};

use crate::app::{StreamApp, TxnBuilder};
use crate::pipeline::{BatchHook, PendingBatch, SessionState, TxnEngine};
use crate::report::{BatchSummary, RunReport};

/// Partitioning function assigning each event to a scheduling group (the
/// *nested* configuration of Section 8.2.3).
type GroupFn<E> = Arc<dyn Fn(&E) -> usize + Send + Sync>;

/// How the engine picks scheduling decisions.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulingMode {
    /// Evaluate the heuristic decision model per batch (and per group when
    /// grouped processing is used) — the "Morph" behaviour.
    Adaptive(DecisionModel),
    /// Always use one fixed decision (used by the ablation studies of
    /// Section 8.4 and by the baseline reconstructions).
    Fixed(SchedulingDecision),
}

impl Default for SchedulingMode {
    fn default() -> Self {
        SchedulingMode::Adaptive(DecisionModel::new())
    }
}

/// The monotonic timestamp source of the engine (the ProgressController).
#[derive(Debug, Default)]
struct ProgressController {
    next: Timestamp,
}

impl ProgressController {
    fn next_timestamp(&mut self) -> Timestamp {
        self.next += 1;
        self.next
    }

    fn high_watermark(&self) -> Timestamp {
        self.next
    }
}

/// The MorphStream engine.
pub struct MorphStream<A: StreamApp> {
    app: Arc<A>,
    store: StateStore,
    config: EngineConfig,
    mode: SchedulingMode,
    progress: ProgressController,
    planner: TpgBuilder,
    group_of: Option<GroupFn<A::Event>>,
    session: SessionState<A::Event, A::Output>,
}

impl<A: StreamApp> MorphStream<A> {
    /// Create an engine for `app` over `store`.
    pub fn new(app: A, store: StateStore, config: EngineConfig) -> Self {
        let planner = TpgBuilder::new().with_threads(config.num_threads);
        Self {
            app: Arc::new(app),
            store,
            config,
            mode: SchedulingMode::default(),
            progress: ProgressController::default(),
            planner,
            group_of: None,
            session: SessionState::new(),
        }
    }

    /// Replace the scheduling mode (adaptive by default).
    pub fn with_scheduling_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Fix the scheduling decision for every batch.
    pub fn with_fixed_decision(self, decision: SchedulingDecision) -> Self {
        self.with_scheduling_mode(SchedulingMode::Fixed(decision))
    }

    /// Partition ingested transactions into groups by `group_of`; each group
    /// gets its own scheduling decision within a batch (the *nested*
    /// configuration of Section 8.2.3). Applies to pushed sessions
    /// ([`TxnEngine::ingest`] / [`TxnEngine::pipeline`]) and to
    /// [`MorphStream::process`].
    ///
    /// Groups are planned and executed independently, so transactions of
    /// different groups must access disjoint states.
    pub fn with_group_fn(
        mut self,
        group_of: impl Fn(&A::Event) -> usize + Send + Sync + 'static,
    ) -> Self {
        self.group_of = Some(Arc::new(group_of));
        self
    }

    /// Shared state store handle.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The application driving this engine.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Process a stream of events, splitting it into punctuation-delimited
    /// batches, and return the run report.
    ///
    /// Convenience wrapper over the push-based session API: equivalent to
    /// pushing every event through [`TxnEngine::pipeline`] and finishing.
    /// Prefer the pipeline in new code — it ingests incrementally from any
    /// iterator instead of requiring the whole stream as a `Vec`.
    pub fn process(&mut self, events: Vec<A::Event>) -> RunReport<A::Output> {
        self.run(events)
    }

    /// Process a stream of events whose transactions are partitioned into
    /// groups by `group_of` (see [`MorphStream::with_group_fn`]). With a
    /// single group this degenerates to [`MorphStream::process`].
    ///
    /// Convenience wrapper over the push-based session, kept for one-shot
    /// grouped runs with a non-`Send` grouping closure; sessions that push
    /// incrementally install the grouping up front with
    /// [`MorphStream::with_group_fn`].
    pub fn process_grouped(
        &mut self,
        events: Vec<A::Event>,
        group_of: impl Fn(&A::Event) -> usize,
    ) -> RunReport<A::Output> {
        for event in events {
            self.ingest_with(event, &group_of);
        }
        self.process_pending(&group_of);
        self.finish()
    }

    /// The punctuation interval in events; `usize::MAX` when unset (one
    /// batch per flush).
    fn punctuation_interval(&self) -> usize {
        self.config
            .punctuation_interval
            .unwrap_or(usize::MAX)
            .max(1)
    }

    /// Buffer `event`; crossing the punctuation interval processes the batch.
    fn ingest_with(&mut self, event: A::Event, group_of: &dyn Fn(&A::Event) -> usize) {
        let punctuation = self.punctuation_interval();
        if self.session.ingest(event, punctuation) {
            self.process_pending(group_of);
        }
    }

    /// Process the buffered events as a (possibly partial) batch; a no-op on
    /// an empty buffer.
    fn process_pending(&mut self, group_of: &dyn Fn(&A::Event) -> usize) {
        let Some(PendingBatch { events, batch }) = self.session.begin_batch() else {
            return;
        };
        let (summary, breakdown) = self.process_batch(&events, group_of, batch);
        self.session.complete_batch(events, summary, &breakdown);
    }

    fn process_batch(
        &mut self,
        events: &[A::Event],
        group_of: &dyn Fn(&A::Event) -> usize,
        batch_index: usize,
    ) -> (BatchSummary, Breakdown) {
        let batch_started = Instant::now();
        let mut breakdown = Breakdown::new();

        // ---- Phase 1: stream processing (pre-processing + decomposition) ----
        let construct_start = Instant::now();
        let mut groups: Vec<TransactionBatch> = Vec::new();
        let mut txn_locator: Vec<(usize, usize)> = Vec::with_capacity(events.len());
        for (event_index, event) in events.iter().enumerate() {
            let ts = self.progress.next_timestamp();
            let mut builder = TxnBuilder::new();
            self.app.state_access(event, &mut builder);
            let txn = Transaction::new(ts, builder.into_ops()).with_event_index(event_index);
            let group = group_of(event);
            while groups.len() <= group {
                groups.push(
                    TransactionBatch::new()
                        .with_expected_abort_ratio(self.app.expected_abort_ratio()),
                );
            }
            txn_locator.push((group, groups[group].len()));
            groups[group].push(txn);
        }
        breakdown.add(BreakdownBucket::Construct, construct_start.elapsed());

        // ---- Phases 2+3 per group: planning, scheduling, execution ----
        let mut outcomes_per_group = Vec::with_capacity(groups.len());
        let mut decision_of_first_group = None;
        let mut committed = 0usize;
        let mut aborted = 0usize;
        let mut redone_ops = 0usize;
        for group in groups {
            if group.is_empty() {
                outcomes_per_group.push(Vec::new());
                continue;
            }
            // Planning: TPG construction.
            let construct_start = Instant::now();
            let tpg = Arc::new(self.planner.build(group));
            breakdown.add(BreakdownBucket::Construct, construct_start.elapsed());

            // Scheduling: decision model over the TPG properties.
            let explore_start = Instant::now();
            let coarse_units = SchedulingUnits::coarse(&tpg);
            let decision = match &self.mode {
                SchedulingMode::Fixed(decision) => *decision,
                SchedulingMode::Adaptive(model) => {
                    let observation =
                        WorkloadObservation::new(tpg.stats().clone(), coarse_units.had_cycles);
                    model.decide(&observation)
                }
            };
            let units = match decision.granularity {
                Granularity::Coarse => coarse_units,
                Granularity::Fine => SchedulingUnits::fine(&tpg),
            };
            breakdown.add(BreakdownBucket::Explore, explore_start.elapsed());
            if decision_of_first_group.is_none() {
                decision_of_first_group = Some(decision);
            }

            // Execution.
            let batch_report = execute_batch_with_units(
                tpg,
                units,
                decision,
                &self.store,
                self.config.num_threads,
            );
            breakdown.merge(&batch_report.breakdown);
            committed += batch_report.committed();
            aborted += batch_report.aborted();
            redone_ops += batch_report.redone_ops;
            outcomes_per_group.push(batch_report.outcomes);
        }

        // ---- Post-processing ----
        for (event, (group, txn_idx)) in events.iter().zip(&txn_locator) {
            let outcome = &outcomes_per_group[*group][*txn_idx];
            let output = self.app.post_process(event, outcome);
            self.session.push_output(output);
        }

        // ---- Bookkeeping ----
        if self.config.reclaim_after_batch {
            self.store.truncate_before(self.progress.high_watermark());
        }
        let summary = BatchSummary {
            batch: batch_index,
            events: events.len(),
            committed,
            aborted,
            elapsed: batch_started.elapsed(),
            decision: decision_of_first_group.unwrap_or_default(),
            redone_ops,
            bytes_retained: self.store.bytes_retained(),
        };
        (summary, breakdown)
    }

    /// The stored grouping function, defaulting to a single group.
    fn group_fn(&self) -> GroupFn<A::Event> {
        self.group_of
            .clone()
            .unwrap_or_else(|| Arc::new(|_: &A::Event| 0))
    }
}

impl<A: StreamApp> TxnEngine for MorphStream<A> {
    type Event = A::Event;
    type Output = A::Output;

    fn ingest(&mut self, event: A::Event) {
        // The grouping function is only consulted when a batch is cut, so it
        // is resolved lazily — the per-event path is a plain buffer push.
        let punctuation = self.punctuation_interval();
        if self.session.ingest(event, punctuation) {
            let group_of = self.group_fn();
            self.process_pending(group_of.as_ref());
        }
    }

    fn flush(&mut self) {
        let group_of = self.group_fn();
        self.process_pending(group_of.as_ref());
    }

    fn finish(&mut self) -> RunReport<A::Output> {
        TxnEngine::flush(self);
        self.session.finish()
    }

    fn report(&self) -> &RunReport<A::Output> {
        self.session.report()
    }

    fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.session.set_batch_hook(hook);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morphstream_common::{StateRef, TableId, Value};
    use morphstream_executor::TxnOutcome;
    use morphstream_tpg::udfs;

    /// A tiny transfer application used by the engine tests.
    struct Transfers {
        accounts: TableId,
    }

    /// Event: transfer `amount` from one account to another, or deposit.
    enum LedgerEvent {
        Deposit { to: u64, amount: Value },
        Transfer { from: u64, to: u64, amount: Value },
    }

    impl StreamApp for Transfers {
        type Event = LedgerEvent;
        type Output = bool;

        fn state_access(&self, event: &LedgerEvent, txn: &mut TxnBuilder) {
            match event {
                LedgerEvent::Deposit { to, amount } => {
                    txn.write(self.accounts, *to, udfs::add_delta(*amount));
                }
                LedgerEvent::Transfer { from, to, amount } => {
                    txn.write(self.accounts, *from, udfs::withdraw(*amount));
                    txn.write_with_params(
                        self.accounts,
                        *to,
                        vec![StateRef::new(self.accounts, *from)],
                        udfs::credit_if_param_at_least(*amount, *amount),
                    );
                }
            }
        }

        fn post_process(&self, _event: &LedgerEvent, outcome: &TxnOutcome) -> bool {
            outcome.committed
        }
    }

    fn setup(initial_balance: Value) -> (StateStore, TableId) {
        let store = StateStore::new();
        let accounts = store.create_table("accounts", initial_balance, false);
        store.preallocate_range(accounts, 64).unwrap();
        (store, accounts)
    }

    fn transfer_events(n: u64) -> Vec<LedgerEvent> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    LedgerEvent::Deposit {
                        to: i % 64,
                        amount: 10,
                    }
                } else {
                    LedgerEvent::Transfer {
                        from: i % 64,
                        to: (i * 13 + 7) % 64,
                        amount: 5,
                    }
                }
            })
            .collect()
    }

    fn total_balance(store: &StateStore, accounts: TableId) -> Value {
        store
            .snapshot_latest(accounts)
            .unwrap()
            .values()
            .sum::<Value>()
    }

    #[test]
    fn adaptive_engine_processes_batches_and_preserves_invariants() {
        let (store, accounts) = setup(1_000);
        let deposits_expected: Value = transfer_events(300)
            .iter()
            .filter_map(|e| match e {
                LedgerEvent::Deposit { amount, .. } => Some(*amount),
                _ => None,
            })
            .sum();
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(4).with_punctuation_interval(64),
        );
        let report = engine.process(transfer_events(300));
        assert_eq!(report.events(), 300);
        assert_eq!(report.committed + report.aborted, 300);
        assert!(report.batches.len() >= 4);
        assert!(report.k_events_per_second() > 0.0);
        assert!(report.latency.len() == 300);
        // Transfers preserve the total; only committed deposits add money. No
        // transfer can abort here (balances stay positive), so the total is
        // the initial amount plus all deposits.
        assert_eq!(report.aborted, 0);
        assert_eq!(
            total_balance(&store, accounts),
            64 * 1_000 + deposits_expected
        );
    }

    #[test]
    fn fixed_decisions_produce_the_same_final_state_as_adaptive() {
        let decisions = SchedulingDecision::all();
        let (reference_store, accounts) = setup(500);
        let mut reference = MorphStream::new(
            Transfers { accounts },
            reference_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(50),
        );
        reference.process(transfer_events(200));
        let expected = reference_store.snapshot_latest(accounts).unwrap();

        for decision in decisions {
            let (store, accounts) = setup(500);
            let mut engine = MorphStream::new(
                Transfers { accounts },
                store.clone(),
                EngineConfig::with_threads(4).with_punctuation_interval(50),
            )
            .with_fixed_decision(decision);
            engine.process(transfer_events(200));
            assert_eq!(
                store.snapshot_latest(accounts).unwrap(),
                expected,
                "decision {decision} diverged from the reference state"
            );
        }
    }

    #[test]
    fn grouped_processing_assigns_separate_decisions() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(100),
        );
        let report = engine.process_grouped(transfer_events(200), |e| match e {
            LedgerEvent::Deposit { .. } => 0,
            LedgerEvent::Transfer { .. } => 1,
        });
        assert_eq!(report.events(), 200);
        assert_eq!(report.committed + report.aborted, 200);
    }

    #[test]
    fn reclamation_bounds_memory_growth() {
        let (store_keep, accounts) = setup(100);
        let mut keep = MorphStream::new(
            Transfers { accounts },
            store_keep.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(50)
                .with_reclaim_after_batch(false),
        );
        keep.process(transfer_events(400));

        let (store_reclaim, accounts) = setup(100);
        let mut reclaim = MorphStream::new(
            Transfers { accounts },
            store_reclaim.clone(),
            EngineConfig::with_threads(2)
                .with_punctuation_interval(50)
                .with_reclaim_after_batch(true),
        );
        reclaim.process(transfer_events(400));

        assert!(store_reclaim.version_count() < store_keep.version_count());
        // final balances identical
        assert_eq!(
            store_reclaim.snapshot_latest(accounts).unwrap(),
            store_keep.snapshot_latest(accounts).unwrap()
        );
    }

    #[test]
    fn abort_ratio_is_reported_when_withdrawals_fail() {
        let (store, accounts) = setup(0); // zero balances: every transfer aborts
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(32),
        );
        let events: Vec<LedgerEvent> = (0..64)
            .map(|i| LedgerEvent::Transfer {
                from: i % 8,
                to: (i + 1) % 8,
                amount: 100,
            })
            .collect();
        let report = engine.process(events);
        assert_eq!(report.aborted, 64);
        assert_eq!(report.committed, 0);
        // no money was created or destroyed by the aborted transfers
        assert_eq!(total_balance(&store, accounts), 0);
        // outputs reflect the aborts
        assert!(report.outputs.iter().all(|committed| !committed));
    }

    #[test]
    fn empty_stream_finishes_with_a_well_formed_report() {
        let (store, accounts) = setup(100);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(8),
        );
        let report = engine.pipeline().finish();
        assert_eq!(report.events(), 0);
        assert_eq!(report.committed, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.batches.is_empty());
        assert_eq!(report.k_events_per_second(), 0.0);
        assert!(report.decision_trace().is_empty());
        assert_eq!(report.latency.len(), 0);
        // the legacy wrapper behaves identically
        let report = engine.process(Vec::new());
        assert_eq!(report.events(), 0);
        assert!(report.batches.is_empty());
    }

    #[test]
    fn pushed_session_matches_process_and_fires_batch_hook() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let (ref_store, accounts) = setup(1_000);
        let mut reference = MorphStream::new(
            Transfers { accounts },
            ref_store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let expected = reference.process(transfer_events(300));

        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store.clone(),
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        let mut pipeline = engine.pipeline().on_batch(move |batch| {
            assert!(batch.events <= 64);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        for event in transfer_events(300) {
            pipeline.push(event);
        }
        let report = pipeline.finish();
        assert_eq!(report.events(), 300);
        assert_eq!(report.batches.len(), expected.batches.len());
        assert_eq!(fired.load(Ordering::Relaxed), report.batches.len());
        assert_eq!(report.committed, expected.committed);
        assert_eq!(report.aborted, expected.aborted);
        assert_eq!(report.outputs, expected.outputs);
        assert_eq!(
            store.snapshot_latest(accounts).unwrap(),
            ref_store.snapshot_latest(accounts).unwrap()
        );
    }

    #[test]
    fn sessions_are_reusable_after_finish() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(32),
        );
        let first = engine.run(transfer_events(50));
        let second = engine.run(transfer_events(50));
        assert_eq!(first.events(), 50);
        assert_eq!(second.events(), 50);
        // batch indices restart per session; timestamps keep advancing
        assert_eq!(second.batches.first().map(|b| b.batch), Some(0));
    }

    #[test]
    fn decision_trace_reports_morphing() {
        let (store, accounts) = setup(1_000);
        let mut engine = MorphStream::new(
            Transfers { accounts },
            store,
            EngineConfig::with_threads(2).with_punctuation_interval(64),
        );
        let report = engine.process(transfer_events(128));
        assert!(!report.decision_trace().is_empty());
        assert_eq!(report.batches.len(), 2);
    }
}
