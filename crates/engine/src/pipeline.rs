//! Push-based streaming ingestion: the [`TxnEngine`] trait and the
//! [`Pipeline`] session wrapper.
//!
//! The paper's engine is punctuation-driven: events arrive continuously, the
//! ProgressController injects punctuations, and each delimited batch flows
//! through planning → scheduling → execution (Algorithm 4). [`TxnEngine`]
//! captures exactly that contract — events are *ingested* one at a time, the
//! engine cuts a batch internally every time the punctuation interval is
//! crossed, and a [`RunReport`] accumulates until the session is *finished*.
//! [`Pipeline`] is the ergonomic session handle over any such engine.
//!
//! The pull-style `process(Vec<Event>)` helpers remain as thin convenience
//! wrappers, but new code should push:
//!
//! ```
//! use morphstream::storage::StateStore;
//! use morphstream::{udfs, EngineConfig, MorphStream, StreamApp, TxnBuilder, TxnEngine};
//!
//! /// Counts occurrences of words in a stream.
//! struct WordCount {
//!     words: morphstream_common::TableId,
//! }
//!
//! impl StreamApp for WordCount {
//!     type Event = u64;
//!     type Output = bool;
//!
//!     fn state_access(&self, word: &u64, txn: &mut TxnBuilder) {
//!         txn.write(self.words, *word, udfs::add_delta(1));
//!     }
//!
//!     fn post_process(&self, _word: &u64, outcome: &morphstream::TxnOutcome) -> bool {
//!         outcome.committed
//!     }
//! }
//!
//! let store = StateStore::new();
//! let words = store.create_table("words", 0, true);
//! let mut engine = MorphStream::new(
//!     WordCount { words },
//!     store.clone(),
//!     EngineConfig::with_threads(2).with_punctuation_interval(3),
//! );
//!
//! // Open a push session: every third event crosses a punctuation and is
//! // batch-processed internally; `on_batch` observes each batch as it lands.
//! let mut pipeline = engine.pipeline().on_batch(|batch| {
//!     assert!(batch.events <= 3);
//! });
//! pipeline.push(1);
//! pipeline.push_iter([2, 1, 3, 1]);
//! pipeline.flush(); // force out the trailing partial batch
//! let report = pipeline.finish();
//!
//! assert_eq!(report.committed, 5);
//! assert_eq!(report.batches.len(), 2); // 3 + 2 events
//! assert_eq!(store.read_latest(words, 1).unwrap(), 3);
//! ```

use std::time::Instant;

use morphstream_common::metrics::Breakdown;
use morphstream_common::TableId;
use morphstream_storage::StateStore;

use crate::report::{BatchSummary, RunReport};

/// Callback observing every punctuation-delimited batch as it completes, so
/// long-running sessions report progress without waiting for `finish()`.
pub type BatchHook = Box<dyn FnMut(&BatchSummary) + Send>;

/// A pull-side event feed: anything that can hand the engine the next chunk
/// of events — a generated workload, a merged pair of feeds, or a socket
/// decoder.
///
/// The conveyor-style contract splits ingestion into *offer* and *consume*:
/// [`EventSource::next_batch`] appends up to `max` ready events, and
/// [`EventSource::ack`] tells the source they were durably handed to the
/// engine (a socket source frees its frame buffers there; generated sources
/// ignore it). Pull-based drivers ([`Pipeline::push_source`], the bench
/// harness, `morphstream serve`) are generic over this trait, so a workload
/// generator and a TCP connection feed the engine through the same path.
pub trait EventSource {
    /// The event type this source yields.
    type Event;

    /// Append up to `max` events to `out`, returning how many were appended.
    /// Returning `0` means the source is exhausted — drivers stop pulling.
    /// A blocking source (socket) may wait for data before returning.
    fn next_batch(&mut self, max: usize, out: &mut Vec<Self::Event>) -> usize;

    /// Acknowledge that the last `n` delivered events were consumed.
    /// Sources with retained buffers release them here; the default is a
    /// no-op.
    fn ack(&mut self, _n: usize) {}

    /// Events this source will still yield, when known up front (generated
    /// workloads). `None` for unbounded feeds such as sockets.
    fn remaining_events(&self) -> Option<usize> {
        None
    }
}

/// A push-side consumer of items leaving the engine: per-event outputs, or
/// any other stream a component emits downstream.
///
/// The mirror image of [`EventSource`]: where sources are pulled in batches,
/// sinks are pushed one item at a time, with [`EventSink::flush`] as the
/// durability point (a socket sink writes out its buffer there; collectors
/// ignore it).
pub trait EventSink<T> {
    /// Consume one item.
    fn emit(&mut self, item: T);

    /// Make everything emitted so far durable / visible. Default: no-op.
    fn flush(&mut self) {}
}

/// Collecting sink: emitted items are appended in order.
impl<T> EventSink<T> for Vec<T> {
    fn emit(&mut self, item: T) {
        self.push(item);
    }
}

/// Adapter turning a closure into an [`EventSink`] (a direct blanket impl
/// over `FnMut(T)` would collide with the `Vec<T>` impl under coherence).
pub struct FnSink<F>(pub F);

impl<T, F: FnMut(T)> EventSink<T> for FnSink<F> {
    fn emit(&mut self, item: T) {
        (self.0)(item);
    }
}

/// A boxed output sink installable on any [`TxnEngine`] via
/// [`TxnEngine::set_output_sink`]. While installed, per-event outputs are
/// *drained* to the sink as they are produced instead of accumulating in
/// [`RunReport::outputs`] — the difference between a benchmark (collect
/// everything, inspect at the end) and a server (bounded memory over an
/// unbounded stream).
pub type OutputSink<O> = Box<dyn EventSink<O> + Send>;

/// A batch taken out of a [`SessionState`] for processing.
pub struct PendingBatch<E> {
    /// The buffered events forming the batch, in ingestion order.
    pub events: Vec<E>,
    /// Index of the batch within the session.
    pub batch: usize,
}

/// The ingestion state machine shared by every [`TxnEngine`] implementation:
/// the event buffer of at most one punctuation interval, the report
/// accumulated across processed batches, and the per-batch hook.
///
/// Engines differ only in how a batch executes; the session mechanics —
/// punctuation cuts, batch indexing, hook firing, metric folding, buffer
/// recycling, finish-time reset — live here so MorphStream and the baselines
/// cannot drift. The flow per batch is [`SessionState::ingest`] until it
/// returns `true` → [`SessionState::begin_batch`] → execute, pushing
/// per-event outputs with [`SessionState::push_output`] →
/// [`SessionState::complete_batch`].
///
/// The buffer is double-buffered by construction: [`SessionState::begin_batch`]
/// moves the events out, so a cut batch can travel through a construction /
/// execution pipeline while a fresh buffer keeps filling from the stream;
/// [`SessionState::complete_batch`] recycles the drained allocation when the
/// new buffer is still empty.
pub struct SessionState<E, O> {
    buffer: Vec<E>,
    report: RunReport<O>,
    batch_index: usize,
    run_started: Option<Instant>,
    on_batch: Option<BatchHook>,
    output_sink: Option<OutputSink<O>>,
}

impl<E, O> SessionState<E, O> {
    /// Empty session.
    pub fn new() -> Self {
        Self {
            buffer: Vec::new(),
            report: RunReport::new(),
            batch_index: 0,
            run_started: None,
            on_batch: None,
            output_sink: None,
        }
    }

    /// Buffer `event`; returns `true` when the buffer reached `punctuation`
    /// events and the caller must cut a batch.
    pub fn ingest(&mut self, event: E, punctuation: usize) -> bool {
        self.run_started.get_or_insert_with(Instant::now);
        self.buffer.push(event);
        self.buffer.len() >= punctuation.max(1)
    }

    /// Take the buffered events as the next batch to process; `None` when
    /// nothing is buffered (so an empty flush is a no-op).
    pub fn begin_batch(&mut self) -> Option<PendingBatch<E>> {
        if self.buffer.is_empty() {
            return None;
        }
        self.run_started.get_or_insert_with(Instant::now);
        let batch = self.batch_index;
        self.batch_index += 1;
        Some(PendingBatch {
            events: std::mem::take(&mut self.buffer),
            batch,
        })
    }

    /// Deliver one per-event output (in input order): appended to the session
    /// report, or drained to the installed output sink (counted in
    /// [`RunReport::drained_outputs`] so `events()` stays exact).
    pub fn push_output(&mut self, output: O) {
        match self.output_sink.as_mut() {
            Some(sink) => {
                sink.emit(output);
                self.report.drained_outputs += 1;
            }
            None => self.report.outputs.push(output),
        }
    }

    /// Record a processed batch: fire the hook, fold the metrics into the
    /// report, and recycle the batch's buffer allocation so steady-state
    /// ingestion does not re-grow the buffer every punctuation interval.
    pub fn complete_batch(
        &mut self,
        mut events: Vec<E>,
        summary: BatchSummary,
        breakdown: &Breakdown,
    ) {
        if let Some(hook) = self.on_batch.as_mut() {
            hook(&summary);
        }
        let at = self.run_started.map(|s| s.elapsed()).unwrap_or_default();
        self.report.record_batch(summary, breakdown, at);
        events.clear();
        if self.buffer.is_empty() {
            self.buffer = events;
        }
    }

    /// Close the session and return the accumulated report. The caller must
    /// have processed the buffer first (see [`SessionState::begin_batch`]);
    /// an unflushed buffer would silently carry into the next session.
    pub fn finish(&mut self) -> RunReport<O> {
        debug_assert!(self.buffer.is_empty(), "finish() without flush()");
        self.batch_index = 0;
        self.run_started = None;
        self.on_batch = None;
        if let Some(sink) = self.output_sink.as_mut() {
            sink.flush();
        }
        std::mem::take(&mut self.report)
    }

    /// The report accumulated so far in the current session.
    pub fn report(&self) -> &RunReport<O> {
        &self.report
    }

    /// Install (or clear) the per-batch observability hook.
    pub fn set_batch_hook(&mut self, hook: Option<BatchHook>) {
        self.on_batch = hook;
    }

    /// Install (or remove) the output sink. Unlike the batch hook, the sink
    /// survives `finish()` — a server rotates sessions to bound report memory
    /// while the same sink keeps receiving outputs.
    pub fn set_output_sink(&mut self, sink: Option<OutputSink<O>>) {
        self.output_sink = sink;
    }
}

impl<E, O> Default for SessionState<E, O> {
    fn default() -> Self {
        Self::new()
    }
}

/// Receives the state of an engine at a checkpoint barrier: one call per
/// distinct [`StateStore`] the engine operates on, in a stable ordinal order
/// (single-store engines call with ordinal 0; a topology enumerates its
/// deduplicated stores). `dirty` lists the tables whose visible state may
/// have changed since the flags were last taken — the incremental-snapshot
/// set. The sink decides how to serialize; the engine only guarantees it is
/// quiescent (flushed) for the duration of the call.
pub trait CheckpointSink {
    /// Offer one store for snapshotting.
    fn store(&mut self, ordinal: usize, store: &StateStore, dirty: Vec<TableId>);
}

/// Supplies checkpointed state back to an engine at restore time: the mirror
/// of [`CheckpointSink`], called once per store with the same ordinals the
/// checkpoint used. The source seeds the store's tables to their
/// checkpointed visible state.
pub trait CheckpointSource {
    /// Restore one store from the checkpoint.
    fn restore(&mut self, ordinal: usize, store: &StateStore);
}

/// A transactional stream engine driven by pushed events.
///
/// Implemented by [`MorphStream`](crate::MorphStream) and by the three
/// reconstructed baselines, so benchmarks and applications drive every system
/// through one interface. Events accumulate in an internal buffer of at most
/// one punctuation interval; crossing the interval triggers batch processing,
/// which keeps ingestion memory bounded regardless of stream length.
pub trait TxnEngine {
    /// Input event type.
    type Event;
    /// Per-event output type produced by post-processing.
    type Output;

    /// Push one event into the session. When the pushed event crosses the
    /// punctuation interval, the buffered batch is processed before this
    /// method returns — except under pipelined construction
    /// (`EngineConfig::pipelined_construction`), where the batch is handed to
    /// the construction stage and the *previous* batch executes instead, so
    /// the report may lag the stream by one punctuation until a flush.
    fn ingest(&mut self, event: Self::Event);

    /// Process whatever is buffered as a (possibly partial) batch. A no-op
    /// when nothing is buffered. This is a synchronisation point: engines
    /// with a construction pipeline drain *both* stages, so every pushed
    /// event is reflected in [`TxnEngine::report`] when this returns.
    fn flush(&mut self);

    /// Flush, close the session, and return the accumulated [`RunReport`].
    /// The engine is reusable afterwards: a fresh session starts empty (state
    /// and timestamps carry over, as they do across punctuations).
    fn finish(&mut self) -> RunReport<Self::Output>;

    /// The report accumulated so far in the current session.
    fn report(&self) -> &RunReport<Self::Output>;

    /// Install (or clear) the per-batch observability hook. The hook fires
    /// once per processed batch and is cleared when the session finishes.
    fn set_batch_hook(&mut self, hook: Option<BatchHook>);

    /// Install (or remove) a sink that per-event outputs are drained to as
    /// they are produced, instead of accumulating in
    /// [`RunReport::outputs`]. While a sink is installed, `report().outputs`
    /// stays empty and [`RunReport::drained_outputs`] counts deliveries, so
    /// [`RunReport::events`] is unaffected. The sink survives
    /// [`TxnEngine::finish`] (it is flushed, not cleared): a long-lived
    /// server periodically finishes sessions to bound report memory while
    /// the sink keeps streaming outputs.
    fn set_output_sink(&mut self, sink: Option<OutputSink<Self::Output>>);

    /// Pause at a checkpoint barrier and offer every distinct state store to
    /// `sink`. The default implementation flushes (so the checkpoint lands on
    /// a punctuation-aligned, fully quiescent state) and offers nothing —
    /// engines with checkpointable state override this to enumerate their
    /// stores. Callers serialize whatever the sink captured; the engine
    /// resumes streaming afterwards as if the barrier were a plain flush.
    fn checkpoint(&mut self, sink: &mut dyn CheckpointSink) {
        let _ = sink;
        self.flush();
    }

    /// Restore engine state from a checkpoint before any events are pushed:
    /// the inverse of [`TxnEngine::checkpoint`], calling `source` once per
    /// store with the same ordinals. Engines without checkpointable state
    /// ignore it. Must be called on a fresh session (nothing buffered).
    fn restore(&mut self, source: &mut dyn CheckpointSource) {
        let _ = source;
    }

    /// Push every event of `events` in order.
    fn ingest_iter<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = Self::Event>,
        Self: Sized,
    {
        for event in events {
            self.ingest(event);
        }
    }

    /// Convenience: ingest `events` and finish the session — the push-based
    /// equivalent of the legacy `process(Vec<Event>)` calls.
    fn run<I>(&mut self, events: I) -> RunReport<Self::Output>
    where
        I: IntoIterator<Item = Self::Event>,
        Self: Sized,
    {
        self.ingest_iter(events);
        self.finish()
    }

    /// Open a [`Pipeline`] handle over this engine's session.
    ///
    /// The session state (buffered events, accumulated report, batch hook)
    /// lives in the engine, not the handle: dropping a `Pipeline` without
    /// calling [`Pipeline::finish`] keeps the session open, and the next
    /// `pipeline()` call (or a direct `ingest`/`finish`) resumes it exactly
    /// where it left off. Only [`TxnEngine::finish`] closes a session.
    fn pipeline(&mut self) -> Pipeline<'_, Self>
    where
        Self: Sized,
    {
        Pipeline::new(self)
    }
}

/// A push-based ingestion session over a [`TxnEngine`].
///
/// Created by [`TxnEngine::pipeline`]. Events are pushed one at a time or
/// from any iterator; punctuation-interval crossings trigger batch processing
/// internally, and [`Pipeline::finish`] returns the run report. See the
/// [module documentation](self) for a complete example.
///
/// `Pipeline` is a *handle*, not the session itself: dropping it without
/// [`Pipeline::finish`] leaves the session open on the engine (buffered
/// events and partial report intact), and a later handle resumes it. The
/// batch hook, however, belongs to the handle that installed it — it is
/// cleared when the handle drops, so an abandoned session never fires a
/// stale callback from an unrelated later run. Finish the session before
/// handing the engine to code that expects a fresh run.
pub struct Pipeline<'e, E: TxnEngine> {
    engine: &'e mut E,
}

impl<E: TxnEngine> Drop for Pipeline<'_, E> {
    fn drop(&mut self) {
        self.engine.set_batch_hook(None);
    }
}

impl<'e, E: TxnEngine> Pipeline<'e, E> {
    /// Open a session over `engine`.
    pub fn new(engine: &'e mut E) -> Self {
        Self { engine }
    }

    /// Install a hook observing every processed batch (builder-style). The
    /// hook lives for this session: it is cleared by [`Pipeline::finish`].
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn on_batch(self, hook: impl FnMut(&BatchSummary) + Send + 'static) -> Self {
        self.engine.set_batch_hook(Some(Box::new(hook)));
        self
    }

    /// Push one event; crossing the punctuation interval processes the
    /// buffered batch before returning.
    pub fn push(&mut self, event: E::Event) {
        self.engine.ingest(event);
    }

    /// Push every event yielded by `events`, in order. Accepts any
    /// `IntoIterator`, so lazy sources stream through without materialising a
    /// `Vec` first.
    pub fn push_iter<I: IntoIterator<Item = E::Event>>(&mut self, events: I) {
        self.engine.ingest_iter(events);
    }

    /// Drain an [`EventSource`] to exhaustion: pull chunks of up to
    /// `chunk` events, push each in order, and `ack` the source after the
    /// chunk is fully handed to the engine. Equivalent to
    /// [`Pipeline::push_iter`] over the same events — the server's socket
    /// decoder and a generated workload drive the engine identically here.
    pub fn push_source<S>(&mut self, source: &mut S, chunk: usize)
    where
        S: EventSource<Event = E::Event> + ?Sized,
    {
        let chunk = chunk.max(1);
        let mut buf = Vec::with_capacity(chunk);
        loop {
            let n = source.next_batch(chunk, &mut buf);
            if n == 0 {
                break;
            }
            for event in buf.drain(..) {
                self.engine.ingest(event);
            }
            source.ack(n);
        }
    }

    /// Install an output sink on the underlying engine (builder-style); see
    /// [`TxnEngine::set_output_sink`]. Unlike the batch hook, the sink
    /// belongs to the *engine* and deliberately outlives this handle.
    #[must_use = "builder methods return the updated value instead of mutating in place"]
    pub fn output_sink(self, sink: impl EventSink<E::Output> + Send + 'static) -> Self {
        self.engine.set_output_sink(Some(Box::new(sink)));
        self
    }

    /// Process the buffered events as a (possibly partial) batch now.
    pub fn flush(&mut self) {
        self.engine.flush();
    }

    /// The report accumulated so far (batches processed up to this point).
    pub fn report(&self) -> &RunReport<E::Output> {
        self.engine.report()
    }

    /// Flush the trailing partial batch, close the session, and return the
    /// accumulated report. An empty session returns a well-formed empty
    /// report (zero events, zero batches).
    pub fn finish(self) -> RunReport<E::Output> {
        self.engine.finish()
    }
}
